"""Setup shim for environments without the `wheel` package.

`pip install -e .` falls back to `setup.py develop` (via --no-use-pep517)
when PEP 517 editable builds are unavailable; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
