"""Tests for the service's overload protection and cancellation.

Covers the resilience primitives (admission, breakers, cancel tokens)
in isolation, then the service-level behaviors they compose into:
shedding with 429, breaker trips with 503, cooperative cancellation
with journaled partials, deadline enforcement, readiness reporting,
and the client's bounded-backoff wait/retry loops.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import CancelledError, ConfigurationError
from repro.serve.client import InProcessClient, ServeClientError
from repro.serve.resilience import (
    AdmissionController,
    CancelToken,
    CircuitBreaker,
    ResilienceConfig,
)
from repro.serve.testing import in_process_service
from repro.serve.workloads import register_workload, unregister_workload
from tests.serve_helpers import gated_workload, open_gate, reset_gate


def sleepy_workload(x: float = 0.0, delay_s: float = 0.01) -> dict:
    time.sleep(delay_s)
    return {"x": x}


def failing_workload(x: float = 0.0) -> dict:
    raise ConfigurationError("always broken")


class TestResilienceConfig:
    def test_defaults_valid(self):
        config = ResilienceConfig()
        assert config.max_depth == 64
        assert config.workload_limit() == 64

    def test_per_workload_caps_at_max_depth(self):
        config = ResilienceConfig(max_depth=4, per_workload=100)
        assert config.workload_limit() == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_depth": 0},
            {"per_workload": 0},
            {"shed_retry_after_s": 0.0},
            {"breaker_threshold": -1},
            {"breaker_cooldown_s": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(**kwargs)


class TestAdmissionController:
    def test_global_depth_bound(self):
        admission = AdmissionController(ResilienceConfig(max_depth=2))
        assert admission.try_admit("a")
        assert admission.try_admit("b")
        assert not admission.try_admit("c")
        assert admission.shed == 1
        admission.release("a")
        assert admission.try_admit("c")

    def test_per_workload_bound(self):
        admission = AdmissionController(
            ResilienceConfig(max_depth=10, per_workload=1)
        )
        assert admission.try_admit("a")
        assert not admission.try_admit("a")
        assert admission.try_admit("b")
        admission.release("a")
        assert admission.try_admit("a")

    def test_snapshot(self):
        admission = AdmissionController(ResilienceConfig(max_depth=3))
        admission.try_admit("a")
        snapshot = admission.snapshot()
        assert snapshot["depth"] == 1
        assert snapshot["max_depth"] == 3
        assert snapshot["per_workload"] == {"a": 1}


class TestCircuitBreaker:
    def config(self, **overrides):
        defaults = {"breaker_threshold": 2, "breaker_cooldown_s": 0.1}
        defaults.update(overrides)
        return ResilienceConfig(**defaults)

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(self.config())
        breaker.record_failure("w")
        assert breaker.state_of("w") == "closed"
        breaker.record_failure("w")
        assert breaker.state_of("w") == "open"
        allowed, retry_after = breaker.allow("w")
        assert not allowed
        assert retry_after > 0

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(self.config())
        breaker.record_failure("w")
        breaker.record_success("w")
        breaker.record_failure("w")
        assert breaker.state_of("w") == "closed"

    def test_half_open_admits_single_probe(self):
        breaker = CircuitBreaker(self.config())
        breaker.record_failure("w")
        breaker.record_failure("w")
        time.sleep(0.12)
        allowed, _ = breaker.allow("w")
        assert allowed
        assert breaker.state_of("w") == "half_open"
        # A second caller during the probe is rejected.
        allowed, retry_after = breaker.allow("w")
        assert not allowed
        assert retry_after == pytest.approx(0.1)

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(self.config())
        breaker.record_failure("w")
        breaker.record_failure("w")
        time.sleep(0.12)
        breaker.allow("w")
        breaker.record_success("w")
        assert breaker.state_of("w") == "closed"
        assert breaker.allow("w") == (True, None)

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(self.config())
        breaker.record_failure("w")
        breaker.record_failure("w")
        time.sleep(0.12)
        breaker.allow("w")
        breaker.record_failure("w")
        assert breaker.state_of("w") == "open"

    def test_cancelled_probe_reopens_instead_of_stranding(self):
        breaker = CircuitBreaker(self.config())
        breaker.record_failure("w")
        breaker.record_failure("w")
        time.sleep(0.12)
        breaker.allow("w")
        assert breaker.state_of("w") == "half_open"
        breaker.record_cancelled("w")
        # Open again with a fresh cooldown — a later window gets a
        # new probe instead of rejecting forever.
        assert breaker.state_of("w") == "open"
        time.sleep(0.12)
        allowed, _ = breaker.allow("w")
        assert allowed

    def test_threshold_zero_disables(self):
        breaker = CircuitBreaker(self.config(breaker_threshold=0))
        for _ in range(10):
            breaker.record_failure("w")
        assert breaker.allow("w") == (True, None)

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(self.config())
        breaker.record_failure("bad")
        breaker.record_failure("bad")
        assert breaker.state_of("bad") == "open"
        assert breaker.allow("good") == (True, None)


class TestCancelToken:
    def test_first_cancel_wins(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.cancel("first")
        assert not token.cancel("second")
        assert token.cancelled
        assert token.reason == "first"

    def test_deadline_self_cancels(self):
        token = CancelToken(deadline_s=0.02)
        assert token.remaining_s() <= 0.02
        time.sleep(0.03)
        assert token.cancelled
        assert token.reason == "deadline"

    def test_raise_if_cancelled(self):
        token = CancelToken()
        token.raise_if_cancelled()
        token.cancel("test")
        with pytest.raises(CancelledError, match="test"):
            token.raise_if_cancelled()

    def test_rejects_bad_deadline(self):
        with pytest.raises(ConfigurationError):
            CancelToken(deadline_s=0.0)


class TestSheddingService:
    def test_flood_is_shed_with_429(self):
        register_workload("t_gated", gated_workload, replace=True)
        try:
            with in_process_service(
                max_workers=2,
                resilience=ResilienceConfig(
                    max_depth=1, shed_retry_after_s=0.07
                ),
            ) as (service, client):
                reset_gate("shed")
                first = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_gated",
                        "axes": {"x": [1], "gate": ["shed"]},
                    }
                )
                status, payload = client.request(
                    "POST",
                    "/v1/jobs",
                    {
                        "kind": "sweep",
                        "workload": "t_gated",
                        "axes": {"x": [2], "gate": ["shed"]},
                    },
                )
                assert status == 429
                assert payload["error"]["code"] == "overloaded"
                assert payload["error"]["retry_after_s"] == 0.07
                # The rejected submission never became a job.
                assert service.stats["submitted"] == 1
                assert service.stats["shed"] == 1
                assert len(service._jobs) == 1
                # Saturated: readyz reports not-ready with the depth.
                status, ready = client.request("GET", "/v1/readyz")
                assert status == 503
                assert ready["ready"] is False
                assert ready["admission"]["depth"] == 1
                open_gate("shed")
                final = client.wait(first["job_id"], timeout_s=30.0)
                assert final["status"] == "done"
                # The admission slot is released just *after* the job
                # resolves (executor-thread finally) — poll briefly.
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    status, ready = client.request("GET", "/v1/readyz")
                    if status == 200:
                        break
                    time.sleep(0.01)
                assert status == 200
                assert ready["ready"] is True
                assert ready["admission"]["depth"] == 0
        finally:
            unregister_workload("t_gated")

    def test_cache_hits_and_followers_bypass_admission(self):
        register_workload("t_gated", gated_workload, replace=True)
        try:
            with in_process_service(
                max_workers=2,
                resilience=ResilienceConfig(max_depth=1),
            ) as (service, client):
                reset_gate("bypass")
                job = {
                    "kind": "sweep",
                    "workload": "t_gated",
                    "axes": {"x": [1], "gate": ["bypass"]},
                }
                primary = client.submit(job)
                # Identical job coalesces — no admission slot needed
                # even though the service is saturated.
                follower = client.submit(job)
                assert follower["coalesced_with"] == primary["job_id"]
                open_gate("bypass")
                client.wait(primary["job_id"], timeout_s=30.0)
                # Warm hit while notionally saturated: also admitted.
                warm = client.submit(job)
                assert warm["cached"] is True
        finally:
            unregister_workload("t_gated")

    def test_resilience_false_disables_shedding(self):
        register_workload("t_sleepy", sleepy_workload, replace=True)
        try:
            with in_process_service(
                max_workers=2, resilience=False
            ) as (service, client):
                assert service.admission is None
                assert service.breakers is None
                for index in range(8):
                    client.submit(
                        {
                            "kind": "sweep",
                            "workload": "t_sleepy",
                            "axes": {"x": [float(index)]},
                        }
                    )
                assert service.stats["submitted"] == 8
                status, ready = client.request("GET", "/v1/readyz")
                assert status == 200
                assert ready["admission"] is None
        finally:
            unregister_workload("t_sleepy")


class TestBreakerService:
    def test_broken_workload_trips_and_recovers_503(self):
        register_workload("t_failing", failing_workload, replace=True)
        register_workload("t_sleepy", sleepy_workload, replace=True)
        try:
            with in_process_service(
                max_workers=2,
                resilience=ResilienceConfig(
                    breaker_threshold=1, breaker_cooldown_s=30.0
                ),
            ) as (service, client):
                bad = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_failing",
                        "axes": {"x": [1.0]},
                    }
                )
                final = client.wait(bad["job_id"], timeout_s=30.0)
                assert final["status"] == "failed"
                status, payload = client.request(
                    "POST",
                    "/v1/jobs",
                    {
                        "kind": "sweep",
                        "workload": "t_failing",
                        "axes": {"x": [2.0]},
                    },
                )
                assert status == 503
                assert payload["error"]["code"] == "circuit_open"
                assert payload["error"]["retry_after_s"] > 0
                # Other workloads are unaffected (per-key breakers),
                # and the breaker rejection released its admission
                # slot: the healthy job occupies the only capacity it
                # needs.
                healthy = client.run(
                    {
                        "kind": "sweep",
                        "workload": "t_sleepy",
                        "axes": {"x": [1.0]},
                    },
                    timeout_s=30.0,
                )
                assert healthy["result"]["n_ok"] == 1
                snapshot = service.breakers.snapshot()
                assert snapshot["states"]["t_failing"] == "open"
                assert snapshot["rejected"] == 1
        finally:
            unregister_workload("t_failing")
            unregister_workload("t_sleepy")


class TestCancellation:
    def test_cancel_endpoint_cancels_running_sweep(self):
        register_workload("t_sleepy", sleepy_workload, replace=True)
        try:
            with in_process_service(max_workers=2) as (service, client):
                submitted = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_sleepy",
                        "axes": {
                            "x": [float(i) for i in range(200)],
                            "delay_s": [0.01],
                        },
                    }
                )
                job_id = submitted["job_id"]
                response = client.cancel(job_id)
                assert response["cancelled"] is True
                final = client.wait(job_id, timeout_s=30.0)
                assert final["status"] == "cancelled"
                assert final["error"]["code"] == "cancelled"
                assert "client_cancel" in final["error"]["message"]
                # The result endpoint refuses with 409/cancelled.
                status, payload = client.request(
                    "GET", f"/v1/jobs/{job_id}/result"
                )
                assert status == 409
                assert payload["error"]["code"] == "cancelled"
                # Nothing partial reached the cache.
                assert service.cache.get(submitted["fingerprint"]) is None
                assert service.stats["cancelled"] == 1
                # A repeated cancel is a no-op.
                again = client.cancel(job_id)
                assert again["cancelled"] is False
        finally:
            unregister_workload("t_sleepy")

    def test_cancelled_job_emits_partial_progress_event(self):
        register_workload("t_sleepy", sleepy_workload, replace=True)
        try:
            with in_process_service(max_workers=2) as (service, client):
                submitted = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_sleepy",
                        "axes": {
                            "x": [float(i) for i in range(200)],
                            "delay_s": [0.01],
                        },
                    }
                )
                # Let a few points land before cancelling so the
                # partial snapshot is non-trivial.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    progress = client.status(submitted["job_id"]).get(
                        "progress"
                    )
                    if progress and progress.get("done", 0) >= 1:
                        break
                    time.sleep(0.005)
                client.cancel(submitted["job_id"])
                client.wait(submitted["job_id"], timeout_s=30.0)
                events, finished = service.events_since(
                    submitted["job_id"], 0
                )
                assert finished
                cancelled = [
                    event
                    for event in events
                    if event.get("kind") == "cancelled"
                ]
                assert len(cancelled) == 1
                partial = cancelled[0]["partial"]
                assert partial is not None
                assert 0 < partial["done"] < partial["total"]
        finally:
            unregister_workload("t_sleepy")

    def test_deadline_cancels_and_journals_partial(self, tmp_path):
        register_workload("t_sleepy", sleepy_workload, replace=True)
        try:
            with in_process_service(
                max_workers=2, journal_dir=tmp_path / "journals"
            ) as (service, client):
                submitted = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_sleepy",
                        "axes": {
                            "x": [float(i) for i in range(300)],
                            "delay_s": [0.01],
                        },
                        "deadline_s": 0.15,
                    }
                )
                final = client.wait(submitted["job_id"], timeout_s=30.0)
                assert final["status"] == "cancelled"
                assert "deadline" in final["error"]["message"]
                journal = (
                    tmp_path
                    / "journals"
                    / f"{submitted['fingerprint']}.jsonl"
                )
                assert journal.exists()
                assert journal.stat().st_size > 0
        finally:
            unregister_workload("t_sleepy")

    def test_completed_job_journal_is_removed(self, tmp_path):
        register_workload("t_sleepy", sleepy_workload, replace=True)
        try:
            with in_process_service(
                max_workers=2, journal_dir=tmp_path / "journals"
            ) as (service, client):
                result = client.run(
                    {
                        "kind": "sweep",
                        "workload": "t_sleepy",
                        "axes": {"x": [1.0], "delay_s": [0.0]},
                    },
                    timeout_s=30.0,
                )
                assert result["result"]["n_ok"] == 1
                journal = (
                    tmp_path
                    / "journals"
                    / f"{result['fingerprint']}.jsonl"
                )
                assert not journal.exists()
        finally:
            unregister_workload("t_sleepy")

    def test_cancel_follower_detaches_without_stopping_primary(self):
        register_workload("t_gated", gated_workload, replace=True)
        try:
            with in_process_service(max_workers=2) as (service, client):
                reset_gate("detach")
                job = {
                    "kind": "sweep",
                    "workload": "t_gated",
                    "axes": {"x": [1], "gate": ["detach"]},
                }
                primary = client.submit(job)
                follower = client.submit(job)
                assert follower["coalesced_with"] == primary["job_id"]
                response = client.cancel(follower["job_id"])
                assert response["cancelled"] is True
                open_gate("detach")
                final = client.wait(primary["job_id"], timeout_s=30.0)
                assert final["status"] == "done"
                follower_status = client.status(follower["job_id"])
                assert follower_status["status"] == "cancelled"
        finally:
            unregister_workload("t_gated")

    def test_cancel_finished_job_reports_not_cancelled(self):
        register_workload("t_sleepy", sleepy_workload, replace=True)
        try:
            with in_process_service(max_workers=2) as (service, client):
                result = client.run(
                    {
                        "kind": "sweep",
                        "workload": "t_sleepy",
                        "axes": {"x": [1.0], "delay_s": [0.0]},
                    },
                    timeout_s=30.0,
                )
                assert result["result"]["n_ok"] == 1
                jobs = list(service._jobs)
                response = client.cancel(jobs[0])
                assert response["cancelled"] is False
                assert response["status"] == "done"
        finally:
            unregister_workload("t_sleepy")

    def test_cancel_requires_post(self):
        with in_process_service(max_workers=1) as (service, client):
            status, payload = client.request(
                "GET", "/v1/jobs/job-1/cancel"
            )
            assert status == 405


class _CountingClient(InProcessClient):
    """In-process client that counts requests and defeats long-polling
    (models a proxy or server without ``wait_s`` support)."""

    def __init__(self, service) -> None:
        super().__init__(service)
        self.requests = 0

    def request(self, method, path, payload=None):
        self.requests += 1
        path = path.split("?")[0]  # strip wait_s: force real polling
        return super().request(method, path, payload)


class TestClientBackoff:
    def test_wait_backoff_bounds_request_count(self):
        register_workload("t_sleepy", sleepy_workload, replace=True)
        try:
            with in_process_service(max_workers=2) as (service, _):
                client = _CountingClient(service)
                submitted = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_sleepy",
                        "axes": {
                            "x": [float(i) for i in range(60)],
                            "delay_s": [0.015],
                        },
                    }
                )
                final = client.wait(
                    submitted["job_id"], timeout_s=60.0, poll_s=0.05
                )
                assert final["status"] == "done"
                # ~0.9s of polling without long-poll support: fixed
                # 0.05s polling would need ~18 requests; exponential
                # backoff keeps it under 10 (submit included).
                assert client.requests <= 10
        finally:
            unregister_workload("t_sleepy")

    def test_run_retries_shed_submissions(self):
        register_workload("t_sleepy", sleepy_workload, replace=True)
        try:
            with in_process_service(
                max_workers=2,
                resilience=ResilienceConfig(
                    max_depth=1, shed_retry_after_s=0.05
                ),
            ) as (service, client):
                blocker = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_sleepy",
                        "axes": {
                            "x": [float(i) for i in range(20)],
                            "delay_s": [0.02],
                        },
                    }
                )
                # Saturated now: a direct submit is shed ...
                with pytest.raises(ServeClientError) as excinfo:
                    client.submit(
                        {
                            "kind": "sweep",
                            "workload": "t_sleepy",
                            "axes": {"x": [99.0]},
                        }
                    )
                assert excinfo.value.status == 429
                # ... but run() keeps retrying on the server's hint
                # until capacity frees up.
                result = client.run(
                    {
                        "kind": "sweep",
                        "workload": "t_sleepy",
                        "axes": {"x": [99.0]},
                    },
                    timeout_s=30.0,
                )
                assert result["result"]["n_ok"] == 1
                client.wait(blocker["job_id"], timeout_s=30.0)
                assert service.stats["shed"] >= 2
        finally:
            unregister_workload("t_sleepy")


class TestStatsDocument:
    def test_stats_expose_resilience_snapshots(self):
        with in_process_service(
            max_workers=1,
            resilience=ResilienceConfig(max_depth=7),
        ) as (service, client):
            stats = client.stats()
            assert stats["admission"]["max_depth"] == 7
            assert stats["breakers"]["states"] == {}
            assert stats["shed"] == 0
            assert stats["cancelled"] == 0

    def test_bookkeeping_invariant_with_resilience_on(self):
        register_workload("t_sleepy", sleepy_workload, replace=True)
        try:
            with in_process_service(
                max_workers=2, resilience=ResilienceConfig(max_depth=2)
            ) as (service, client):
                job = {
                    "kind": "sweep",
                    "workload": "t_sleepy",
                    "axes": {"x": [5.0], "delay_s": [0.0]},
                }
                client.run(job, timeout_s=30.0)
                client.run(job, timeout_s=30.0)  # warm hit
                stats = client.stats()
                assert (
                    stats["submitted"]
                    == stats["executions"]
                    + stats["cache_hits"]
                    + stats["coalesced"]
                )
        finally:
            unregister_workload("t_sleepy")
