"""Tests for repro.inject.ecc and repro.inject.plan: maps and SEC-DED."""

import pytest

from repro.dft.faults import FaultKind
from repro.dram.organizations import Organization
from repro.errors import ConfigurationError
from repro.inject import (
    EccOutcome,
    FaultInjector,
    InjectionConfig,
    SECDEDCode,
    build_fault_map,
)

ORG = Organization(n_banks=4, n_rows=64, page_bits=256, word_bits=16)


class TestSECDED:
    def test_check_bits_hamming_bound(self):
        # Smallest r with 2^(r-1) >= k + r.
        assert SECDEDCode(data_bits=8).check_bits == 5
        assert SECDEDCode(data_bits=16).check_bits == 6
        assert SECDEDCode(data_bits=64).check_bits == 8

    def test_word_and_overhead(self):
        code = SECDEDCode(data_bits=16)
        assert code.word_bits == 22
        assert code.overhead_fraction == pytest.approx(6 / 16)

    def test_classification(self):
        code = SECDEDCode(data_bits=16)
        assert code.classify(0) is EccOutcome.CLEAN
        assert code.classify(1) is EccOutcome.CORRECTED
        assert code.classify(2) is EccOutcome.UNCORRECTABLE
        assert code.classify(7) is EccOutcome.UNCORRECTABLE

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SECDEDCode(data_bits=16).classify(-1)

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            SECDEDCode(data_bits=0)


class TestInjectionConfig:
    def test_defaults_valid(self):
        InjectionConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_cell_faults": -1},
            {"refresh_drop_rate": 1.5},
            {"refresh_delay_rate": -0.1},
            {"fifo_stall_rate": 2.0},
            {"refresh_delay_cycles": -1},
            {"stuck_bank": -2},
            {"read_retry_limit": -1},
            {"quarantine_threshold": 0},
            {"spare_rows_per_bank": -1},
            {"stuck_request_cycles": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            InjectionConfig(**kwargs)


class TestBuildFaultMap:
    def test_deterministic(self):
        config = InjectionConfig(seed=9, n_cell_faults=40, n_line_faults=4)
        a = build_fault_map(ORG, config)
        b = build_fault_map(ORG, config)
        assert a.sites == b.sites
        assert a.word_errors == b.word_errors
        assert a.dead_rows == b.dead_rows
        assert a.col_errors == b.col_errors

    def test_seed_changes_map(self):
        a = build_fault_map(ORG, InjectionConfig(seed=0, n_cell_faults=20))
        b = build_fault_map(ORG, InjectionConfig(seed=1, n_cell_faults=20))
        assert a.sites != b.sites

    def test_cell_sites_distinct(self):
        config = InjectionConfig(seed=3, n_cell_faults=100)
        fault_map = build_fault_map(ORG, config)
        coords = [
            (s.bank, s.row, s.bit)
            for s in fault_map.sites
            if s.kind not in (FaultKind.WORD_LINE, FaultKind.BIT_LINE)
        ]
        assert len(coords) == len(set(coords)) == 100

    def test_capacity_guard(self):
        tiny = Organization(
            n_banks=1, n_rows=2, page_bits=16, word_bits=16
        )
        with pytest.raises(ConfigurationError):
            build_fault_map(tiny, InjectionConfig(n_cell_faults=33))

    def test_retention_excluded_when_asked(self):
        config = InjectionConfig(
            seed=2, n_cell_faults=60, include_retention=False
        )
        fault_map = build_fault_map(ORG, config)
        assert not any(
            s.kind is FaultKind.RETENTION for s in fault_map.sites
        )
        assert not fault_map.retention_words

    def test_dead_row_is_uncorrectable(self):
        fault_map = build_fault_map(
            ORG, InjectionConfig(seed=0, n_line_faults=1)
        )
        (bank, row) = next(iter(fault_map.dead_rows))
        assert fault_map.bad_bits(bank, row, 0, False) >= 2

    def test_clear_row_removes_faults(self):
        fault_map = build_fault_map(
            ORG, InjectionConfig(seed=4, n_cell_faults=30, n_line_faults=2)
        )
        (bank, row) = next(iter(fault_map.dead_rows))
        fault_map.clear_row(bank, row)
        assert (bank, row) not in fault_map.dead_rows
        assert fault_map.bad_bits(bank, row, 0, True) == 0


class TestFaultInjector:
    def test_disabled_is_noop_everywhere(self):
        injector = FaultInjector(
            InjectionConfig(enabled=False, fifo_stall_rate=1.0,
                            stuck_bank=0),
            organization=ORG,
        )
        assert not injector.enabled
        # The controller consults `enabled` before every effect; the
        # draws themselves stay deterministic regardless.
        assert injector.bank_stuck(0, 100)  # raw oracle still answers

    def test_retention_activation(self):
        injector = FaultInjector(
            InjectionConfig(retention_margin_refreshes=2),
            organization=ORG,
        )
        assert not injector.retention_active
        for _ in range(3):
            injector.on_refresh_dropped(0)
        assert injector.retention_active
        injector.on_refresh_issued(10)
        assert not injector.retention_active

    def test_refresh_rates_respected(self):
        injector = FaultInjector(
            InjectionConfig(refresh_drop_rate=1.0), organization=ORG
        )
        assert injector.refresh_action(5)[0] == "drop"
        injector = FaultInjector(
            InjectionConfig(
                refresh_delay_rate=1.0, refresh_delay_cycles=32
            ),
            organization=ORG,
        )
        assert injector.refresh_action(5) == ("delay", 37)

    def test_spare_budget_exhausts(self):
        injector = FaultInjector(
            InjectionConfig(spare_rows_per_bank=1), organization=ORG
        )
        assert injector.try_remap_row(0, 5)
        assert not injector.try_remap_row(0, 6)
        assert injector.try_remap_row(1, 5)

    def test_stuck_bank_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(InjectionConfig(stuck_bank=7), organization=ORG)

    def test_report_round_trips_json(self):
        import json

        injector = FaultInjector(
            InjectionConfig(seed=1, n_cell_faults=10), organization=ORG
        )
        injector.count("reads_checked", 3)
        report = injector.report()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["counters"]["reads_checked"] == 3
        assert payload["n_fault_sites"] == 10
        assert "fault sites" in report.summary()
