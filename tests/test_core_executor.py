"""Tests for the executor interface and the work-queue executor.

The chaos tests exercise the distributed failure model end to end: a
worker that dies holding a lease must have its chunk reassigned, its
already-completed points served from its fsync'd segment (never
evaluated twice), and the merged result must stay bit-identical to the
serial reference.
"""

import os
import threading
import time

import pytest

from repro.core.executor import (
    ExecutorError,
    LocalPoolExecutor,
    SerialExecutor,
    WorkQueue,
    WorkQueueExecutor,
    chunk_file_name,
    coerce_executor,
)
from repro.core.parallel import ParallelConfig, PointOutcome
from repro.core.store import ResultStore, decode_outcome, encode_outcome
from repro.core.sweep import Sweep
from repro.core.worker import worker_loop
from repro.errors import ConfigurationError, InfeasibleError
from repro.obs.ledger import MemoryLedger


# Module-level: worker processes unpickle queue tasks by reference.
def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise InfeasibleError("three is right out")
    return x


def _logged_square(x):
    """Evaluation with a side-effect audit trail (O_APPEND is atomic)."""
    with open(os.environ["EXECUTOR_TEST_LOG"], "a") as handle:
        handle.write(f"{x}\n")
    return x * x


def _chaos_point(x):
    time.sleep(0.25)
    return x * x + 1


def _never(**_params):
    raise RuntimeError("must be served from the store, not evaluated")


def _read_log(path):
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        return [int(line) for line in handle if line.strip()]


class TestCoerceExecutor:
    def test_none_means_callers_serial_path(self):
        assert coerce_executor(None, None) is None

    def test_parallel_becomes_local_pool(self):
        config = ParallelConfig(workers=2, chunk_size=3)
        executor = coerce_executor(None, config)
        assert isinstance(executor, LocalPoolExecutor)
        assert executor.config is config

    def test_executor_passes_through(self):
        executor = SerialExecutor()
        assert coerce_executor(executor, None) is executor

    def test_both_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_executor(SerialExecutor(), ParallelConfig(workers=2))

    def test_mapless_object_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_executor(object(), None)


class TestExecutorParity:
    def test_serial_and_local_pool_agree(self):
        items = list(range(8))
        serial = SerialExecutor().map(_square, items)
        pool = LocalPoolExecutor(
            config=ParallelConfig(workers=2, chunk_size=2)
        ).map(_square, items)
        assert [o.value for o in serial] == [o.value for o in pool]
        assert all(o.ok for o in serial)

    def test_catch_becomes_failed_outcomes(self):
        outcomes = SerialExecutor().map(
            _fail_on_three, [1, 3], catch=(InfeasibleError,)
        )
        assert outcomes[0].ok and not outcomes[1].ok

    def test_sweep_executor_matches_legacy_parallel(self):
        sweep = Sweep(axes={"x": [1, 2, 3, 4]})
        legacy = sweep.run(_square, parallel=ParallelConfig(workers=2))
        executor = sweep.run(
            _kwarg_square, executor=SerialExecutor()
        )
        assert [p.result for p in executor.points] == [
            p.result for p in legacy.points
        ]

    def test_sweep_rejects_parallel_plus_executor(self):
        with pytest.raises(ConfigurationError):
            Sweep(axes={"x": [1]}).run(
                _square,
                parallel=ParallelConfig(workers=2),
                executor=SerialExecutor(),
            )

    def test_run_start_records_executor_description(self):
        ledger = MemoryLedger(run_id="desc")
        Sweep(axes={"x": [1, 2]}).run(
            _kwarg_square, executor=SerialExecutor(), ledger=ledger
        )
        starts = [e for e in ledger.events if e["kind"] == "run_start"]
        assert starts[0]["executor"] == {"executor": "serial"}


def _kwarg_square(x):
    return x * x


class TestWorkQueuePrimitives:
    def test_claim_is_single_winner(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.reset()
        queue.publish_chunk(0, [0, 1], ["a", "b"], None)
        first = queue.claim_chunk("chunk-00000.json", "w1")
        assert first is not None and first["indices"] == [0, 1]
        assert queue.claim_chunk("chunk-00000.json", "w2") is None

    def test_claim_next_takes_lowest_index(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.reset()
        for index in (2, 0, 1):
            queue.publish_chunk(index, [index], [index], None)
        claimed = queue.claim_next("w1", lease_timeout_s=30.0)
        assert claimed["chunk"] == 0

    def test_expired_lease_requeued_and_stolen(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.reset()
        queue.publish_chunk(0, [0], ["a"], None)
        chunk = queue.claim_next("dead", lease_timeout_s=30.0)
        stale = time.time() - 100
        os.utime(chunk["_lease_path"], (stale, stale))
        # A live lease is not stolen...
        assert queue.expired_leases(lease_timeout_s=1000.0) == []
        # ...an expired one is requeued and claimable again.
        assert queue.requeue_expired(lease_timeout_s=1.0) == 1
        stolen = queue.claim_next("thief", lease_timeout_s=1.0)
        assert stolen is not None and stolen["chunk"] == 0

    def test_completed_chunks_lease_dropped_not_requeued(self, tmp_path):
        # Worker died between publishing the result and releasing the
        # lease: the chunk is finished and must not run again.
        queue = WorkQueue(tmp_path / "q")
        queue.reset()
        queue.publish_chunk(0, [0], ["a"], None)
        chunk = queue.claim_next("dead", lease_timeout_s=30.0)
        queue.publish_result(
            chunk, "dead", [PointOutcome(ok=True, value=1)], ["fresh"], 0.1
        )
        stale = time.time() - 100
        os.utime(chunk["_lease_path"], (stale, stale))
        assert queue.requeue_expired(lease_timeout_s=1.0) == 0
        assert os.listdir(queue.directory("pending")) == []
        assert os.listdir(queue.directory("leases")) == []

    def test_segment_snapshot_skips_torn_tail(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.reset()
        with ResultStore(path=queue.segment_path("w1")) as segment:
            segment.put("fp", "text")
        with open(queue.segment_path("w1"), "a") as handle:
            handle.write('{"fingerprint": "torn", "resu')
        assert queue.load_segment_snapshot() == {"fp": "text"}

    def test_status_snapshot(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.reset()
        queue.publish_chunk(0, [0], [0], None)
        queue.publish_chunk(1, [1], [1], None)
        queue.claim_next("w1", lease_timeout_s=30.0)
        status = queue.status(lease_timeout_s=30.0)
        assert status["pending"] == 1
        assert status["leased"] == 1
        assert status["completed"] == 0
        assert not status["done"]


class TestLeaseClockSkew:
    """Lease aging under wall-clock skew (NFS queues, multi-node).

    ``expired_leases`` anchors ages to the observer's monotonic clock;
    lease mtimes written by skewed claimants must neither trigger
    instant steals (slow clock) nor immortal leases (fast clock).
    """

    def _claimed(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.reset()
        queue.publish_chunk(0, [0], ["a"], None)
        chunk = queue.claim_next("skewed", lease_timeout_s=30.0)
        return queue, chunk

    def test_backdated_lease_expires_on_first_sighting(self, tmp_path):
        queue, chunk = self._claimed(tmp_path)
        stale = time.time() - 100
        os.utime(chunk["_lease_path"], (stale, stale))
        name = os.path.basename(chunk["_lease_path"])
        assert queue.expired_leases(lease_timeout_s=1.0) == [name]

    def test_future_dated_lease_still_expires(self, tmp_path):
        # A dead claimant whose clock ran fast leaves an mtime in the
        # observer's future; raw `now - mtime` would never expire it.
        queue, chunk = self._claimed(tmp_path)
        ahead = time.time() + 1000
        os.utime(chunk["_lease_path"], (ahead, ahead))
        name = os.path.basename(chunk["_lease_path"])
        assert queue.expired_leases(lease_timeout_s=0.05) == []
        time.sleep(0.15)  # age grows by *monotonic* elapsed time
        assert queue.expired_leases(lease_timeout_s=0.05) == [name]

    def test_renewal_resets_the_observed_age(self, tmp_path):
        queue, chunk = self._claimed(tmp_path)
        old = time.time() - 1.9
        os.utime(chunk["_lease_path"], (old, old))
        # First sighting: 1.9s of a 2.0s budget already gone.
        assert queue.expired_leases(lease_timeout_s=2.0) == []
        queue.renew_lease(chunk["_lease_path"])
        time.sleep(0.3)
        # Without the renewal re-anchor this would read 1.9 + 0.3s.
        assert queue.expired_leases(lease_timeout_s=2.0) == []

    def test_claim_restarts_the_lease_clock(self, tmp_path):
        # The pending->leases rename keeps the chunk file's publish
        # mtime; a chunk claimed long after publication must not look
        # instantly expired to a fresh observer.
        queue = WorkQueue(tmp_path / "q")
        queue.reset()
        queue.publish_chunk(0, [0], ["a"], None)
        pending = queue.directory("pending") / chunk_file_name(0)
        stale = time.time() - 100
        os.utime(pending, (stale, stale))
        chunk = queue.claim_next("late", lease_timeout_s=1.0)
        assert chunk is not None
        assert queue.expired_leases(lease_timeout_s=1.0) == []


class TestWorkQueueExecutor:
    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WorkQueueExecutor(tmp_path / "q", workers=-1)
        with pytest.raises(ConfigurationError):
            WorkQueueExecutor(tmp_path / "q", workers=0)  # needs externals
        with pytest.raises(ConfigurationError):
            WorkQueueExecutor(tmp_path / "q", chunk_size=0)
        with pytest.raises(ConfigurationError):
            WorkQueueExecutor(tmp_path / "q", lease_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            WorkQueueExecutor(tmp_path / "q", timeout_s=-1.0)

    def test_keys_must_match_items(self, tmp_path):
        executor = WorkQueueExecutor(
            tmp_path / "q", workers=0, spawn_workers=False
        )
        with pytest.raises(ConfigurationError):
            executor.map(_square, [1, 2], keys=["only-one"])

    def test_empty_items_short_circuit(self, tmp_path):
        executor = WorkQueueExecutor(
            tmp_path / "q", workers=0, spawn_workers=False
        )
        assert executor.map(_square, []) == []

    def test_deadline_raises_executor_error(self, tmp_path):
        executor = WorkQueueExecutor(
            tmp_path / "q",
            workers=0,
            spawn_workers=False,
            poll_s=0.01,
            timeout_s=0.3,
        )
        with pytest.raises(ExecutorError, match="deadline"):
            executor.map(_square, [1, 2, 3])

    def test_fully_cached_map_never_touches_the_queue(self, tmp_path):
        store = ResultStore()
        keys = [f"fp-{x}" for x in (1, 2)]
        for x, key in zip((1, 2), keys):
            store.put(key, encode_outcome(PointOutcome(ok=True, value=x * x)))
        executor = WorkQueueExecutor(
            tmp_path / "q", workers=0, spawn_workers=False, store=store
        )
        outcomes = executor.map(_square, [1, 2], keys=keys)
        assert [o.value for o in outcomes] == [1, 4]
        assert executor.stats["store_hits"] == 2
        assert not (tmp_path / "q" / "manifest.json").exists()

    def test_external_worker_drives_queue(self, tmp_path, monkeypatch):
        log = tmp_path / "evals.log"
        monkeypatch.setenv("EXECUTOR_TEST_LOG", str(log))
        executor = WorkQueueExecutor(
            tmp_path / "q",
            workers=0,
            spawn_workers=False,
            chunk_size=2,
            poll_s=0.01,
            timeout_s=60.0,
        )
        holder = {}
        thread = threading.Thread(
            target=lambda: holder.update(
                outcomes=executor.map(_logged_square, list(range(6)))
            )
        )
        thread.start()
        worker_loop(
            tmp_path / "q", worker_id="w1", max_idle_s=30.0, poll_s=0.01
        )
        thread.join(timeout=60.0)
        assert [o.value for o in holder["outcomes"]] == [
            x * x for x in range(6)
        ]
        assert sorted(_read_log(log)) == list(range(6))

    def test_dead_workers_chunk_stolen_without_reevaluation(
        self, tmp_path, monkeypatch
    ):
        # The deterministic lease-reassignment scenario: a worker
        # claimed a chunk, finished one point (fsync'd into its
        # segment), then died. The lease expires, the chunk is
        # requeued, and the survivor serves the finished point from
        # the dead worker's segment — the no-double-eval contract.
        log = tmp_path / "evals.log"
        monkeypatch.setenv("EXECUTOR_TEST_LOG", str(log))
        store = ResultStore(path=tmp_path / "store.jsonl")
        executor = WorkQueueExecutor(
            tmp_path / "q",
            workers=0,
            spawn_workers=False,
            chunk_size=2,
            lease_timeout_s=0.8,
            poll_s=0.01,
            timeout_s=60.0,
            store=store,
        )
        items = list(range(6))
        keys = [f"fp-{x}" for x in items]
        ledger = MemoryLedger(run_id="chaos-lease")
        holder = {}
        thread = threading.Thread(
            target=lambda: holder.update(
                outcomes=executor.map(
                    _logged_square, items, keys=keys, ledger=ledger
                )
            )
        )
        thread.start()
        queue = WorkQueue(tmp_path / "q")
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            pending = queue.directory("pending")
            if pending.exists() and (pending / "chunk-00000.json").exists():
                break
            time.sleep(0.01)
        chunk = queue.claim_chunk("chunk-00000.json", "doomed")
        assert chunk is not None, "test lost the claim race"
        # The doomed worker completed its first point before dying.
        with ResultStore(
            path=queue.segment_path("doomed"), fsync=True
        ) as segment:
            segment.put(
                chunk["keys"][0],
                encode_outcome(PointOutcome(ok=True, value=0)),
            )
        stale = time.time() - 100
        os.utime(chunk["_lease_path"], (stale, stale))
        worker_loop(
            tmp_path / "q", worker_id="w1", max_idle_s=30.0, poll_s=0.01
        )
        thread.join(timeout=60.0)
        outcomes = holder["outcomes"]
        assert [o.value for o in outcomes] == [x * x for x in items]
        # The lease was reassigned...
        assert executor.stats["requeued"] >= 1
        assert any(
            e["kind"] == "lease_expired" for e in ledger.events
        )
        # ...and the dead worker's finished point was served from its
        # segment, never re-evaluated: item 0 is absent from the audit
        # log, every other item appears exactly once.
        evaluated = _read_log(log)
        assert sorted(evaluated) == [1, 2, 3, 4, 5]
        assert executor.stats["store_hits"] >= 1
        # The segments were merged into the durable store.
        for key in keys:
            assert store.get(key) is not None
        store.close()


class TestWorkQueueChaosSigkill:
    def test_sigkill_worker_mid_sweep_bit_identical(self, tmp_path):
        # Three real worker processes, one SIGKILL'd mid-sweep: the
        # merged result must be bit-identical to serial, and a re-run
        # against the store must evaluate nothing (the store probe —
        # the workload raises if ever called).
        sweep = Sweep(axes={"x": list(range(9))})
        serial = sweep.run(_chaos_point)
        reference = [(p.parameters, p.result) for p in serial.points]

        store = ResultStore(path=tmp_path / "store.jsonl")
        executor = WorkQueueExecutor(
            tmp_path / "q",
            workers=3,
            chunk_size=1,
            lease_timeout_s=1.5,
            poll_s=0.02,
            timeout_s=300.0,
            store=store,
        )
        holder = {}

        def run():
            holder["result"] = sweep.run(
                _chaos_point, executor=executor, store=store
            )

        thread = threading.Thread(target=run)
        thread.start()
        queue = WorkQueue(tmp_path / "q")
        leases = queue.directory("leases")
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if (
                executor._procs
                and leases.exists()
                and os.listdir(leases)
            ):
                break
            time.sleep(0.02)
        assert executor._procs, "no workers were spawned"
        executor._procs[0].kill()  # SIGKILL, not a polite TERM
        thread.join(timeout=300.0)
        executor.close()
        result = holder.get("result")
        assert result is not None, "sweep did not survive the kill"
        assert [
            (p.parameters, p.result) for p in result.points
        ] == reference
        # Store probe: every fingerprint is durable; nothing is ever
        # evaluated twice — a fresh run with a workload that *cannot*
        # be evaluated is served entirely from the store.
        resumed = sweep.run(_never, store=store)
        assert [
            (p.parameters, p.result) for p in resumed.points
        ] == reference
        store.close()
