"""Differential tests: event-driven backend vs the naive cycle loop.

The event engine's whole contract is *bit-identity on
``result_fingerprint``* with the per-cycle reference across everything
the fuzz corpus generates — arbiters, page policies, refresh pressure,
backpressure, truncation.  These tests pin that contract in tier 1;
divergences are localized to the first divergent command cycle by the
``diff_backend`` oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.sim import EventEngine, event_fallback_reason
from repro.sim.simulator import SimulationConfig
from repro.verify import fuzz
from repro.verify.differential import diff_backend, result_fingerprint


def _diff_case(params: dict, **overrides) -> None:
    """Assert event == cycle for one fuzz case (with sim overrides)."""
    if overrides:
        params = dict(params)
        params["sim"] = {**params["sim"], **overrides}

    def factory(backend, record_commands):
        return fuzz.build_simulator(
            params,
            fast_forward=False,
            backend=backend,
            record_commands=record_commands,
        )

    report = diff_backend(factory)
    assert report.identical, report.describe()


def test_backend_bit_identity_fuzz_corpus():
    """Event backend matches the naive loop across generated cases."""
    for index in range(20):
        rng = random.Random(f"event-backend:{index}")
        _diff_case(fuzz.gen_sim_case(rng))


def test_backend_bit_identity_truncated():
    """``max_cycles`` truncation lands on the same cycle in both
    backends — including a cap that cuts the run inside warm-up."""
    for index in range(6):
        rng = random.Random(f"event-truncate:{index}")
        params = fuzz.gen_sim_case(rng)
        total = params["sim"]["cycles"] + params["sim"]["warmup_cycles"]
        for cap in (max(1, total // 3), max(1, total // 30)):
            _diff_case(params, max_cycles=cap)


def test_backend_bit_identity_refresh_deadline_edges():
    """Tight retention makes refresh deadlines land mid-skip; the skip
    target must stop at the drain window every time."""
    for index in range(6):
        rng = random.Random(f"event-refresh:{index}")
        params = fuzz.gen_sim_case(rng)
        params["controller"] = {
            **params["controller"],
            "refresh_enabled": True,
            # Retention near the simulated horizon: a handful of rows
            # refresh per interval and the deadlines pile up.
            "refresh_retention_s": params["controller"][
                "refresh_retention_s"
            ]
            / 4,
        }
        _diff_case(params)


def test_backend_matches_fast_forward_reference():
    """All three execution paths agree: naive, fast-forward, event."""
    for index in range(5):
        rng = random.Random(f"event-ff:{index}")
        params = fuzz.gen_sim_case(rng)
        naive = fuzz.build_simulator(params, fast_forward=False).run()
        fast = fuzz.build_simulator(params, fast_forward=True).run()
        event = fuzz.build_simulator(
            params, fast_forward=False, backend="event"
        ).run()
        assert result_fingerprint(naive) == result_fingerprint(fast)
        assert result_fingerprint(naive) == result_fingerprint(event)


def test_backend_used_diagnostics():
    rng = random.Random("event-diag")
    params = fuzz.gen_sim_case(rng)
    cycle_sim = fuzz.build_simulator(params, fast_forward=False)
    cycle_sim.run()
    assert cycle_sim.backend_used == "cycle"
    assert cycle_sim.backend_fallback_reason is None
    event_sim = fuzz.build_simulator(
        params, fast_forward=False, backend="event"
    )
    event_sim.run()
    assert event_sim.backend_used == "event"
    assert event_sim.backend_fallback_reason is None
    assert event_sim.cycles_fast_forwarded >= 0


def test_backend_fallback_on_invariant_checking():
    """Live invariant checking needs per-cycle observation; the event
    backend declines and the run still completes on the cycle loop."""
    rng = random.Random("event-invariants")
    params = fuzz.gen_sim_case(rng)
    sim = fuzz.build_simulator(
        params,
        fast_forward=False,
        backend="event",
        check_invariants="collect",
    )
    reason = event_fallback_reason(sim)
    assert reason is not None and "invariant" in reason
    result = sim.run()
    assert sim.backend_used == "cycle"
    assert sim.backend_fallback_reason == reason
    reference = fuzz.build_simulator(params, fast_forward=False).run()
    assert result_fingerprint(result) == result_fingerprint(reference)


def test_backend_fallback_on_observability():
    from repro.obs import Observability

    rng = random.Random("event-obs")
    params = fuzz.gen_sim_case(rng)
    sim = fuzz.build_simulator(
        params,
        fast_forward=False,
        backend="event",
        obs=Observability.create(trace=False),
    )
    assert event_fallback_reason(sim) is not None
    sim.run()
    assert sim.backend_used == "cycle"
    assert sim.backend_fallback_reason is not None


def test_backend_fallback_on_subclassed_controller():
    """Unknown controller subclasses may override stepped hooks the
    skip analysis never sees — the engine must refuse them."""
    from repro.controller.controller import MemoryController

    class TracingController(MemoryController):
        pass

    rng = random.Random("event-subclass")
    params = fuzz.gen_sim_case(rng)
    sim = fuzz.build_simulator(params, fast_forward=False, backend="event")
    sim.controller.__class__ = TracingController
    reason = event_fallback_reason(sim)
    assert reason is not None and "controller" in reason
    sim.run()
    assert sim.backend_used == "cycle"


def test_backend_config_validation():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        SimulationConfig(cycles=100, backend="quantum")
    assert SimulationConfig(cycles=100, backend="event").backend == "event"


def test_event_engine_exported():
    assert EventEngine is not None
