"""Tests for the run ledger, progress reporter and their sweep wiring.

Pins the three telemetry contracts of docs/OBSERVABILITY.md:

* a resumed sweep writes ONE continuous ledger (no duplicate event
  ids, a ``resume`` event at the seam) and identical results;
* telemetry never changes results — a sweep with ledger + progress on
  produces bit-identical :func:`result_fingerprint`\\ s;
* worker-side counters recorded inside pool processes surface in the
  parent's ``GLOBAL_METRICS`` after the pool run.
"""

import io
import json

import pytest

from repro.core.parallel import ParallelConfig, parallel_map
from repro.core.sweep import Sweep
from repro.errors import ConfigurationError
from repro.obs.ledger import RunLedger, coerce_ledger
from repro.obs.metrics import GLOBAL_METRICS
from repro.obs.progress import ProgressReporter, _format_eta
from repro.obs.workloads import mpeg2_decoder_simulator
from repro.verify.differential import result_fingerprint


def read_events(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


@pytest.fixture
def global_metrics():
    GLOBAL_METRICS.enabled = True
    GLOBAL_METRICS.reset()
    yield GLOBAL_METRICS
    GLOBAL_METRICS.reset()
    GLOBAL_METRICS.enabled = False


# Module-level so the process pool can pickle it.
def _count_and_square(x):
    GLOBAL_METRICS.counter("workload.points").inc()
    GLOBAL_METRICS.histogram("workload.value").record(x)
    return x * x


def _sim_point(cycles, load):
    simulator = mpeg2_decoder_simulator(
        cycles=cycles, warmup_cycles=50, load=load
    )
    return result_fingerprint(simulator.run())


class TestRunLedger:
    def test_fresh_ledger_opens_with_provenance(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            assert not ledger.resumed
            ledger.event("run_start", workload="test")
        events = read_events(path)
        assert events[0]["kind"] == "ledger_open"
        assert "python" in events[0]["environment"]
        assert [e["id"] for e in events] == list(range(len(events)))
        assert len({e["run"] for e in events}) == 1

    def test_span_records_duration_and_link(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            with ledger.span("phase", detail=1) as span_id:
                pass
        start, end = read_events(path)[1:]
        assert start["kind"] == "span_start"
        assert end["kind"] == "span_end"
        assert end["span"] == span_id == start["id"]
        assert end["s"] >= 0

    def test_reopen_continues_ids_and_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as first:
            run_id = first.run_id
            first.event("run_start", workload="a")
        with RunLedger(path) as second:
            assert second.resumed
            assert second.run_id == run_id
            second.event("run_start", workload="b")
        events = read_events(path)
        ids = [e["id"] for e in events]
        assert ids == list(range(len(events)))
        assert sum(1 for e in events if e["kind"] == "resume") == 1
        assert {e["run"] for e in events} == {run_id}

    def test_resume_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            run_id = ledger.run_id
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"id": 55, "run": "' + run_id + '", "ki')
        resumed = RunLedger(path)
        resumed.close()
        assert resumed.run_id == run_id
        # The torn line never parsed, so ids continue from the last
        # intact event, not the torn fragment's id.
        from repro.reporting.runreport import load_ledger

        tail = load_ledger(path)[-1]
        assert tail["kind"] == "resume"
        assert tail["id"] == 1

    def test_empty_kind_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.jsonl")
        with pytest.raises(ConfigurationError):
            ledger.event("")
        ledger.close()

    def test_coerce_ledger_contract(self, tmp_path):
        assert coerce_ledger(None) == (None, False)
        opened = RunLedger(tmp_path / "a.jsonl")
        assert coerce_ledger(opened) == (opened, False)
        opened.close()
        owned, owns = coerce_ledger(str(tmp_path / "b.jsonl"))
        assert owns and isinstance(owned, RunLedger)
        owned.close()
        with pytest.raises(ConfigurationError):
            coerce_ledger(42)


class TestProgressReporter:
    def test_disabled_reporter_writes_nothing(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=10, stream=stream)
        reporter.start()
        reporter.update(done=5)
        reporter.finish()
        assert stream.getvalue() == ""

    def test_enabled_reporter_renders_rate_and_eta(self):
        stream = io.StringIO()
        ticks = iter([0.0, 1.0, 2.0, 2.0])
        reporter = ProgressReporter(
            total=10,
            stream=stream,
            enabled=True,
            min_interval_s=0.0,
            clock=lambda: next(ticks),
        )
        reporter.start()
        reporter.update(done=4, failed=1)
        reporter.finish()
        output = stream.getvalue()
        assert "5/10 50%" in output
        assert "failed 1" in output
        assert "eta" in output
        assert output.endswith("\n")

    def test_update_clamps_past_total(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=4, stream=stream, enabled=True, min_interval_s=0.0
        )
        reporter.update(done=9)
        assert "4/4 100%" in stream.getvalue()

    def test_throttle_limits_renders(self):
        stream = io.StringIO()
        ticks = iter([0.0] + [0.01] * 50)
        reporter = ProgressReporter(
            total=50,
            stream=stream,
            enabled=True,
            min_interval_s=10.0,
            clock=lambda: next(ticks),
        )
        reporter.start()
        for _ in range(20):
            reporter.update(done=1)
        assert stream.getvalue().count("\r") <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProgressReporter(total=-1)
        with pytest.raises(ConfigurationError):
            ProgressReporter(total=1, min_interval_s=-0.5)

    def test_format_eta(self):
        assert _format_eta(65) == "1:05"
        assert _format_eta(3600) == "1:00:00"
        assert _format_eta(0) == "0:00"

    def test_prefilled_points_excluded_from_rate(self):
        # Regression: a journal/store resume that skipped thousands of
        # points in the first throttle window used to count them as
        # measured rate and extrapolate a garbage ETA from the burst.
        stream = io.StringIO()
        ticks = iter([10.0, 11.0, 12.0, 12.0])
        reporter = ProgressReporter(
            total=100,
            stream=stream,
            enabled=True,
            min_interval_s=0.0,
            clock=lambda: next(ticks),
        )
        reporter.start()
        reporter.prefill(done=50)
        # No fresh point yet: no rate to extrapolate, ETA is unknown —
        # not "50 points in one second, done in a second".
        first = stream.getvalue()
        assert "0.0/s" in first
        assert "eta —" in first
        reporter.update(done=10)
        # Rate covers only the 10 fresh points over 2s: 5.0/s, so the
        # 40 remaining points are 8 seconds out.
        second = stream.getvalue()
        assert "5.0/s" in second
        assert "eta 0:08" in second

    def test_all_cached_resume_renders_clean_completion(self):
        # The all-journal-skipped first window: every point arrives
        # via prefill, zero remain — the final line must pin 100% and
        # eta 0:00, never a division-shaped garbage value.
        stream = io.StringIO()
        ticks = iter([0.0, 1.0, 1.0, 1.0])
        reporter = ProgressReporter(
            total=8,
            stream=stream,
            enabled=True,
            min_interval_s=0.0,
            clock=lambda: next(ticks),
        )
        reporter.start()
        reporter.prefill(done=6, failed=2)
        reporter.finish()
        output = stream.getvalue()
        assert "8/8 100%" in output
        assert "eta 0:00" in output
        assert "failed 2" in output


class TestSweepLedger:
    AXES = {"x": [1, 2, 3], "y": [10, 20]}

    def test_sweep_emits_run_events(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        Sweep(axes=self.AXES).run(lambda x, y: x * y, ledger=path)
        kinds = [e["kind"] for e in read_events(path)]
        assert kinds[0] == "ledger_open"
        assert "run_start" in kinds
        assert kinds[-1] == "run_end"
        end = read_events(path)[-1]
        assert end["status"] == "ok"
        assert end["n_ok"] == 6

    def test_resumed_sweep_one_continuous_ledger(self, tmp_path):
        """Interrupt, resume: no duplicate ids, one resume event,
        results identical to an uninterrupted run."""
        ledger = tmp_path / "sweep.jsonl"
        journal = tmp_path / "sweep.journal.jsonl"
        sweep = Sweep(axes=self.AXES)

        def interrupted(x, y):
            if x == 3:
                raise RuntimeError("simulated crash")
            return x * y

        with pytest.raises(RuntimeError):
            sweep.run(interrupted, ledger=ledger, journal=journal)
        first_events = read_events(ledger)
        assert first_events[-1]["kind"] == "run_end"
        assert first_events[-1]["status"] == "error"

        resumed = sweep.run(lambda x, y: x * y, ledger=ledger,
                            journal=journal)
        fresh = Sweep(axes=self.AXES).run(lambda x, y: x * y)
        assert [(p.parameters, p.result) for p in resumed.points] == [
            (p.parameters, p.result) for p in fresh.points
        ]
        events = read_events(ledger)
        ids = [e["id"] for e in events]
        assert len(ids) == len(set(ids))
        assert ids == list(range(len(events)))
        assert sum(1 for e in events if e["kind"] == "resume") == 1
        assert len({e["run"] for e in events}) == 1
        second_start = [
            e for e in events if e["kind"] == "run_start"
        ][-1]
        assert second_start["journaled_points"] == 4

    def test_quarantines_logged(self, tmp_path):
        from repro.errors import InfeasibleError

        path = tmp_path / "sweep.jsonl"

        def flaky(x, y):
            if x == 2:
                raise InfeasibleError("nope")
            return x * y

        result = Sweep(axes=self.AXES).run(
            flaky, skip_errors=True, ledger=path
        )
        assert len(result.failures) == 2
        quarantines = [
            e for e in read_events(path) if e["kind"] == "quarantine"
        ]
        assert len(quarantines) == 2
        assert quarantines[0]["parameters"]["x"] == 2

    def test_telemetry_preserves_result_fingerprints(self, tmp_path):
        """The acceptance contract: ledger + progress on produces
        bit-identical result fingerprints vs observability off."""
        sweep = Sweep(axes={"cycles": [300, 500], "load": [0.8, 1.2]})
        plain = sweep.run(_sim_point)
        stream = io.StringIO()
        observed = sweep.run(
            _sim_point,
            ledger=tmp_path / "sweep.jsonl",
            progress=ProgressReporter(
                total=sweep.n_points,
                stream=stream,
                enabled=True,
                min_interval_s=0.0,
            ),
        )
        assert [(p.parameters, p.result) for p in plain.points] == [
            (p.parameters, p.result) for p in observed.points
        ]
        assert "4/4" in stream.getvalue()

    def test_worker_counters_fold_into_parent(
        self, tmp_path, global_metrics
    ):
        """Counters incremented inside pool workers surface in the
        parent registry after the run (the aggregation tentpole)."""
        outcomes = parallel_map(
            _count_and_square,
            range(10),
            config=ParallelConfig(workers=2, chunk_size=5),
        )
        assert [o.value for o in outcomes] == [x * x for x in range(10)]
        assert global_metrics.value("parallel_map.pool_runs") == 1
        assert global_metrics.value("workload.points") == 10
        histogram = global_metrics.histogram("workload.value")
        assert histogram.count == 10
        assert histogram.maximum == 9

    def test_parallel_sweep_metrics_event_carries_worker_counters(
        self, tmp_path, global_metrics
    ):
        path = tmp_path / "sweep.jsonl"
        Sweep(axes={"x": list(range(8))}).run(
            _count_and_square_kw,
            parallel=ParallelConfig(workers=2, chunk_size=4),
            ledger=path,
        )
        metrics_events = [
            e for e in read_events(path) if e["kind"] == "metrics"
        ]
        assert len(metrics_events) == 1
        counters = metrics_events[0]["snapshot"]["counters"]
        assert counters["workload.points"] == 8


# Module-level so the process pool can pickle it (kwargs form for Sweep).
def _count_and_square_kw(x):
    return _count_and_square(x)
