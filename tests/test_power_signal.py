"""Tests for repro.power.signal and the market forecast."""

import pytest

from repro.apps.markets import MarketForecast
from repro.errors import ConfigurationError
from repro.power.signal import (
    InterconnectModel,
    OFF_CHIP_TRACE,
    ON_CHIP_WIRE,
    speed_advantage,
)


class TestInterconnectModel:
    def test_on_chip_faster(self):
        # Section 1: "lower propagation times and thus higher speeds".
        assert (
            ON_CHIP_WIRE.propagation_delay_s()
            < OFF_CHIP_TRACE.propagation_delay_s()
        )
        assert speed_advantage() > 2.0

    def test_on_chip_better_noise_margin(self):
        # "In addition, noise immunity is enhanced."
        assert ON_CHIP_WIRE.noise_margin_v(2.5) > OFF_CHIP_TRACE.noise_margin_v(
            2.5
        ) * (2.5 / 3.3)
        assert (
            ON_CHIP_WIRE.noise_budget_fraction
            > OFF_CHIP_TRACE.noise_budget_fraction
        )

    def test_off_chip_supports_100mhz(self):
        # Sanity anchor: the board trace must still support PC100-class
        # signalling.
        assert OFF_CHIP_TRACE.max_toggle_rate_hz() >= 100e6

    def test_on_chip_supports_concept_clock(self):
        assert ON_CHIP_WIRE.max_toggle_rate_hz() >= 143e6

    def test_delay_components(self):
        model = OFF_CHIP_TRACE
        assert model.propagation_delay_s() > model.flight_time_s()
        assert model.rc_time_s() > 0

    def test_longer_wire_slower(self):
        short = ON_CHIP_WIRE
        long = InterconnectModel(
            name="long on-chip",
            length_m=0.012,
            resistance_ohm_per_m=short.resistance_ohm_per_m,
            capacitance_f_per_m=short.capacitance_f_per_m,
            lumped_capacitance_f=short.lumped_capacitance_f,
            velocity_m_per_s=short.velocity_m_per_s,
            noise_budget_fraction=short.noise_budget_fraction,
        )
        assert long.propagation_delay_s() > short.propagation_delay_s()

    def test_wire_length_optimization_claim(self):
        # "Interface wire lengths can be optimized for the application":
        # halving the wire length raises the achievable rate.
        half = InterconnectModel(
            name="half",
            length_m=ON_CHIP_WIRE.length_m / 2,
            resistance_ohm_per_m=ON_CHIP_WIRE.resistance_ohm_per_m,
            capacitance_f_per_m=ON_CHIP_WIRE.capacitance_f_per_m,
            lumped_capacitance_f=ON_CHIP_WIRE.lumped_capacitance_f,
            velocity_m_per_s=ON_CHIP_WIRE.velocity_m_per_s,
            noise_budget_fraction=ON_CHIP_WIRE.noise_budget_fraction,
        )
        assert half.max_toggle_rate_hz() > ON_CHIP_WIRE.max_toggle_rate_hz()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InterconnectModel(
                name="bad",
                length_m=0.0,
                resistance_ohm_per_m=1.0,
                capacitance_f_per_m=1e-12,
                lumped_capacitance_f=0.0,
                velocity_m_per_s=1e8,
                noise_budget_fraction=0.3,
            )
        with pytest.raises(ConfigurationError):
            ON_CHIP_WIRE.noise_margin_v(0.0)
        with pytest.raises(ConfigurationError):
            ON_CHIP_WIRE.rc_time_s(-1.0)


class TestMarketForecast:
    def test_default_lands_in_paper_band(self):
        # Section 2: "$m in 1997, rising to 4-8bn in 2001".
        forecast = MarketForecast()
        assert forecast.within_paper_range_2001()

    def test_implied_growth_is_steep(self):
        # Reaching even the low end requires ~68%/yr from $500m.
        low = MarketForecast(annual_growth=0.68)
        assert low.value_usd(2001) >= 3.9e9

    def test_base_year_identity(self):
        forecast = MarketForecast()
        assert forecast.value_usd(1997) == pytest.approx(500e6)

    def test_slow_growth_misses_band(self):
        slow = MarketForecast(annual_growth=0.2)
        assert not slow.within_paper_range_2001()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MarketForecast(base_value_usd=0.0)
