"""Tests for repro.dram.catalog: commodity parts and granularity."""

import pytest

from repro.dram.catalog import (
    COMMODITY_PARTS,
    DiscreteSystem,
    SDRAMPart,
    smallest_system,
)
from repro.dram.organizations import Organization
from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT


class TestCatalogConsistency:
    def test_all_parts_self_consistent(self):
        for part in COMMODITY_PARTS:
            assert part.capacity_bits == part.organization.capacity_bits

    def test_width_range_matches_paper(self):
        # "Discrete SDRAMs are limited to 4-16 bits."
        widths = {part.width_bits for part in COMMODITY_PARTS}
        assert widths <= {4, 8, 16}
        assert min(widths) == 4
        assert max(widths) == 16

    def test_part_mismatch_rejected(self):
        org = Organization(
            n_banks=2, n_rows=256, page_bits=8192, word_bits=16
        )
        with pytest.raises(ConfigurationError):
            SDRAMPart(name="bad", capacity_bits=8 * MBIT, organization=org)


class TestPaperGranularityExample:
    """Section 1: 256-bit bus from 4-Mbit x16 parts -> 64-Mbit system."""

    def test_sixteen_chips_for_256_bits(self):
        system = smallest_system(8 * MBIT, 256)
        assert system.part.width_bits == 16
        assert system.n_chips == 16
        assert system.total_bits == 64 * MBIT

    def test_overhead_factor_seven(self):
        # The application needs 8 Mbit but gets 64: 56 Mbit (7x) wasted.
        system = smallest_system(8 * MBIT, 256)
        assert system.overhead_bits == 56 * MBIT
        assert system.overhead_fraction == pytest.approx(7.0)

    def test_width_met(self):
        system = smallest_system(8 * MBIT, 256)
        assert system.total_width_bits >= 256

    def test_capacity_dominates_when_narrow(self):
        # A narrow requirement is sized by capacity instead.
        system = smallest_system(48 * MBIT, 16)
        assert system.total_bits >= 48 * MBIT
        assert system.overhead_fraction < 1.0

    def test_peak_bandwidth(self):
        system = smallest_system(8 * MBIT, 256)
        assert system.peak_bandwidth_bits_per_s == pytest.approx(
            256 * 100e6
        )

    def test_price_positive(self):
        assert smallest_system(8 * MBIT, 256).total_price > 0


class TestSelectionRules:
    def test_minimizes_installed_capacity(self):
        system = smallest_system(4 * MBIT, 64)
        alternatives = []
        for part in COMMODITY_PARTS:
            chips = max(
                -(-64 // part.width_bits),
                -(-(4 * MBIT) // part.capacity_bits),
            )
            alternatives.append(chips * part.capacity_bits)
        assert system.total_bits == min(alternatives)

    def test_empty_catalog(self):
        with pytest.raises(InfeasibleError):
            smallest_system(MBIT, 16, parts=())

    def test_bad_requirements(self):
        with pytest.raises(ConfigurationError):
            smallest_system(0, 16)
        with pytest.raises(ConfigurationError):
            smallest_system(MBIT, 0)


class TestDiscreteSystem:
    def test_overhead_zero_when_exact(self):
        part = COMMODITY_PARTS[0]
        system = DiscreteSystem(
            part=part,
            n_chips=2,
            required_bits=2 * part.capacity_bits,
            required_width=32,
        )
        assert system.overhead_bits == 0
        assert system.overhead_fraction == 0.0
