"""Tests for repro.dram.timing."""

import pytest

from repro.dram.timing import EDRAM_TIMING, PC100_TIMING, TimingParameters
from repro.errors import ConfigurationError


class TestBuiltinTimings:
    def test_pc100_clock(self):
        assert PC100_TIMING.clock_hz == pytest.approx(100e6)

    def test_edram_clock_matches_concept(self):
        # "Cycle times better than 7 ns, corresponding to clock
        # frequencies better than 143 MHz."
        assert EDRAM_TIMING.clock_period_ns == pytest.approx(7.0)
        assert EDRAM_TIMING.clock_hz == pytest.approx(142.86e6, rel=1e-3)

    def test_latencies(self):
        # PC100: miss = tRP + tRCD + CL = 2+2+2 cycles = 60 ns.
        assert PC100_TIMING.row_miss_latency_cycles == 6
        assert PC100_TIMING.row_miss_latency_ns == pytest.approx(60.0)
        assert PC100_TIMING.row_hit_latency_cycles == 2

    def test_trc_covers_tras_plus_trp(self):
        for timing in (PC100_TIMING, EDRAM_TIMING):
            assert timing.t_rc >= timing.t_ras + 1


class TestFromNanoseconds:
    def test_rounds_up(self):
        timing = TimingParameters.from_nanoseconds(
            clock_period_ns=10.0,
            t_rcd_ns=21.0,  # 2.1 cycles -> 3
            t_cas_cycles=2,
            t_rp_ns=20.0,  # exactly 2
            t_ras_ns=50.0,
            t_rrd_ns=15.0,
            t_wr_ns=15.0,
            t_rfc_ns=80.0,
            burst_length=8,
        )
        assert timing.t_rcd == 3
        assert timing.t_rp == 2
        assert timing.t_rc == timing.t_ras + timing.t_rp

    def test_faster_clock_more_cycles(self):
        # Same analog delays cost more cycles at a faster clock: the
        # DRAM-core-vs-interface divergence of Section 4.
        slow = PC100_TIMING
        fast = slow.scaled_to_clock(5.0)
        assert fast.t_rcd >= slow.t_rcd
        assert fast.t_rcd * 5.0 >= slow.t_rcd * 10.0 - 5.0
        assert fast.row_miss_latency_ns <= slow.row_miss_latency_ns + 10.0

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters.from_nanoseconds(
                clock_period_ns=10.0,
                t_rcd_ns=0.0,
                t_cas_cycles=2,
                t_rp_ns=20.0,
                t_ras_ns=50.0,
                t_rrd_ns=15.0,
                t_wr_ns=15.0,
                t_rfc_ns=80.0,
                burst_length=8,
            )


class TestValidation:
    def test_zero_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(
                clock_period_ns=0.0,
                t_rcd=2,
                t_cas=2,
                t_rp=2,
                t_ras=5,
                t_rc=7,
                t_rrd=2,
                t_wr=2,
                t_rfc=8,
                burst_length=8,
            )

    def test_inconsistent_trc_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(
                clock_period_ns=10.0,
                t_rcd=2,
                t_cas=2,
                t_rp=2,
                t_ras=5,
                t_rc=5,  # < tRAS + 1
                t_rrd=2,
                t_wr=2,
                t_rfc=8,
                burst_length=8,
            )

    def test_zero_burst_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(
                clock_period_ns=10.0,
                t_rcd=2,
                t_cas=2,
                t_rp=2,
                t_ras=5,
                t_rc=7,
                t_rrd=2,
                t_wr=2,
                t_rfc=8,
                burst_length=0,
            )
