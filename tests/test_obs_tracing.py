"""Distributed tracing, metrics exposition and the ``repro top`` view.

Pins the observability PR's contracts end to end:

* :class:`~repro.obs.tracectx.TraceContext` minting/serialisation;
* ledger trace stamping — and byte-identity when tracing is off;
* the executor → work-queue → worker round trip: chunk contexts ship
  in chunk files, worker spans parent into the coordinator's map span,
  and :func:`~repro.obs.tracemerge.merge_traces` stitches the ledgers
  into one Chrome trace with zero orphan parents;
* :mod:`~repro.obs.expo` render/parse round trips, strictness, and the
  work-queue sample mapping;
* metrics-layer regressions (non-finite histogram input, retry
  double-fold in ``parallel_map``);
* :func:`~repro.obs.top.render_dashboard` / ``top_loop`` behaviour;
* the service's ``/v1/metrics`` endpoint over real HTTP.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.expo import (
    parse_prometheus,
    render_prometheus,
    sample_value,
    sanitize_name,
    workqueue_samples,
)
from repro.obs.ledger import MemoryLedger, RunLedger
from repro.obs.metrics import BoundedHistogram, MetricsRegistry
from repro.obs.top import render_dashboard, top_loop
from repro.obs.tracectx import TraceContext, coerce_trace
from repro.obs.tracemerge import (
    load_trace_file,
    merge_traces,
    orphan_parents,
    write_merged_trace,
)


class TestTraceContext:
    def test_root_mints_well_formed_ids(self):
        root = TraceContext.root()
        assert len(root.trace_id) == 32
        assert len(root.span_id) == 16
        assert root.parent_span_id is None
        int(root.trace_id, 16)  # hex or raises
        int(root.span_id, 16)

    def test_child_shares_trace_and_parents_correctly(self):
        root = TraceContext.root()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id
        grandchild = child.child()
        assert grandchild.parent_span_id == child.span_id

    def test_dict_round_trip(self):
        root = TraceContext.root()
        assert "parent_span_id" not in root.to_dict()
        assert TraceContext.from_dict(root.to_dict()) == root
        child = root.child()
        dumped = child.to_dict()
        assert dumped["parent_span_id"] == root.span_id
        assert TraceContext.from_dict(dumped) == child

    def test_coerce_accepts_context_dict_and_none(self):
        root = TraceContext.root()
        assert coerce_trace(None) is None
        assert coerce_trace(root) is root
        assert coerce_trace(root.to_dict()) == root

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceContext(trace_id="", span_id="abc")
        with pytest.raises(ConfigurationError):
            TraceContext.from_dict({"trace_id": "only"})
        with pytest.raises(ConfigurationError):
            TraceContext.from_dict("not-a-dict")


class TestLedgerTracing:
    def test_traced_events_carry_ids_untraced_are_byte_identical(
        self, tmp_path
    ):
        # The zero-overhead contract: an untraced ledger must emit the
        # exact record shape it emitted before tracing existed.
        plain = MemoryLedger(run_id="r")
        plain.event("run_start", n=1)
        assert "trace_id" not in plain.events[-1]
        assert "span_id" not in plain.events[-1]

        root = TraceContext.root()
        traced = MemoryLedger(run_id="r", trace=root)
        traced.event("run_start", n=1)
        record = traced.events[-1]
        assert record["trace_id"] == root.trace_id
        assert record["span_id"] == root.span_id

    def test_span_opens_child_context(self, tmp_path):
        root = TraceContext.root()
        ledger = RunLedger(tmp_path / "run.jsonl", trace=root)
        with ledger.span("phase"):
            ledger.event("checkpoint", step=1)
        ledger.close()
        _, records = load_trace_file(tmp_path / "run.jsonl")
        spans = [r for r in records if r["kind"] == "span_start"]
        inner = [r for r in records if r["kind"] == "checkpoint"]
        assert spans and inner
        assert spans[0]["parent_span_id"] == root.span_id
        assert spans[0]["span_id"] != root.span_id
        # The inner event lives in the span's context.
        assert inner[0]["span_id"] == spans[0]["span_id"]

    def test_bind_trace_is_none_safe(self):
        ledger = MemoryLedger(run_id="r")
        with ledger.bind_trace(None):
            ledger.event("run_start")
        assert "trace_id" not in ledger.events[-1]


def _trace_square(x: int) -> int:
    return x * x


class TestDistributedTraceRoundTrip:
    def test_chunk_contexts_parent_across_processes(self, tmp_path):
        # Coordinator in a thread, worker in this thread — the queue
        # files and ledgers are exactly what two processes would see.
        from repro.core.executor import WorkQueueExecutor
        from repro.core.worker import worker_loop

        root = TraceContext.root()
        ledger_path = tmp_path / "coordinator.jsonl"
        ledger = RunLedger(ledger_path, trace=root)
        executor = WorkQueueExecutor(
            tmp_path / "q",
            workers=0,
            spawn_workers=False,
            chunk_size=2,
            poll_s=0.01,
            timeout_s=60.0,
        )
        holder: dict = {}
        thread = threading.Thread(
            target=lambda: holder.update(
                outcomes=executor.map(
                    _trace_square, list(range(6)), ledger=ledger
                )
            )
        )
        thread.start()
        worker_loop(
            tmp_path / "q", worker_id="tw", max_idle_s=30.0, poll_s=0.01
        )
        thread.join(timeout=60.0)
        ledger.close()
        assert [o.value for o in holder["outcomes"]] == [
            x * x for x in range(6)
        ]

        worker_ledger = tmp_path / "q" / "ledgers" / "worker-tw.jsonl"
        assert worker_ledger.exists()
        _, coordinator = load_trace_file(ledger_path)
        _, worker = load_trace_file(worker_ledger)

        map_spans = [
            r
            for r in coordinator
            if r["kind"] == "span_start" and r.get("name") == "queue map"
        ]
        assert len(map_spans) == 1
        map_span_id = map_spans[0]["span_id"]
        worker_spans = [r for r in worker if r["kind"] == "span_start"]
        assert worker_spans
        # Every worker chunk span parents directly into the
        # coordinator's map span, one trace id throughout.
        for span in worker_spans:
            assert span["parent_span_id"] == map_span_id
            assert span["trace_id"] == root.trace_id
        assert orphan_parents([coordinator, worker]) == set()

        merged = merge_traces([ledger_path, worker_ledger])
        assert merged["otherData"]["orphan_parents"] == []
        assert merged["otherData"]["trace_ids"] == [root.trace_id]
        phases = {e.get("ph") for e in merged["traceEvents"]}
        assert "X" in phases
        # Cross-process parenting draws flow arrows.
        assert "s" in phases and "f" in phases

    def test_untraced_map_ships_no_context_and_no_worker_ledger(
        self, tmp_path
    ):
        from repro.core.executor import WorkQueueExecutor
        from repro.core.worker import worker_loop

        executor = WorkQueueExecutor(
            tmp_path / "q",
            workers=0,
            spawn_workers=False,
            chunk_size=2,
            poll_s=0.01,
            timeout_s=60.0,
        )
        holder: dict = {}
        thread = threading.Thread(
            target=lambda: holder.update(
                outcomes=executor.map(_trace_square, [1, 2, 3])
            )
        )
        thread.start()
        worker_loop(
            tmp_path / "q", worker_id="uw", max_idle_s=30.0, poll_s=0.01
        )
        thread.join(timeout=60.0)
        assert [o.value for o in holder["outcomes"]] == [1, 4, 9]
        assert not (tmp_path / "q" / "ledgers").exists()


class TestTraceMerge:
    def test_load_classifies_jsonl_array_envelope_and_chrome(
        self, tmp_path
    ):
        jsonl = tmp_path / "a.jsonl"
        jsonl.write_text('{"kind": "run_start", "t": 1.0}\n', "utf-8")
        assert load_trace_file(jsonl)[0] == "ledger"

        array = tmp_path / "b.json"
        array.write_text('[{"kind": "run_end", "t": 2.0}]', "utf-8")
        assert load_trace_file(array)[0] == "ledger"

        envelope = tmp_path / "c.json"
        envelope.write_text(
            '{"events": [{"kind": "run_start", "t": 0.5}]}', "utf-8"
        )
        fmt, records = load_trace_file(envelope)
        assert fmt == "ledger" and records[0]["kind"] == "run_start"

        chrome = tmp_path / "d.json"
        chrome.write_text('{"traceEvents": []}', "utf-8")
        assert load_trace_file(chrome)[0] == "chrome"

        garbage = tmp_path / "e.txt"
        garbage.write_text("not a trace\n", "utf-8")
        with pytest.raises(ConfigurationError):
            load_trace_file(garbage)

    def test_torn_jsonl_tail_is_skipped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"kind": "run_start", "t": 1.0}\n{"kind": "span_st', "utf-8"
        )
        fmt, records = load_trace_file(path)
        assert fmt == "ledger" and len(records) == 1

    def test_orphan_parents_tolerates_duplicate_spans(self):
        # A stolen chunk re-emits under the same shipped identity:
        # duplicates are fine, only truly undefined parents are orphans.
        coordinator = [{"kind": "span_start", "span_id": "p1"}]
        worker_a = [
            {"kind": "span_start", "span_id": "c1", "parent_span_id": "p1"}
        ]
        worker_b = [
            {"kind": "span_start", "span_id": "c1", "parent_span_id": "p1"}
        ]
        assert orphan_parents([coordinator, worker_a, worker_b]) == set()
        assert orphan_parents([worker_a]) == {"p1"}

    def test_unmatched_span_start_degrades_to_instant(self, tmp_path):
        path = tmp_path / "killed.jsonl"
        records = [
            {"kind": "span_start", "id": 1, "name": "chunk 0", "t": 5.0}
        ]
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n", "utf-8"
        )
        merged = merge_traces([path])
        instants = [
            e
            for e in merged["traceEvents"]
            if e.get("ph") == "i" and e.get("name") == "chunk 0"
        ]
        assert len(instants) == 1

    def test_write_merged_trace_is_loadable_chrome_json(self, tmp_path):
        ledger = RunLedger(
            tmp_path / "run.jsonl", trace=TraceContext.root()
        )
        with ledger.span("work"):
            pass
        ledger.close()
        out = tmp_path / "merged.json"
        write_merged_trace([tmp_path / "run.jsonl"], out)
        document = json.loads(out.read_text("utf-8"))
        assert isinstance(document["traceEvents"], list)
        assert document["otherData"]["orphan_parents"] == []


class TestExposition:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("serve.shed").inc(3)
        registry.gauge("serve.queue_depth").set(2)
        hist = registry.histogram("serve.job_ms.edram_tradeoff")
        for value in (1.0, 2.0, 3.0, 10.0):
            hist.record(value)
        text = render_prometheus(
            registry.snapshot(),
            extra=[
                {
                    "name": "serve.breaker_state",
                    "value": 1,
                    "labels": {"workload": "edram_tradeoff",
                               "state": "closed"},
                }
            ],
            labels_from={"serve.job_ms": "workload"},
        )
        parsed = parse_prometheus(text)
        assert parsed["families"]["repro_serve_shed"] == "counter"
        assert parsed["families"]["repro_serve_job_ms"] == "summary"
        assert sample_value(parsed, "repro_serve_shed") == 3
        assert (
            sample_value(
                parsed,
                "repro_serve_job_ms_count",
                workload="edram_tradeoff",
            )
            == 4
        )
        assert (
            sample_value(
                parsed,
                "repro_serve_breaker_state",
                workload="edram_tradeoff",
                state="closed",
            )
            == 1
        )

    def test_sanitize_prefixes_and_cleans(self):
        assert sanitize_name("serve.job_ms") == "repro_serve_job_ms"
        assert sanitize_name("a-b c") == "repro_a_b_c"

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ConfigurationError):
            parse_prometheus("repro_x{broken 1\n")
        with pytest.raises(ConfigurationError):
            parse_prometheus("not a sample line\n")
        # A sample with no TYPE declaration is a rendering bug.
        with pytest.raises(ConfigurationError):
            parse_prometheus("repro_untyped 1\n")

    def test_label_escaping_round_trips(self):
        text = render_prometheus(
            {},
            extra=[
                {
                    "name": "serve.note",
                    "value": 1,
                    "labels": {"detail": 'quote " slash \\ nl \n end'},
                }
            ],
        )
        parsed = parse_prometheus(text)
        _, labels, _ = parsed["samples"][0]
        assert labels["detail"] == 'quote " slash \\ nl \n end'

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("serve.x").inc()
        with pytest.raises(ConfigurationError):
            render_prometheus(
                registry.snapshot(),
                extra=[{"name": "serve.x", "value": 1, "type": "gauge"}],
            )

    def test_workqueue_samples_cover_liveness(self):
        status = {
            "pending": 3,
            "leased": 1,
            "expired": 0,
            "completed": 2,
            "done": False,
            "lease_ages": {"chunk-000001": 0.5},
            "workers": [
                {"worker": "w1", "pid": 42, "t": 99.0, "chunks_done": 2}
            ],
        }
        text = render_prometheus(
            {}, extra=workqueue_samples(status, now=100.0)
        )
        parsed = parse_prometheus(text)
        assert sample_value(parsed, "repro_workqueue_pending") == 3
        assert sample_value(parsed, "repro_workqueue_done") == 0
        assert (
            sample_value(
                parsed, "repro_workqueue_lease_age_s", lease="chunk-000001"
            )
            == 0.5
        )
        assert (
            sample_value(
                parsed, "repro_workqueue_worker_heartbeat_age_s", worker="w1"
            )
            == 1.0
        )
        assert (
            parsed["families"]["repro_workqueue_worker_chunks_done"]
            == "counter"
        )


class TestMetricsRegressions:
    def test_histogram_rejects_non_finite(self):
        hist = BoundedHistogram()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                hist.record(bad)

    def test_single_sample_percentiles(self):
        hist = BoundedHistogram()
        hist.record(7.0)
        assert hist.percentile(0) == 7.0
        assert hist.percentile(50) == 7.0
        assert hist.percentile(100) == 7.0

    def test_retry_does_not_double_fold_chunks(self, monkeypatch):
        # A transient pool failure retries the whole map; chunks the
        # failed attempt already reported must not be double-counted
        # in the ledger or the progress accounting.
        from repro.core import parallel
        from repro.core.parallel import ParallelConfig, parallel_map

        calls = {"n": 0}
        real_pool_map = parallel._pool_map

        def flaky_pool_map(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient: simulated fork storm")
            return real_pool_map(*args, **kwargs)

        monkeypatch.setattr(parallel, "_pool_map", flaky_pool_map)
        ledger = MemoryLedger(run_id="retry")
        outcomes = parallel_map(
            _trace_square,
            [1, 2, 3, 4],
            config=ParallelConfig(
                workers=2, chunk_size=2, max_retries=2, backoff_s=0.0
            ),
            ledger=ledger,
        )
        assert [o.value for o in outcomes] == [1, 4, 9, 16]
        chunk_events = [
            e for e in ledger.events if e["kind"] == "chunk"
        ]
        indices = [e["index"] for e in chunk_events]
        assert sorted(indices) == sorted(set(indices)), (
            "retried attempt double-reported chunks"
        )


class TestTopDashboard:
    SCRAPE = "\n".join(
        [
            "# TYPE repro_serve_jobs gauge",
            'repro_serve_jobs{status="done"} 3',
            'repro_serve_jobs{status="running"} 1',
            "# TYPE repro_serve_queue_depth gauge",
            "repro_serve_queue_depth 1",
            "# TYPE repro_serve_queue_depth_limit gauge",
            "repro_serve_queue_depth_limit 8",
            "# TYPE repro_serve_in_flight gauge",
            "repro_serve_in_flight 1",
            "# TYPE repro_serve_shed counter",
            "repro_serve_shed 2",
            "# TYPE repro_serve_coalesced gauge",
            "repro_serve_coalesced 0",
            "# TYPE repro_serve_cache_hit_ratio gauge",
            "repro_serve_cache_hit_ratio 0.5",
            "# TYPE repro_serve_breaker_state gauge",
            'repro_serve_breaker_state{state="closed",'
            'workload="edram_tradeoff"} 1',
            "# TYPE repro_serve_job_ms summary",
            'repro_serve_job_ms{quantile="0.5",'
            'workload="edram_tradeoff"} 12.5',
            'repro_serve_job_ms{quantile="0.95",'
            'workload="edram_tradeoff"} 40',
            'repro_serve_job_ms{quantile="0.99",'
            'workload="edram_tradeoff"} 41',
            'repro_serve_job_ms_count{workload="edram_tradeoff"} 4',
            'repro_serve_job_ms_sum{workload="edram_tradeoff"} 80',
            "# TYPE repro_workqueue_lease_age_s gauge",
            'repro_workqueue_lease_age_s{lease="chunk-000002"} 1.25',
        ]
    ) + "\n"

    def test_render_dashboard_shows_the_story(self):
        frame = render_dashboard(self.SCRAPE, title="t")
        assert "jobs      4 (done=3, running=1)" in frame
        assert "depth 1/8" in frame
        assert "cache-hit 50%" in frame
        assert "edram_tradeoff" in frame
        assert "closed" in frame
        assert "12.50" in frame
        assert "chunk-000002" in frame

    def test_top_loop_once_plain_text(self):
        out = io.StringIO()
        frames = top_loop(
            lambda: self.SCRAPE, out, iterations=1, is_tty=False
        )
        assert frames == 1
        assert "\x1b" not in out.getvalue()
        assert "jobs" in out.getvalue()

    def test_top_loop_tty_clears_screen(self):
        out = io.StringIO()
        top_loop(lambda: self.SCRAPE, out, iterations=2, is_tty=True,
                 sleep=lambda _s: None)
        assert out.getvalue().count("\x1b[H\x1b[2J") == 2

    def test_top_loop_unreachable_renders_error_frame(self):
        def failing():
            raise OSError("connection refused")

        out = io.StringIO()
        frames = top_loop(failing, out, iterations=1, is_tty=False)
        assert frames == 1
        assert "unreachable" in out.getvalue()


class TestServiceMetricsEndpoint:
    def test_http_scrape_parses_and_counts_jobs(self):
        from repro.serve.testing import running_server

        with running_server() as (server, client):
            result = client.run(
                {
                    "kind": "sweep",
                    "workload": "edram_tradeoff",
                    "axes": {"width": [16, 32], "banks": [2]},
                },
                timeout_s=60.0,
            )
            assert result["ok"]
            text = client.metrics_text()
            parsed = parse_prometheus(text)
            assert (
                sample_value(parsed, "repro_serve_jobs", status="done")
                >= 1
            )
            assert sample_value(parsed, "repro_serve_executions") == 1
            assert (
                sample_value(
                    parsed,
                    "repro_serve_breaker_state",
                    workload="edram_tradeoff",
                    state="closed",
                )
                == 1
            )
            assert (
                sample_value(
                    parsed,
                    "repro_serve_job_ms_count",
                    workload="edram_tradeoff",
                )
                == 1
            )
            # A series that does not exist resolves to None, not a crash.
            assert sample_value(parsed, "repro_serve_no_such") is None

    def test_metrics_route_rejects_post(self):
        import http.client

        from repro.serve.testing import running_server

        with running_server() as (server, client):
            connection = http.client.HTTPConnection(
                client.host, client.port, timeout=10.0
            )
            connection.request("POST", "/v1/metrics")
            response = connection.getresponse()
            assert response.status == 405
            connection.close()

    def test_tracing_off_mints_no_contexts(self):
        from repro.serve.testing import in_process_service

        with in_process_service(tracing=False) as (service, client):
            submitted = client.submit(
                {
                    "kind": "sweep",
                    "workload": "edram_tradeoff",
                    "axes": {"width": [16], "banks": [2]},
                }
            )
            final = client.wait(submitted["job_id"], timeout_s=60.0)
            assert final["status"] == "done"
            report = client.report(submitted["job_id"])
            assert report["trace_id"] is None

    def test_traced_job_report_carries_trace_id(self):
        from repro.serve.testing import in_process_service

        with in_process_service() as (service, client):
            submitted = client.submit(
                {
                    "kind": "sweep",
                    "workload": "edram_tradeoff",
                    "axes": {"width": [16], "banks": [4]},
                }
            )
            client.wait(submitted["job_id"], timeout_s=60.0)
            report = client.report(submitted["job_id"])
            assert isinstance(report["trace_id"], str)
            assert len(report["trace_id"]) == 32
            # The rendered report names the trace and the merge recipe.
            assert report["trace_id"] in report["markdown"]
            assert "repro trace --merge" in report["markdown"]
