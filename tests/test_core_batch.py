"""Batched evaluator vs the scalar reference: exact float equality.

The contract under test (see ``repro/core/batch.py``) is *bit-identity,
not tolerance*: every array lane must reproduce the scalar evaluator's
result exactly, over the full E10 design-space grid — and the wired-in
consumers (``Evaluator.evaluate_macros``, the explorer, ``Sweep.run``,
the Pareto mask) must be indistinguishable from their scalar paths.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.batch import (
    BatchedMacroSweepTask,
    batch_fallback_reason,
    discrete_batch_fallback_reason,
    evaluate_discrete_batch,
    evaluate_macro_batch,
    evaluate_macro_grid,
)
from repro.core.evaluator import Evaluator
from repro.core.explorer import DesignSpaceExplorer
from repro.core.pareto import pareto_frontier_mask
from repro.core.requirements import ApplicationRequirements
from repro.core.sweep import Sweep
from repro.dram.catalog import COMMODITY_PARTS, DiscreteSystem
from repro.dram.edram import EDRAMMacro
from repro.errors import ConfigurationError
from repro.experiments.e10_design_space import mpeg2_requirements
from repro.units import MBIT

REQ = mpeg2_requirements()


def _grid_macros():
    return DesignSpaceExplorer().enumerate(REQ)


def test_macro_batch_exact_over_e10_grid():
    """Every lane equals the scalar result to exact float equality."""
    macros = _grid_macros()
    assert len(macros) >= 200  # the full E10 grid, not a subsample
    scalar_ev = Evaluator()
    scalar = [scalar_ev.evaluate_macro(m, REQ) for m in macros]
    batch = evaluate_macro_batch(Evaluator(), macros, REQ)
    assert len(batch) == len(macros)
    rows = batch.metrics_list()
    for reference, row in zip(scalar, rows):
        assert reference == row  # frozen dataclass: field-exact
    mask = batch.feasible_mask()
    matrix = batch.objective_matrix()
    for index, reference in enumerate(scalar):
        assert bool(mask[index]) == scalar_ev.meets(reference, REQ)
        assert tuple(matrix[index]) == reference.objective_tuple()


def test_macro_grid_matches_batch():
    """The array-lane entry point equals the macro-object one."""
    macros = _grid_macros()
    lanes = zip(*[(m.size_bits, m.width, m.banks, m.page_bits) for m in macros])
    size, width, banks, page = (
        np.array(lane, dtype=np.int64) for lane in lanes
    )
    grid = evaluate_macro_grid(Evaluator(), REQ, size, width, banks, page)
    batch = evaluate_macro_batch(Evaluator(), macros, REQ)
    assert grid.metrics_list() == batch.metrics_list()


def test_macro_batch_mixed_widths_and_requirement_limits():
    """Latency/power limits flow into the mask; widths mix correctly."""
    requirements = ApplicationRequirements(
        name="limits",
        capacity_bits=2 * MBIT,
        sustained_bandwidth_bits_per_s=1e9,
        max_latency_ns=120.0,
        power_budget_w=0.15,
    )
    macros = [
        EDRAMMacro(size_bits=2 * MBIT, width=w, banks=4, page_bits=2048)
        for w in (16, 64, 256)
    ]
    evaluator = Evaluator()
    scalar = [
        Evaluator().evaluate_macro(m, requirements) for m in macros
    ]
    batch = evaluate_macro_batch(Evaluator(), macros, requirements)
    assert batch.metrics_list() == scalar
    mask = batch.feasible_mask()
    for index, metrics in enumerate(scalar):
        assert bool(mask[index]) == evaluator.meets(metrics, requirements)


def test_batch_fallback_reasons():
    assert batch_fallback_reason([]) == "empty batch"
    macros = _grid_macros()[:2]
    assert batch_fallback_reason(macros) is None
    import dataclasses

    from repro.dram.edram import EDRAM_TIMING

    mixed = [
        macros[0],
        EDRAMMacro(
            size_bits=macros[1].size_bits,
            width=macros[1].width,
            banks=macros[1].banks,
            page_bits=macros[1].page_bits,
            timing=dataclasses.replace(EDRAM_TIMING, t_cas=3),
        ),
    ]
    assert batch_fallback_reason(mixed) is not None


def test_discrete_batch_exact():
    part = COMMODITY_PARTS[0]

    def system(chips: int, which: int = 0) -> DiscreteSystem:
        chosen = COMMODITY_PARTS[which]
        return DiscreteSystem(
            part=chosen,
            n_chips=chips,
            required_bits=chosen.capacity_bits,
            required_width=chosen.width_bits,
        )

    systems = [system(n) for n in (1, 2, 4, 8)]
    scalar = [
        Evaluator().evaluate_discrete(s, REQ) for s in systems
    ]
    batch = evaluate_discrete_batch(Evaluator(), systems, REQ)
    assert batch.metrics_list() == scalar
    assert discrete_batch_fallback_reason(systems) is None
    assert discrete_batch_fallback_reason([]) == "empty batch"
    if len(COMMODITY_PARTS) > 1:
        mixed = [system(1, which=0), system(1, which=1)]
        assert discrete_batch_fallback_reason(mixed) is not None


def test_evaluate_macros_batched_and_fallback():
    macros = _grid_macros()
    reference = [Evaluator().evaluate_macro(m, REQ) for m in macros]
    evaluator = Evaluator()
    assert evaluator.evaluate_macros(macros, REQ) == reference
    # The batch primes the memo, exactly like the parallel fan-out.
    assert evaluator.macro_cache_info()["size"] == len(macros)
    evaluator.evaluate_macro(macros[0], REQ)
    assert evaluator.macro_cache_info()["hits"] == 1
    # Heterogeneous area knobs: scalar fallback, same results.
    spares = EDRAMMacro(
        size_bits=macros[0].size_bits,
        width=macros[0].width,
        banks=macros[0].banks,
        page_bits=macros[0].page_bits,
        redundancy_spares=8,
    )
    mixed = [macros[0], spares]
    assert Evaluator().evaluate_macros(mixed, REQ) == [
        Evaluator().evaluate_macro(m, REQ) for m in mixed
    ]
    assert Evaluator().evaluate_macros([], REQ) == []


def test_explorer_batch_parity():
    reference = DesignSpaceExplorer(batch=False).explore(REQ)
    batched = DesignSpaceExplorer().explore(REQ)
    assert batched.evaluated == reference.evaluated
    assert batched.feasible == reference.feasible
    assert batched.frontier == reference.frontier


def test_sweep_batched_task_parity(tmp_path):
    macros = _grid_macros()
    sweep = Sweep(
        axes={
            "size_bits": [macros[0].size_bits],
            "width": sorted({m.width for m in macros})[:3],
            "banks": [4],
            "page_bits": [2048, 4096],
        }
    )
    task = BatchedMacroSweepTask(evaluator=Evaluator(), requirements=REQ)
    scalar_task = BatchedMacroSweepTask(
        evaluator=Evaluator(), requirements=REQ
    )
    batched = sweep.run(task)
    serial = sweep.run(scalar_task.__call__)  # no evaluate_batch attr
    assert [(p.parameters, p.result) for p in batched.points] == [
        (p.parameters, p.result) for p in serial.points
    ]
    # Journaling composes with the batched path: a resumed sweep skips
    # the journaled points and the merged outcome is unchanged.
    journal = tmp_path / "sweep.journal.jsonl"
    first = sweep.run(
        BatchedMacroSweepTask(evaluator=Evaluator(), requirements=REQ),
        journal=journal,
    )
    resumed = sweep.run(
        BatchedMacroSweepTask(evaluator=Evaluator(), requirements=REQ),
        journal=journal,
    )
    assert [(p.parameters, p.result) for p in first.points] == [
        (p.parameters, p.result) for p in resumed.points
    ]


def test_sweep_batch_error_localizes_to_scalar_path():
    """A grid with an unconstructible point falls back to the scalar
    loop, which quarantines exactly that point."""
    sweep = Sweep(
        axes={
            "size_bits": [2 * MBIT],
            "width": [64],
            "banks": [4],
            "page_bits": [2048, 1536],  # 1536 is not a valid page
        }
    )
    task = BatchedMacroSweepTask(evaluator=Evaluator(), requirements=REQ)
    result = sweep.run(task, skip_errors=True)
    assert len(result.points) == 1
    assert len(result.failures) == 1
    assert result.failures[0].parameters["page_bits"] == 1536


def test_pareto_mask_matches_frontier():
    from repro.core.pareto import pareto_frontier

    result = DesignSpaceExplorer().explore(REQ)
    matrix = np.array([m.objective_tuple() for m in result.feasible])
    reference = pareto_frontier(
        result.feasible, lambda m: m.objective_tuple(), engine="python"
    )
    for engine in ("python", "numpy", "auto"):
        mask = pareto_frontier_mask(matrix, engine=engine)
        kept = [
            m for index, m in enumerate(result.feasible) if mask[index]
        ]
        assert kept == reference
    assert pareto_frontier_mask(np.zeros((0, 3))).tolist() == []
    with pytest.raises(ConfigurationError):
        pareto_frontier_mask(np.zeros(4))
    with pytest.raises(ConfigurationError):
        pareto_frontier_mask(np.zeros((2, 2)), engine="fortran")


def test_pareto_mask_deduplicates():
    matrix = np.array([[1.0, 2.0], [1.0, 2.0], [0.5, 3.0]])
    mask = pareto_frontier_mask(matrix)
    assert mask.tolist() == [True, False, True]


def test_macro_cache_lru_bound():
    macros = _grid_macros()
    evaluator = Evaluator(macro_cache_maxsize=10)
    results = [evaluator.evaluate_macro(m, REQ) for m in macros]
    info = evaluator.macro_cache_info()
    assert info["size"] == 10
    assert info["maxsize"] == 10
    assert info["evictions"] == len(macros) - 10
    # The last 10 points are resident; the first ones were evicted.
    assert evaluator.evaluate_macro(macros[-1], REQ) == results[-1]
    assert evaluator.macro_cache_info()["hits"] == 1
    evaluator.evaluate_macro(macros[0], REQ)
    assert evaluator.macro_cache_info()["misses"] == len(macros) + 1
    # A hit refreshes recency: the touched entry survives an eviction.
    touched = (macros[-1], REQ)
    evaluator.evaluate_macro(macros[-1], REQ)
    evaluator.evaluate_macro(macros[1], REQ)  # evicts the LRU entry
    assert touched in evaluator._macro_cache.entries
    # Bounded evaluators pickle (cache dropped, bound kept).
    clone = pickle.loads(pickle.dumps(evaluator))
    assert clone.macro_cache_info() == {
        "size": 0,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "maxsize": 10,
    }
    with pytest.raises(ConfigurationError):
        Evaluator(macro_cache_maxsize=0)


def test_macro_cache_unbounded_by_default():
    evaluator = Evaluator()
    for macro in _grid_macros():
        evaluator.evaluate_macro(macro, REQ)
    info = evaluator.macro_cache_info()
    assert info["maxsize"] is None
    assert info["evictions"] == 0
    assert info["size"] == info["misses"]
