"""Tests for repro.cost.wafer: dies per wafer and die cost."""

import pytest

from repro.cost.wafer import WaferSpec, die_cost_before_test, dies_per_wafer
from repro.errors import ConfigurationError


class TestWaferSpec:
    def test_area(self):
        wafer = WaferSpec(diameter_mm=200.0)
        assert wafer.area_mm2 == pytest.approx(31415.9, rel=1e-3)

    def test_cost_multiplier(self):
        plain = WaferSpec(base_cost=3000.0, cost_multiplier=1.0)
        merged = WaferSpec(base_cost=3000.0, cost_multiplier=1.35)
        assert merged.cost == pytest.approx(1.35 * plain.cost)

    def test_bad_diameter(self):
        with pytest.raises(ConfigurationError):
            WaferSpec(diameter_mm=0.0)


class TestDiesPerWafer:
    def test_small_die_many_dies(self):
        wafer = WaferSpec()
        assert dies_per_wafer(wafer, 50.0) > 500

    def test_monotone_decreasing_in_area(self):
        wafer = WaferSpec()
        counts = [dies_per_wafer(wafer, a) for a in (25, 50, 100, 200, 400)]
        assert counts == sorted(counts, reverse=True)

    def test_edge_loss_matters(self):
        # The edge-loss term must remove a nontrivial number of dies.
        wafer = WaferSpec()
        naive = wafer.area_mm2 / 100.0
        actual = dies_per_wafer(wafer, 100.0)
        assert actual < naive
        assert actual > 0.7 * naive

    def test_huge_die_zero(self):
        wafer = WaferSpec(diameter_mm=200.0)
        assert dies_per_wafer(wafer, 40000.0) == 0

    def test_bad_area(self):
        with pytest.raises(ConfigurationError):
            dies_per_wafer(WaferSpec(), 0.0)


class TestDieCost:
    def test_cost_inverse_in_yield(self):
        wafer = WaferSpec()
        full = die_cost_before_test(wafer, 100.0, 1.0)
        half = die_cost_before_test(wafer, 100.0, 0.5)
        assert half == pytest.approx(2 * full)

    def test_cost_grows_superlinearly_with_area(self):
        # Bigger dies: fewer per wafer AND worse edge fraction.
        wafer = WaferSpec()
        small = die_cost_before_test(wafer, 50.0, 1.0)
        big = die_cost_before_test(wafer, 200.0, 1.0)
        assert big > 4 * small

    def test_invalid_yield(self):
        with pytest.raises(ConfigurationError):
            die_cost_before_test(WaferSpec(), 100.0, 0.0)
        with pytest.raises(ConfigurationError):
            die_cost_before_test(WaferSpec(), 100.0, 1.5)

    def test_die_too_big(self):
        with pytest.raises(ConfigurationError):
            die_cost_before_test(WaferSpec(), 50000.0, 0.9)
