"""Tests for repro.controller.controller: the full controller loop."""

import pytest

from repro.controller.controller import ControllerConfig, MemoryController
from repro.controller.page_policy import ClosedPagePolicy, OpenPagePolicy
from repro.controller.request import Request, RequestState
from repro.controller.scheduler import FCFSScheduler
from repro.dram.device import DRAMDevice
from repro.dram.organizations import AddressMapping, MappingScheme, Organization
from repro.dram.timing import PC100_TIMING
from repro.errors import ConfigurationError


def make_controller(**kwargs):
    org = Organization(n_banks=4, n_rows=64, page_bits=2048, word_bits=16)
    device = DRAMDevice(organization=org, timing=PC100_TIMING)
    return MemoryController(
        device=device,
        mapping=AddressMapping(org, MappingScheme.ROW_BANK_COL),
        **kwargs,
    )


def run_cycles(controller, n, start=0):
    for cycle in range(start, start + n):
        controller.step(cycle)
    return start + n


def make_request(rid, address, cycle=0, read=True):
    return Request(
        request_id=rid,
        client="c",
        address=address,
        is_read=read,
        created_cycle=cycle,
    )


class TestSingleRequest:
    def test_request_completes(self):
        controller = make_controller(
            config=ControllerConfig(refresh_enabled=False)
        )
        controller.register_client("c")
        assert controller.offer(make_request(0, address=128))
        run_cycles(controller, 50)
        assert len(controller.completed) == 1
        done = controller.completed[0]
        assert done.state is RequestState.COMPLETED
        assert done.completed_cycle is not None

    def test_cold_miss_latency(self):
        # accept + ACT at cycle 0 -> RD at tRCD -> data ends tCAS + BL - 1
        # cycles later.
        controller = make_controller(
            config=ControllerConfig(refresh_enabled=False)
        )
        controller.offer(make_request(0, address=0, cycle=0))
        run_cycles(controller, 40)
        t = PC100_TIMING
        expected = t.t_rcd + t.t_cas + t.burst_length - 1
        assert controller.completed[0].latency_cycles == expected

    def test_row_hit_faster_than_miss(self):
        controller = make_controller(
            config=ControllerConfig(refresh_enabled=False)
        )
        controller.offer(make_request(0, address=0))
        controller.offer(make_request(1, address=8))  # same page
        run_cycles(controller, 60)
        first, second = controller.completed
        assert second.was_row_hit
        assert not first.was_row_hit


class TestConservation:
    def test_all_requests_complete_exactly_once(self):
        controller = make_controller()
        pending = [make_request(i, address=i * 64) for i in range(20)]
        cycle = 0
        while cycle < 5000 and (pending or not controller.drained()):
            while pending and controller.offer(pending[0]):
                pending.pop(0)
            controller.step(cycle)
            cycle += 1
        assert not pending
        assert controller.drained()
        ids = [r.request_id for r in controller.completed]
        assert sorted(ids) == list(range(20))

    def test_writes_complete_too(self):
        controller = make_controller()
        for i in range(8):
            controller.offer(make_request(i, address=i * 32, read=False))
        cycle = 0
        while not controller.drained() and cycle < 5000:
            controller.step(cycle)
            cycle += 1
        assert len(controller.completed) == 8


class TestPagePolicyEffects:
    def _stream_latency(self, policy):
        controller = make_controller(
            page_policy=policy,
            config=ControllerConfig(refresh_enabled=False),
        )
        # Sequential same-page stream, offered gradually.
        next_request = 0
        for cycle in range(400):
            if next_request < 16 and cycle % 20 == 0:
                controller.offer(
                    make_request(next_request, address=next_request * 8,
                                 cycle=cycle)
                )
                next_request += 1
            controller.step(cycle)
        latencies = [r.latency_cycles for r in controller.completed]
        return sum(latencies) / len(latencies)

    def test_open_page_wins_on_streams(self):
        open_latency = self._stream_latency(OpenPagePolicy())
        closed_latency = self._stream_latency(ClosedPagePolicy())
        assert open_latency < closed_latency


class TestRefresh:
    def test_refresh_issued_periodically(self):
        controller = make_controller()
        run_cycles(controller, 60000)
        assert controller.refreshes_issued > 0
        # 64 rows over 64 ms at 100 MHz -> one refresh per 100k cycles;
        # 60k cycles sees the first one (due at cycle 0 boundary).
        assert controller.refreshes_issued >= 1

    def test_refresh_disabled(self):
        controller = make_controller(
            config=ControllerConfig(refresh_enabled=False)
        )
        run_cycles(controller, 60000)
        assert controller.refreshes_issued == 0


class TestBackpressure:
    def test_fifo_full_rejects(self):
        controller = make_controller(
            config=ControllerConfig(window_size=1, fifo_capacity=2)
        )
        accepted = [
            controller.offer(make_request(i, address=i * 4096))
            for i in range(5)
        ]
        assert accepted.count(True) <= 3  # window takes none yet
        fifo = controller.fifos["c"]
        assert fifo.stall_cycles >= 1

    def test_mapping_mismatch_rejected(self):
        org_a = Organization(
            n_banks=4, n_rows=64, page_bits=2048, word_bits=16
        )
        org_b = Organization(
            n_banks=2, n_rows=128, page_bits=2048, word_bits=16
        )
        device = DRAMDevice(organization=org_a, timing=PC100_TIMING)
        with pytest.raises(ConfigurationError):
            MemoryController(
                device=device, mapping=AddressMapping(org_b)
            )


class TestFCFSvsFRFCFS:
    def test_frfcfs_more_hits_on_interleaved_traffic(self):
        def run(scheduler):
            controller = make_controller(
                scheduler=scheduler,
                config=ControllerConfig(refresh_enabled=False),
            )
            # Two interleaved streams on different pages of one bank
            # group: FCFS ping-pongs, FR-FCFS batches hits.
            rid = 0
            for i in range(12):
                controller.offer(make_request(rid, address=i * 8))
                rid += 1
                controller.offer(
                    make_request(rid, address=16384 + i * 8)
                )
                rid += 1
            cycle = 0
            while not controller.drained() and cycle < 5000:
                controller.step(cycle)
                cycle += 1
            return controller.device.row_hit_rate()

    # The two streams' pages live in different banks under
    # ROW_BANK_COL, so both schedulers do well; FR-FCFS is never worse.
        from repro.controller.scheduler import FRFCFSScheduler

        assert run(FRFCFSScheduler()) >= run(FCFSScheduler()) - 1e-9
