"""Tests for the simulator watchdog: max_cycles / max_wall_s truncation."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.inject.runtime import build_injected_simulator
from repro.sim.simulator import SimulationConfig
from repro.verify.differential import result_fingerprint


def _build(fast_forward, **overrides):
    simulator = build_injected_simulator(
        None, cycles=4_000, warmup_cycles=300, seed=0
    )
    simulator.config = dataclasses.replace(
        simulator.config, fast_forward=fast_forward, **overrides
    )
    return simulator


class TestValidation:
    def test_bad_max_cycles(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_cycles=0)

    def test_bad_max_wall(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_wall_s=-1.0)

    def test_valid_watchdog(self):
        SimulationConfig(max_cycles=100, max_wall_s=1.0)


class TestMaxCycles:
    def test_truncates_deterministically(self):
        result = _build(False, max_cycles=2_000).run()
        assert result.truncated
        assert result.truncation_reason == "max_cycles"
        assert result.truncated_at_cycle == 2_000
        # 300 warm-up cycles were simulated and reset; statistics cover
        # the remaining 1700.
        assert result.cycles == 1_700
        assert result.requests_completed > 0

    def test_fast_and_naive_truncate_identically(self):
        naive = _build(False, max_cycles=2_000).run()
        fast = _build(True, max_cycles=2_000).run()
        assert result_fingerprint(naive) == result_fingerprint(fast)
        assert naive.truncated_at_cycle == fast.truncated_at_cycle

    def test_generous_cap_never_truncates(self):
        result = _build(True, max_cycles=1_000_000).run()
        assert not result.truncated
        assert result.truncation_reason is None
        assert result.truncated_at_cycle is None
        assert result.cycles == 4_000

    def test_truncation_before_warmup(self):
        result = _build(False, max_cycles=100).run()
        assert result.truncated
        # No measurement reset happened: the short whole-run window is
        # what the statistics cover.
        assert result.cycles == 100

    def test_result_stays_usable(self):
        result = _build(False, max_cycles=1_500).run()
        assert "requests over" in result.summary()
        assert result.sustained_bandwidth_bits_per_s >= 0.0


class TestMaxWall:
    def test_expired_deadline_truncates(self):
        result = _build(False, max_wall_s=0.0).run()
        assert result.truncated
        assert result.truncation_reason == "max_wall_s"
        assert result.truncated_at_cycle < 4_300
        assert "requests over" in result.summary()

    def test_fast_path_also_guarded(self):
        result = _build(True, max_wall_s=0.0).run()
        assert result.truncated
        assert result.truncation_reason == "max_wall_s"

    def test_generous_deadline_never_truncates(self):
        result = _build(True, max_wall_s=60.0).run()
        assert not result.truncated


class TestCancellation:
    def test_cancelled_token_truncates_naive_path(self):
        from repro.serve.resilience import CancelToken

        token = CancelToken()
        token.cancel("test asked nicely")
        result = _build(False, cancel=token).run()
        assert result.truncated
        assert result.truncation_reason == "cancelled"
        assert result.truncated_at_cycle < 4_300

    def test_cancelled_token_truncates_fast_path(self):
        from repro.serve.resilience import CancelToken

        token = CancelToken()
        token.cancel("test asked nicely")
        result = _build(True, cancel=token).run()
        assert result.truncated
        assert result.truncation_reason == "cancelled"

    def test_duck_typed_token_is_accepted(self):
        # Any object with a boolean `cancelled` attribute works; the
        # simulator must not depend on the serve layer's token class.
        class _Flag:
            cancelled = True

        result = _build(False, cancel=_Flag()).run()
        assert result.truncation_reason == "cancelled"

    def test_uncancelled_token_changes_nothing(self):
        from repro.serve.resilience import CancelToken

        clean = _build(True).run()
        watched = _build(True, cancel=CancelToken()).run()
        assert not watched.truncated
        assert result_fingerprint(clean) == result_fingerprint(watched)


class TestFingerprintExclusion:
    def test_truncation_fields_not_fingerprinted(self):
        # The fingerprint is the bit-identity surface; wall-clock
        # truncation metadata must never enter it.
        full = _build(True).run()
        fingerprint = result_fingerprint(full)
        flat = repr(fingerprint)
        assert "truncat" not in flat
        assert "max_cycles" not in flat
