"""Tests for the chaos harness plumbing (`repro verify chaos`).

The scenarios themselves are the product — each one induces a failure
and asserts the recovery invariants — so these tests run the two
fastest subprocess-free scenarios end to end and then check the
harness contract around them: ledger structure, profile/scenario
resolution, crash containment, and the CLI exit code.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.verify import chaos
from repro.verify.cli import main as verify_main


class TestRegistry:
    def test_profiles_only_name_registered_scenarios(self):
        names = set(chaos.scenario_names())
        for profile, members in chaos.PROFILES.items():
            assert set(members) <= names, profile

    def test_smoke_is_a_strict_subset_of_full(self):
        assert set(chaos.PROFILES["smoke"]) < set(chaos.PROFILES["full"])

    def test_unknown_profile_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos profile"):
            chaos.run_chaos(profile="nope")

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(
            ConfigurationError, match="unknown chaos scenario"
        ):
            chaos.run_chaos(scenarios=["torn_files", "volcano"])


class TestRunAndLedger:
    def test_scenarios_pass_and_ledger_is_structured(self, tmp_path):
        ledger = tmp_path / "chaos.jsonl"
        report = chaos.run_chaos(
            scenarios=["torn_files", "deadline_cancel"],
            seed=7,
            out=ledger,
            tmp_dir=tmp_path / "scratch",
        )
        assert report.ok
        assert report.seed == 7
        assert [result.name for result in report.results] == [
            "torn_files",
            "deadline_cancel",
        ]
        assert all(result.elapsed_s >= 0 for result in report.results)
        assert report.ledger_path == str(ledger)

        records = [
            json.loads(line)
            for line in ledger.read_text().splitlines()
            if line
        ]
        assert [record["kind"] for record in records] == [
            "chaos",
            "scenario",
            "scenario",
            "summary",
        ]
        header = records[0]
        assert header["scenarios"] == ["torn_files", "deadline_cancel"]
        assert header["seed"] == 7
        for record in records[1:3]:
            assert record["ok"] is True
            assert record["failures"] == []
            assert isinstance(record["details"], dict)
        assert records[-1] == {
            "kind": "summary",
            "ok": True,
            "passed": 2,
            "failed": 0,
        }

    def test_scenario_crash_becomes_a_failed_verdict(self, monkeypatch):
        def _explode(seed, tmp_dir):
            raise RuntimeError("harness bug")

        monkeypatch.setitem(chaos._SCENARIOS, "explode", _explode)
        report = chaos.run_chaos(scenarios=["explode"])
        assert not report.ok
        (result,) = report.results
        assert "scenario crashed: RuntimeError: harness bug" in (
            result.failures
        )

    def test_summary_names_failures(self):
        report = chaos.ChaosReport(profile="smoke", seed=0)
        report.results.append(
            chaos.ScenarioResult(
                name="torn_files",
                ok=False,
                elapsed_s=0.1,
                failures=["lost a record"],
            )
        )
        text = report.summary()
        assert "0/1 scenarios survived" in text
        assert "torn_files: FAILED" in text
        assert "lost a record" in text


class TestCli:
    def test_chaos_subcommand_writes_ledger(self, tmp_path, capsys):
        ledger = tmp_path / "out.jsonl"
        code = verify_main(
            [
                "chaos",
                "--scenario",
                "torn_files",
                "--seed",
                "3",
                "--out",
                str(ledger),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "1/1 scenarios survived" in captured
        assert str(ledger) in captured
        assert ledger.exists()
