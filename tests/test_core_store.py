"""Tests for the durable content-addressed result store."""

import json
import threading

import pytest

from repro.core.parallel import PointOutcome
from repro.core.store import (
    ResultStore,
    canonical_text,
    coerce_store,
    decode_outcome,
    encode_outcome,
    point_fingerprint,
)
from repro.core.sweep import Sweep
from repro.errors import ConfigurationError, InfeasibleError
from repro.obs.ledger import MemoryLedger


class TestFingerprint:
    def test_deterministic_and_order_insensitive(self):
        a = point_fingerprint({"sig": "s"}, {"x": 1, "y": 2})
        b = point_fingerprint({"sig": "s"}, {"y": 2, "x": 1})
        assert a == b
        assert len(a) == 64

    def test_sensitive_to_context_and_parameters(self):
        base = point_fingerprint({"sig": "s"}, {"x": 1})
        assert point_fingerprint({"sig": "t"}, {"x": 1}) != base
        assert point_fingerprint({"sig": "s"}, {"x": 2}) != base

    def test_sweep_point_key_pins_signature(self):
        sweep = Sweep(axes={"x": [1, 2]})
        other = Sweep(axes={"x": [1, 2, 3]})
        assert sweep.point_key({"x": 1}) != other.point_key({"x": 1})
        assert sweep.point_key({"x": 1}) == sweep.point_key({"x": 1})
        assert sweep.point_key({"x": 1}, seed=7) != sweep.point_key(
            {"x": 1}
        )

    def test_canonical_text_is_compact_and_sorted(self):
        assert canonical_text({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'


class TestOutcomeCodec:
    def test_ok_roundtrip(self):
        outcome = PointOutcome(ok=True, value={"area": 1.5, "t": (1, 2)})
        decoded = decode_outcome(encode_outcome(outcome))
        assert decoded.ok and decoded.value == outcome.value

    def test_error_roundtrip(self):
        outcome = PointOutcome(ok=False, error="InfeasibleError('no')")
        decoded = decode_outcome(encode_outcome(outcome))
        assert not decoded.ok and decoded.error == outcome.error

    def test_corrupt_text_decodes_to_none(self):
        assert decode_outcome("{torn") is None
        assert decode_outcome('{"ok":true,"value":"!!!"}') is None

    def test_identical_outcomes_identical_text(self):
        a = encode_outcome(PointOutcome(ok=True, value=[1, 2.5]))
        b = encode_outcome(PointOutcome(ok=True, value=[1, 2.5]))
        assert a == b


class TestResultStore:
    def test_in_memory_roundtrip_and_counters(self):
        store = ResultStore()
        assert store.get("fp") is None
        store.put("fp", "text")
        assert store.get("fp") == "text"
        assert "fp" in store and len(store) == 1
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert not stats["persistent"]

    def test_non_text_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultStore().put("fp", {"not": "text"})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResultStore(maxsize=0)
        with pytest.raises(ConfigurationError):
            ResultStore(compact_ratio=0.5)

    def test_persistence_across_restart(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path=path) as store:
            store.put("a", "1")
            store.put("b", "2")
        reopened = ResultStore(path=path)
        assert reopened.get("a") == "1"
        assert reopened.get("b") == "2"

    def test_torn_tail_ignored_on_load(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path=path) as store:
            store.put("a", "1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "b", "result": "tor')
        reopened = ResultStore(path=path)
        assert reopened.get("a") == "1"
        assert reopened.get("b") is None

    def test_identical_put_skips_spill_append(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path=path) as store:
            for _ in range(5):
                store.put("a", "1")
            assert store.stats()["spill_records"] == 1

    def test_superseded_records_compacted(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path=path) as store:
            for version in range(20):
                store.put("a", str(version))
            dropped = store.compact()
        assert dropped >= 0
        lines = [
            line
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == 1
        assert json.loads(lines[0]) == {
            "fingerprint": "a",
            "result": "19",
        }

    def test_auto_compaction_bounds_spill_growth(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path=path, compact_ratio=2.0) as store:
            for version in range(200):
                store.put("hot", str(version))
            # Dead records can never dominate: the spill stays within
            # the floor/ratio envelope instead of growing per put.
            assert store.stats()["spill_records"] <= 9

    def test_restart_after_evictions_regression(self, tmp_path):
        # Regression for the bounded service cache: the append-only
        # spill used to replay evicted entries on restart, so a
        # restarted cache held more than maxsize and resurrected
        # results that had been evicted for a reason.
        path = tmp_path / "store.jsonl"
        with ResultStore(path=path, maxsize=2) as store:
            for key in "abcde":
                store.put(key, key.upper())
            assert store.stats()["evictions"] == 3
            store.compact()
        reopened = ResultStore(path=path, maxsize=2)
        assert len(reopened) == 2
        assert reopened.keys() == ["d", "e"]
        assert reopened.get("a") is None
        # ...and even without an explicit compact, a reload never
        # holds more than maxsize live entries.
        with ResultStore(path=path, maxsize=1) as smaller:
            assert len(smaller) == 1

    def test_compaction_preserves_lru_order(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path=path, maxsize=3) as store:
            for key in "abc":
                store.put(key, key)
            assert store.get("a") == "a"  # refresh: b is now oldest
            store.compact()
        reopened = ResultStore(path=path, maxsize=3)
        reopened.put("d", "d")
        assert "b" not in reopened  # oldest recency evicted, not "a"
        assert "a" in reopened

    def test_merge_file_first_write_wins(self, tmp_path):
        ours = tmp_path / "ours.jsonl"
        theirs = tmp_path / "theirs.jsonl"
        with ResultStore(path=theirs) as other:
            other.put("shared", "theirs")
            other.put("new", "fresh")
        store = ResultStore(path=ours)
        store.put("shared", "ours")
        ledger = MemoryLedger(run_id="merge")
        assert store.merge_file(theirs, ledger=ledger) == 1
        assert store.get("shared") == "ours"
        assert store.get("new") == "fresh"
        assert store.stats()["merged"] == 1
        events = [
            e for e in ledger.events if e["kind"] == "store_merge"
        ]
        assert len(events) == 1
        assert events[0]["folded"] == 1 and events[0]["records"] == 2
        # The merge is durable: a restart still has the folded record.
        store.close()
        assert ResultStore(path=ours).get("new") == "fresh"

    def test_merge_missing_file_is_noop(self, tmp_path):
        store = ResultStore()
        assert store.merge_file(tmp_path / "nope.jsonl") == 0

    def test_concurrent_puts_stay_consistent(self, tmp_path):
        store = ResultStore(path=tmp_path / "store.jsonl")

        def writer(offset):
            for i in range(50):
                store.put(f"k{offset}-{i}", f"v{i}")

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        store.close()
        assert len(ResultStore(path=store.path)) == 200

    def test_coerce_store(self, tmp_path):
        assert coerce_store(None) == (None, False)
        store = ResultStore()
        assert coerce_store(store) == (store, False)
        opened, owned = coerce_store(tmp_path / "s.jsonl")
        assert isinstance(opened, ResultStore) and owned
        opened.close()
        with pytest.raises(ConfigurationError):
            coerce_store(42)


class TestSweepStoreIntegration:
    def test_second_run_served_entirely_from_store(self, tmp_path):
        sweep = Sweep(axes={"x": [1, 2, 3], "y": [10, 20]})
        calls: list = []

        def evaluate(x, y):
            calls.append((x, y))
            return x * y

        store = ResultStore(path=tmp_path / "store.jsonl")
        first = sweep.run(evaluate, store=store)
        assert len(calls) == 6
        second = sweep.run(evaluate, store=store)
        assert len(calls) == 6  # nothing re-evaluated
        assert [p.result for p in second.points] == [
            p.result for p in first.points
        ]

    def test_store_path_coerced_and_durable(self, tmp_path):
        path = tmp_path / "store.jsonl"
        sweep = Sweep(axes={"x": [1, 2, 3]})
        sweep.run(_double, store=path)
        calls: list = []

        def spy(x):
            calls.append(x)
            return 2 * x

        resumed = sweep.run(spy, store=path)
        assert not calls
        assert [p.result for p in resumed.points] == [2, 4, 6]

    def test_failures_not_stored_by_default_run(self, tmp_path):
        # skip_errors quarantines failures AND stores them: a resumed
        # run must not re-raise on a point the store knows failed.
        sweep = Sweep(axes={"x": [1, "bad", 3]})
        store = ResultStore(path=tmp_path / "store.jsonl")
        first = sweep.run(_double, skip_errors=True, store=store)
        assert len(first.failures) == 1
        calls: list = []

        def never(x):
            calls.append(x)
            return x

        resumed = sweep.run(never, skip_errors=True, store=store)
        assert not calls
        assert len(resumed.failures) == 1
        assert resumed.failures[0].parameters == {"x": "bad"}

    def test_store_context_partitions_entries(self, tmp_path):
        sweep = Sweep(axes={"x": [1, 2]})
        store = ResultStore(path=tmp_path / "store.jsonl")
        calls: list = []

        def evaluate(x):
            calls.append(x)
            return x

        sweep.run(evaluate, store=store, store_context={"seed": 1})
        sweep.run(evaluate, store=store, store_context={"seed": 2})
        assert len(calls) == 4  # different context -> different keys
        sweep.run(evaluate, store=store, store_context={"seed": 1})
        assert len(calls) == 4  # same context -> all served

    def test_store_context_without_store_rejected(self):
        with pytest.raises(ConfigurationError):
            Sweep(axes={"x": [1]}).run(
                _double, store_context={"seed": 1}
            )

    def test_store_hits_recorded_in_ledger(self, tmp_path):
        sweep = Sweep(axes={"x": [1, 2, 3]})
        store = ResultStore(path=tmp_path / "store.jsonl")
        sweep.run(_double, store=store)
        ledger = MemoryLedger(run_id="store-hits")
        sweep.run(_double, store=store, ledger=ledger)
        hits = [e for e in ledger.events if e["kind"] == "store_hits"]
        assert len(hits) == 1 and hits[0]["points"] == 3
        starts = [e for e in ledger.events if e["kind"] == "run_start"]
        assert starts and starts[0]["store"] is True


def _double(x):
    if x == "bad":
        raise InfeasibleError("bad point")
    return 2 * x
