"""Deep fuzz tier — opt-in, excluded from tier-1 by the ``fuzz`` marker.

Run explicitly with::

    PYTHONPATH=src python -m pytest tests/fuzz -m fuzz

or let the scheduled CI job do it.  Budgets here are an order of
magnitude beyond the tier-1 smoke in ``tests/test_verify_fuzz.py``;
a failure prints a shrunk, seed-free repro command via
``FuzzFailure.describe()``.
"""

import pytest

from repro.verify.fuzz import PROPERTIES, run_fuzz

pytestmark = pytest.mark.fuzz


def _assert_ok(report):
    assert report.ok, "\n\n".join(
        failure.describe() for failure in report.failures
    )


@pytest.mark.parametrize("seed", range(8))
def test_all_properties_deep(seed):
    _assert_ok(run_fuzz(seed=seed, budget=300))


@pytest.mark.parametrize("prop", [p.name for p in PROPERTIES])
def test_per_property_focus(prop):
    # A focused budget per property: round-robin runs touch each one
    # budget/len(PROPERTIES) times, this hits each 120 times straight.
    _assert_ok(run_fuzz(seed=1234, budget=120, properties=[prop]))


@pytest.mark.parametrize("seed", [11, 42])
def test_fuzz_serve_deep(seed):
    # The exploration service under sustained random traffic: every
    # valid payload executes + caches byte-identically, every invalid
    # one gets a 4xx envelope — across hundreds of in-process servers.
    _assert_ok(run_fuzz(seed=seed, budget=150, properties=["serve_protocol"]))


def test_sim_differential_long_runs():
    # Longer simulations widen the window for drift between the fast
    # path and the per-cycle loop (more refreshes, more skips).
    report = run_fuzz(seed=77, budget=60, properties=["sim_differential"])
    _assert_ok(report)
