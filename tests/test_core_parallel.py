"""Tests for parallel sweeps, the evaluator memo and pareto engines."""

import pickle

import pytest

from repro.core import parallel as parallel_module
from repro.core.evaluator import Evaluator
from repro.core.explorer import DesignSpaceExplorer
from repro.core.parallel import (
    ParallelConfig,
    ParallelFallbackWarning,
    PointOutcome,
    parallel_map,
)
from repro.core.pareto import pareto_frontier
from repro.core.requirements import ApplicationRequirements
from repro.core.sweep import Sweep
from repro.dram.edram import EDRAMMacro
from repro.errors import ConfigurationError, InfeasibleError
from repro.obs.metrics import GLOBAL_METRICS
from repro.units import MBIT


def requirements(name="app", bandwidth=2e9):
    return ApplicationRequirements(
        name=name,
        capacity_bits=4 * MBIT,
        sustained_bandwidth_bits_per_s=bandwidth,
        locality=0.6,
    )


# Module-level so the process pool can pickle them.
def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise InfeasibleError("three is right out")
    return x


def _slow_square(x):
    import time

    if x == 2:
        time.sleep(1.5)
    return x * x


def _sweep_eval(width, banks):
    macro = EDRAMMacro.build(
        size_bits=4 * MBIT, width=width, banks=banks, page_bits=2048
    )
    return Evaluator().evaluate_macro(macro, requirements()).area_mm2


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        outcomes = parallel_map(_square, range(10))
        assert [o.value for o in outcomes] == [x * x for x in range(10)]
        assert all(o.ok for o in outcomes)

    def test_empty_items(self):
        assert parallel_map(_square, []) == []

    def test_caught_errors_become_outcomes(self):
        outcomes = parallel_map(
            _fail_on_three, [1, 2, 3, 4], catch=(InfeasibleError,)
        )
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert "three" in outcomes[2].error
        assert outcomes[2].value is None

    def test_uncaught_errors_raise(self):
        with pytest.raises(InfeasibleError):
            parallel_map(_fail_on_three, [3])

    def test_process_pool_matches_serial(self):
        config = ParallelConfig(workers=2, chunk_size=3)
        outcomes = parallel_map(_square, range(20), config=config)
        assert [o.value for o in outcomes] == [x * x for x in range(20)]

    def test_non_picklable_falls_back_to_serial(self):
        fn = lambda x: x + 1  # noqa: E731 - deliberately unpicklable
        config = ParallelConfig(workers=4)
        outcomes = parallel_map(fn, [1, 2, 3], config=config)
        assert [o.value for o in outcomes] == [2, 3, 4]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(workers=-1)
        with pytest.raises(ConfigurationError):
            ParallelConfig(chunk_size=0)

    def test_resolved_workers_caps_at_items(self):
        assert ParallelConfig(workers=16).resolved_workers(3) == 3
        assert ParallelConfig(workers=0).resolved_workers(3) == 1


class _ExplodingPool:
    """Stand-in executor whose submissions all fail at result time."""

    def __init__(self, max_workers=None):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args):
        raise OSError("spawn blocked by sandbox")


@pytest.fixture
def global_metrics():
    """Enable the global registry for one test, restored afterwards."""
    GLOBAL_METRICS.enabled = True
    GLOBAL_METRICS.reset()
    yield GLOBAL_METRICS
    GLOBAL_METRICS.reset()
    GLOBAL_METRICS.enabled = False


class TestParallelFallback:
    """The pool-failure fallback must be loud, counted and correct.

    Regression tests for the silent ``except Exception: pass`` that
    used to discard the root cause of every pool failure.
    """

    def test_fallback_warns_with_root_cause(self, monkeypatch):
        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", _ExplodingPool
        )
        config = ParallelConfig(workers=2, chunk_size=2)
        with pytest.warns(ParallelFallbackWarning, match="sandbox"):
            outcomes = parallel_map(_square, range(6), config=config)
        # The serial re-run still produces complete, ordered results.
        assert [o.value for o in outcomes] == [x * x for x in range(6)]

    def test_fallback_counted_in_global_metrics(
        self, monkeypatch, global_metrics
    ):
        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", _ExplodingPool
        )
        with pytest.warns(ParallelFallbackWarning):
            parallel_map(
                _square, range(4), config=ParallelConfig(workers=2)
            )
        assert global_metrics.value("parallel_map.fallbacks") == 1

    def test_worker_crash_reraises_serially_with_warning(self):
        # An exception outside `catch` escapes the pool; the serial
        # re-run raises it deterministically — after the warning.
        with pytest.warns(ParallelFallbackWarning, match="InfeasibleError"):
            with pytest.raises(InfeasibleError):
                parallel_map(
                    _fail_on_three,
                    [1, 2, 3, 4],
                    config=ParallelConfig(workers=2, chunk_size=1),
                )

    def test_healthy_pool_does_not_warn(self, recwarn):
        outcomes = parallel_map(
            _square, range(8), config=ParallelConfig(workers=2)
        )
        assert [o.value for o in outcomes] == [x * x for x in range(8)]
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, ParallelFallbackWarning)
        ]

    def test_telemetry_recorded_when_enabled(self, global_metrics):
        parallel_map(
            _square,
            range(10),
            config=ParallelConfig(workers=2, chunk_size=5),
        )
        assert global_metrics.value("parallel_map.pool_runs") == 1
        assert global_metrics.value("parallel_map.points") == 10
        assert global_metrics.value("parallel_map.workers") == 2
        assert global_metrics.value("parallel_map.chunks") == 2
        assert global_metrics.value("parallel_map.chunk_us") == 2

    def test_serial_reasons_counted(self, global_metrics):
        parallel_map(_square, [1, 2], config=ParallelConfig(workers=1))
        parallel_map(
            lambda x: x,  # noqa: E731 - deliberately unpicklable
            [1, 2],
            config=ParallelConfig(workers=2),
        )
        assert (
            global_metrics.value("parallel_map.serial.single_worker") == 1
        )
        assert (
            global_metrics.value("parallel_map.serial.non_picklable") == 1
        )

    #: Path-marker counters: legitimately present only on the path
    #: that took them (pool entry, serial reason, resilience events).
    PATH_MARKERS = {
        "parallel_map.pool_runs",
        "parallel_map.fallbacks",
        "parallel_map.retries",
        "parallel_map.timeouts",
    }

    @classmethod
    def _canonical_names(cls, snapshot):
        """Telemetry names minus the per-path markers."""
        counters = {
            name
            for name in snapshot["counters"]
            if name not in cls.PATH_MARKERS
            and not name.startswith("parallel_map.serial.")
        }
        return (
            counters,
            set(snapshot["gauges"]),
            set(snapshot["histograms"]),
        )

    def test_serial_paths_emit_pool_counter_set(self, global_metrics):
        """Counter-name parity: every execution path must record the
        same canonical telemetry, or dashboards silently go dark when
        a sweep degrades to serial."""
        parallel_map(
            _square,
            range(10),
            config=ParallelConfig(workers=2, chunk_size=5),
        )
        pool = self._canonical_names(global_metrics.snapshot())

        global_metrics.reset()
        parallel_map(
            _square,
            range(10),
            config=ParallelConfig(workers=1, chunk_size=5),
        )
        single_worker = self._canonical_names(global_metrics.snapshot())

        global_metrics.reset()
        parallel_map(
            lambda x: x,  # noqa: E731 - deliberately unpicklable
            range(10),
            config=ParallelConfig(workers=2, chunk_size=5),
        )
        non_picklable = self._canonical_names(global_metrics.snapshot())

        assert pool == single_worker == non_picklable
        # And the canonical values line up on the serial path too.
        assert global_metrics.value("parallel_map.runs") == 1
        assert global_metrics.value("parallel_map.points") == 10
        assert global_metrics.value("parallel_map.workers") == 1
        assert global_metrics.value("parallel_map.chunks") == 2
        assert global_metrics.value("parallel_map.chunk_us") == 2

    def test_fallback_path_emits_pool_counter_set(
        self, monkeypatch, global_metrics
    ):
        parallel_map(
            _square,
            range(10),
            config=ParallelConfig(workers=2, chunk_size=5),
        )
        pool = self._canonical_names(global_metrics.snapshot())

        global_metrics.reset()
        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", _ExplodingPool
        )
        with pytest.warns(ParallelFallbackWarning):
            parallel_map(
                _square,
                range(10),
                config=ParallelConfig(workers=2, chunk_size=5),
            )
        fallback = self._canonical_names(global_metrics.snapshot())
        assert pool == fallback


class TestRetryAndTimeout:
    """Bounded retry for transient pool failures; per-chunk timeouts."""

    def test_transient_failure_retried_then_fallback(
        self, monkeypatch, global_metrics
    ):
        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", _ExplodingPool
        )
        config = ParallelConfig(workers=2, max_retries=2, backoff_s=0.0)
        with pytest.warns(ParallelFallbackWarning, match="sandbox"):
            outcomes = parallel_map(_square, range(4), config=config)
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        assert global_metrics.value("parallel_map.retries") == 2
        assert global_metrics.value("parallel_map.fallbacks") == 1

    def test_zero_retries_fall_back_immediately(
        self, monkeypatch, global_metrics
    ):
        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", _ExplodingPool
        )
        config = ParallelConfig(workers=2, max_retries=0)
        with pytest.warns(ParallelFallbackWarning):
            parallel_map(_square, range(4), config=config)
        assert global_metrics.value("parallel_map.retries") is None
        assert global_metrics.value("parallel_map.fallbacks") == 1

    def test_workload_exception_not_retried(self, global_metrics):
        # Deterministic worker crashes must go straight to the serial
        # re-run: retrying would just pay pool spawns to re-raise.
        with pytest.warns(ParallelFallbackWarning):
            with pytest.raises(InfeasibleError):
                parallel_map(
                    _fail_on_three,
                    [1, 2, 3, 4],
                    config=ParallelConfig(
                        workers=2, chunk_size=1, max_retries=3
                    ),
                )
        assert global_metrics.value("parallel_map.retries") is None

    def test_timed_out_chunk_quarantined(self, global_metrics):
        config = ParallelConfig(workers=2, chunk_size=1, timeout_s=0.4)
        outcomes = parallel_map(_slow_square, [1, 2, 3], config=config)
        assert len(outcomes) == 3
        assert outcomes[0].ok and outcomes[0].value == 1
        assert not outcomes[1].ok
        assert "TimeoutError" in outcomes[1].error
        assert global_metrics.value("parallel_map.timeouts") == 1

    def test_timed_out_chunk_emits_timeout_span(self):
        # Regression: the quarantined chunk used to leave only a bare
        # `timeout` event, so the run report's span waterfall silently
        # dropped the chunk that cost the most wall time.
        from repro.obs.ledger import MemoryLedger
        from repro.reporting.runreport import summarize_ledger

        ledger = MemoryLedger(run_id="timeout-span")
        config = ParallelConfig(workers=2, chunk_size=1, timeout_s=0.4)
        outcomes = parallel_map(
            _slow_square, [1, 2, 3], config=config, ledger=ledger
        )
        assert any(not outcome.ok for outcome in outcomes)
        timeouts = [
            event for event in ledger.events if event["kind"] == "timeout"
        ]
        span_ends = [
            event
            for event in ledger.events
            if event["kind"] == "span_end"
            and event.get("status") == "timeout"
        ]
        assert len(span_ends) == len(timeouts) >= 1
        for timeout_event, span_end in zip(timeouts, span_ends):
            assert span_end["name"] == (
                f"chunk {timeout_event['index']} (timeout)"
            )
            assert span_end["s"] == pytest.approx(config.timeout_s)
        # ...and the report pipeline now shows the lost chunk.
        summary = summarize_ledger(ledger.events)
        assert any(
            "(timeout)" in span["name"] for span in summary["spans"]
        )

    def test_watchdog_config_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ParallelConfig(backoff_s=-0.1)


class _FirstChunkThenFailPool:
    """Inline pool: the first submitted chunk resolves, the rest fail
    transiently at result time — deterministically models a pool
    attempt that already reported chunk 0 before dying."""

    def __init__(self, max_workers=None):
        self._submissions = 0

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args):
        from concurrent.futures import Future

        future = Future()
        if self._submissions == 0:
            future.set_result(fn(*args))
        else:
            future.set_exception(OSError("transient pool failure"))
        self._submissions += 1
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestChunkAccountingParity:
    """Regression: retries and the serial fallback used to re-report
    chunks the failed pool attempt had already counted, so the ledger
    showed more chunks than existed and progress (and its ETA) ran
    past 100%.  All accounting now funnels through ``_note_chunk``
    with a per-map dedup set."""

    def _progress(self, total):
        from repro.obs.progress import ProgressReporter

        return ProgressReporter(
            total=total, enabled=False, callback=lambda reporter: None
        )

    def test_fallback_does_not_double_count_reported_chunks(
        self, monkeypatch, global_metrics
    ):
        from repro.obs.ledger import MemoryLedger

        monkeypatch.setattr(
            parallel_module,
            "ProcessPoolExecutor",
            _FirstChunkThenFailPool,
        )
        ledger = MemoryLedger(run_id="parity")
        progress = self._progress(total=6)
        config = ParallelConfig(
            workers=2, chunk_size=2, max_retries=1, backoff_s=0.0
        )
        with pytest.warns(ParallelFallbackWarning):
            outcomes = parallel_map(
                _square,
                range(6),
                config=config,
                ledger=ledger,
                progress=progress,
            )
        # The results themselves were always correct...
        assert [o.value for o in outcomes] == [x * x for x in range(6)]
        # ...but chunk 0 was reported by the pool attempt *and* again
        # by each retry and the serial fallback.  Exactly one report
        # per chunk now:
        chunk_events = [
            event for event in ledger.events if event["kind"] == "chunk"
        ]
        assert sorted(e["index"] for e in chunk_events) == [0, 1, 2]
        # ...and progress counts every point exactly once.
        assert progress.done + progress.failed == 6
        assert progress.failed == 0

    def test_timeout_accounting_counts_each_chunk_once(
        self, global_metrics
    ):
        from repro.obs.ledger import MemoryLedger

        ledger = MemoryLedger(run_id="timeout-parity")
        progress = self._progress(total=3)
        config = ParallelConfig(workers=2, chunk_size=1, timeout_s=0.4)
        outcomes = parallel_map(
            _slow_square,
            [1, 2, 3],
            config=config,
            ledger=ledger,
            progress=progress,
        )
        # Counter parity: quarantined + completed covers every point
        # exactly once, and every chunk index is reported exactly once
        # across the ok/timeout event kinds.
        assert progress.done + progress.failed == 3
        assert progress.failed == sum(1 for o in outcomes if not o.ok)
        reported = [
            event["index"]
            for event in ledger.events
            if event["kind"] in ("chunk", "timeout")
        ]
        assert sorted(reported) == [0, 1, 2]
        assert global_metrics.value("parallel_map.timeouts") == 1


class TestEvaluatorMemo:
    def test_memo_hit_returns_same_object(self):
        evaluator = Evaluator()
        macro = EDRAMMacro.build(size_bits=4 * MBIT, width=64)
        reqs = requirements()
        first = evaluator.evaluate_macro(macro, reqs)
        second = evaluator.evaluate_macro(macro, reqs)
        assert first is second
        info = evaluator.macro_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["size"] == 1

    def test_distinct_requirements_distinct_entries(self):
        evaluator = Evaluator()
        macro = EDRAMMacro.build(size_bits=4 * MBIT, width=64)
        evaluator.evaluate_macro(macro, requirements(name="a"))
        evaluator.evaluate_macro(macro, requirements(name="b"))
        assert evaluator.macro_cache_info()["size"] == 2

    def test_clear_cache(self):
        evaluator = Evaluator()
        macro = EDRAMMacro.build(size_bits=4 * MBIT, width=64)
        evaluator.evaluate_macro(macro, requirements())
        evaluator.clear_macro_cache()
        assert evaluator.macro_cache_info() == {
            "size": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "maxsize": None,
        }

    def test_cache_excluded_from_pickle_and_eq(self):
        evaluator = Evaluator()
        macro = EDRAMMacro.build(size_bits=4 * MBIT, width=64)
        evaluator.evaluate_macro(macro, requirements())
        clone = pickle.loads(pickle.dumps(evaluator))
        assert clone == evaluator  # cache is not part of identity
        assert clone.macro_cache_info()["size"] == 0  # and starts cold

    def test_prime_macro_cache(self):
        warm = Evaluator()
        macro = EDRAMMacro.build(size_bits=4 * MBIT, width=64)
        reqs = requirements()
        metrics = warm.evaluate_macro(macro, reqs)
        cold = Evaluator()
        cold.prime_macro_cache([((macro, reqs), metrics)])
        assert cold.evaluate_macro(macro, reqs) is metrics
        assert cold.macro_cache_info()["hits"] == 1


class TestParetoEngines:
    CASES = [
        [],
        [(1.0, 2.0)],
        [(1.0, 2.0), (2.0, 1.0), (1.5, 1.5), (3.0, 3.0)],
        [(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)],  # duplicates kept once
        [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0)],  # weak domination
        [(float("nan"), 1.0), (1.0, 1.0)],  # NaN never dominates
    ]

    @pytest.mark.parametrize("vectors", CASES)
    def test_engines_agree(self, vectors):
        items = list(range(len(vectors)))
        key = lambda i: vectors[i]  # noqa: E731
        python = pareto_frontier(items, key, engine="python")
        numpy = pareto_frontier(items, key, engine="numpy")
        auto = pareto_frontier(items, key)
        assert python == numpy == auto

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            pareto_frontier([1], lambda i: (1.0,), engine="rust")

    def test_non_numeric_auto_falls_back(self):
        items = ["b", "a"]
        frontier = pareto_frontier(items, lambda s: (s,))
        assert frontier == ["a"]


class TestSweepParallel:
    def test_parallel_matches_serial(self):
        sweep = Sweep(
            axes={"width": [32, 64, 128], "banks": [2, 4]}
        )
        serial = sweep.run(_sweep_eval, skip_errors=True)
        parallel = sweep.run(
            _sweep_eval,
            skip_errors=True,
            parallel=ParallelConfig(workers=2),
        )
        assert [(p.parameters, p.result) for p in serial.points] == [
            (p.parameters, p.result) for p in parallel.points
        ]

    def test_parallel_skip_errors_drops_bad_points(self):
        sweep = Sweep(axes={"width": [64, 100_000]})
        result = sweep.run(
            _sweep_eval_strict,
            skip_errors=True,
            parallel=ParallelConfig(workers=2),
        )
        assert [p["width"] for p in result.points] == [64]

    def test_parallel_without_skip_errors_raises(self):
        sweep = Sweep(axes={"width": [64, 100_000]})
        with pytest.raises(ConfigurationError):
            sweep.run(
                _sweep_eval_strict, parallel=ParallelConfig(workers=2)
            )


def _sweep_eval_strict(width):
    return _sweep_eval(width=width, banks=4)


class TestExplorerParallel:
    def test_parallel_explore_matches_serial(self):
        reqs = requirements(bandwidth=4e9)
        serial = DesignSpaceExplorer().explore(reqs)
        explorer = DesignSpaceExplorer()
        parallel = explorer.explore(
            reqs, parallel=ParallelConfig(workers=2)
        )
        assert serial.evaluated == parallel.evaluated
        assert serial.feasible == parallel.feasible
        assert serial.frontier == parallel.frontier

    def test_parallel_explore_primes_parent_cache(self):
        reqs = requirements(bandwidth=4e9)
        explorer = DesignSpaceExplorer()
        result = explorer.explore(
            reqs, parallel=ParallelConfig(workers=2)
        )
        info = explorer.evaluator.macro_cache_info()
        assert info["size"] == result.n_explored
        # A follow-up serial explore is answered from the memo.
        explorer.explore(reqs)
        assert (
            explorer.evaluator.macro_cache_info()["hits"]
            >= result.n_explored
        )

    def test_enumerate_caches_invalid_combos(self):
        explorer = DesignSpaceExplorer()
        reqs = requirements()
        first = explorer.enumerate(reqs)
        cached = len(explorer._invalid_combos)
        second = explorer.enumerate(reqs)
        assert [m for m in first] == [m for m in second]
        assert len(explorer._invalid_combos) == cached
