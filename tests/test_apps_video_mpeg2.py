"""Tests for repro.apps.video and repro.apps.mpeg2 (E6)."""

import pytest

from repro.apps.mpeg2 import (
    DecoderVariant,
    GOPStructure,
    MPEG2MemoryBudget,
    VBV_BITS_MP_ML,
)
from repro.apps.video import (
    ChromaFormat,
    FrameGeometry,
    NTSC,
    PAL,
    VideoStandard,
    frame_bits,
)
from repro.errors import ConfigurationError
from repro.units import MBIT


class TestFrameGeometry:
    def test_pal_matches_paper(self):
        # "a PAL frame ... in 4:2:0 format needs 4.75 Mbit"
        assert PAL.frame_mbit == pytest.approx(4.75, abs=0.01)

    def test_ntsc_matches_paper(self):
        # "an NTSC frame requires 3.96 Mbit"
        assert NTSC.frame_mbit == pytest.approx(3.96, abs=0.01)

    def test_chroma_formats(self):
        assert PAL.with_chroma(ChromaFormat.YUV422).frame_bits == (
            720 * 576 * 16
        )
        assert PAL.with_chroma(ChromaFormat.YUV444).frame_bits == (
            720 * 576 * 24
        )

    def test_luma_chroma_split(self):
        assert PAL.luma_bits + PAL.chroma_bits == PAL.frame_bits
        assert PAL.chroma_bits == PAL.luma_bits // 2  # 4:2:0

    def test_display_bandwidth(self):
        assert PAL.display_bandwidth_bits_per_s() == pytest.approx(
            PAL.frame_bits * 25.0
        )

    def test_frame_bits_helper(self):
        assert frame_bits(VideoStandard.PAL) == PAL.frame_bits
        assert frame_bits(VideoStandard.NTSC) == NTSC.frame_bits

    def test_not_multiple_of_commodity_sizes(self):
        # "Standard commodity sizes are usually not a multiple of the
        # frame memory size."
        assert (4 * MBIT) % PAL.frame_bits != 0
        assert (16 * MBIT) % PAL.frame_bits != 0

    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            FrameGeometry(
                standard=VideoStandard.PAL,
                width=0,
                height=576,
                frame_rate_hz=25.0,
            )


class TestMPEG2Budget:
    def test_standard_variant_fits_16_mbit(self):
        # The MPEG group expressly bent the standard for this.
        budget = MPEG2MemoryBudget()
        assert budget.fits_16_mbit
        assert budget.total_mbit > 15.0  # and only barely

    def test_three_4mbit_chips_insufficient(self):
        # "adequate memories of sizes smaller than 16 Mbits are not
        # available (three 4-Mbit memories are insufficient)"
        budget = MPEG2MemoryBudget()
        assert not budget.fits_bits(3 * 4 * MBIT)

    def test_reduced_variant_saves_about_3_mbit(self):
        reduced = MPEG2MemoryBudget(variant=DecoderVariant.REDUCED_OUTPUT)
        saved = reduced.saved_vs_standard_bits / MBIT
        assert saved == pytest.approx(3.0, abs=0.2)

    def test_reduced_variant_doubles_pipeline(self):
        standard = MPEG2MemoryBudget()
        reduced = MPEG2MemoryBudget(variant=DecoderVariant.REDUCED_OUTPUT)
        assert standard.pipeline_throughput_factor() == 1.0
        assert reduced.pipeline_throughput_factor() == 2.0

    def test_reduced_variant_b_picture_mc_doubles(self):
        # The B-picture MC share exactly doubles; the total MC bandwidth
        # (including the unchanged P share) rises by a bit less.
        standard = MPEG2MemoryBudget()
        reduced = MPEG2MemoryBudget(variant=DecoderVariant.REDUCED_OUTPUT)
        gop = standard.gop
        b_share = gop.b_fraction * 2.0
        p_share = gop.p_fraction * 1.0
        expected = (p_share + 2 * b_share) / (p_share + b_share)
        ratio = (
            reduced.motion_compensation_read_bandwidth()
            / standard.motion_compensation_read_bandwidth()
        )
        assert ratio == pytest.approx(expected)
        assert 1.7 < ratio <= 2.0

    def test_vbv_is_mp_ml(self):
        assert VBV_BITS_MP_ML == 1_835_008
        assert MPEG2MemoryBudget().input_buffer_bits == VBV_BITS_MP_ML

    def test_ntsc_budget_smaller(self):
        pal = MPEG2MemoryBudget()
        ntsc = MPEG2MemoryBudget(frame=NTSC)
        assert ntsc.total_bits < pal.total_bits

    def test_bandwidth_components_positive_and_sum(self):
        budget = MPEG2MemoryBudget()
        total = budget.total_bandwidth_bits_per_s()
        assert total == pytest.approx(
            budget.reconstruction_write_bandwidth()
            + budget.motion_compensation_read_bandwidth()
            + budget.display_read_bandwidth()
            + budget.bitstream_bandwidth()
        )
        # MP@ML decode needs on the order of half a Gbit/s.
        assert 0.3e9 < total < 1.2e9

    def test_mc_dominates_bandwidth(self):
        budget = MPEG2MemoryBudget()
        assert budget.motion_compensation_read_bandwidth() > max(
            budget.reconstruction_write_bandwidth(),
            budget.display_read_bandwidth(),
            budget.bitstream_bandwidth(),
        )

    def test_gop_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            GOPStructure(i_fraction=0.5, p_fraction=0.5, b_fraction=0.5)

    def test_bad_overfetch(self):
        with pytest.raises(ConfigurationError):
            MPEG2MemoryBudget(mc_overfetch=0.5)
