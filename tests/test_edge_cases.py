"""Edge-case tests across modules: clamps, boundaries, degenerate inputs."""

import pytest

from repro.core.evaluator import Evaluator
from repro.core.requirements import ApplicationRequirements
from repro.dram.edram import EDRAMMacro
from repro.errors import ConfigurationError
from repro.reporting.tables import format_bits, format_si
from repro.units import KBIT, MBIT


class TestEvaluatorClamps:
    def test_overloaded_latency_clamped(self):
        # Demanding more than the macro sustains: utilization clamps at
        # the queueing knee instead of diverging.
        macro = EDRAMMacro.build(size_bits=8 * MBIT, width=16, banks=1)
        requirements = ApplicationRequirements(
            name="over",
            capacity_bits=8 * MBIT,
            sustained_bandwidth_bits_per_s=100e9,
            locality=0.0,
        )
        metrics = Evaluator().evaluate_macro(macro, requirements)
        assert metrics.mean_latency_ns < 1e4  # finite, bounded

    def test_negative_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            Evaluator()._loaded_latency_ns(50.0, -0.1)

    def test_zero_utilization_base_latency(self):
        assert Evaluator()._loaded_latency_ns(50.0, 0.0) == pytest.approx(
            50.0
        )


class TestSmallestMacro:
    def test_one_block_module(self):
        macro = EDRAMMacro.build(
            size_bits=256 * KBIT, width=16, banks=1, page_bits=1024
        )
        assert macro.organization.n_rows == 256
        device = macro.device()
        assert device.capacity_bits == 256 * KBIT

    def test_largest_module(self):
        macro = EDRAMMacro.build(
            size_bits=128 * MBIT, width=512, banks=16, page_bits=8192
        )
        assert macro.peak_bandwidth_bits_per_s / 8e9 == pytest.approx(
            9.14, abs=0.05
        )
        assert macro.area_mm2() > 120


class TestFormatters:
    def test_format_si_negative(self):
        assert format_si(-2.5e9, "B/s") == "-2.50 GB/s"

    def test_format_si_tiny(self):
        assert "n" in format_si(3e-9, "J")

    def test_format_bits_gbit(self):
        assert format_bits(2 * 2**30) == "2.00 Gbit"

    def test_format_bits_kbit(self):
        assert format_bits(256 * KBIT) == "256.00 Kbit"


class TestRequestValidation:
    def test_latency_before_completion_raises(self):
        from repro.controller.request import Request

        request = Request(
            request_id=0,
            client="c",
            address=0,
            is_read=True,
            created_cycle=0,
        )
        with pytest.raises(ConfigurationError):
            _ = request.latency_cycles
        with pytest.raises(ConfigurationError):
            _ = request.queueing_cycles

    def test_negative_fields_rejected(self):
        from repro.controller.request import Request

        with pytest.raises(ConfigurationError):
            Request(
                request_id=-1,
                client="c",
                address=0,
                is_read=True,
                created_cycle=0,
            )


class TestMarketsEdges:
    def test_rank_includes_all_segments(self):
        from repro.apps.markets import SEGMENTS, rank_segments

        ranked = rank_segments()
        assert len(ranked) == len(SEGMENTS)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_advisability_bounds(self):
        from repro.apps.markets import advisability_score

        maxed = advisability_score(
            volume_per_year=1_000_000_000,
            product_lifetime_years=10.0,
            memory_mbit=128.0,
            required_bandwidth_gbyte_per_s=9.0,
            portable=True,
            needs_upgrade_path=False,
        )
        assert maxed <= 1.0


class TestOrganizationBoundaries:
    def test_single_row_bank(self):
        from repro.dram.organizations import AddressMapping, Organization

        organization = Organization(
            n_banks=2, n_rows=1, page_bits=1024, word_bits=16
        )
        mapping = AddressMapping(organization)
        for address in range(organization.total_words):
            decoded = mapping.decode(address)
            assert decoded.row == 0
            assert mapping.encode(decoded) == address

    def test_word_equals_page(self):
        from repro.dram.organizations import Organization

        organization = Organization(
            n_banks=1, n_rows=4, page_bits=64, word_bits=64
        )
        assert organization.columns_per_page == 1
