"""Shared fixtures-support for the serve test layer.

Importable as ``tests.serve_helpers`` (the tests directory is a
package).  Holds the pieces several serve test modules and the golden
generator need to agree on:

* ``contract_workload`` — a pure-arithmetic workload whose results are
  bit-identical on every platform, so golden response fixtures can pin
  exact bytes (the analytic evaluator's floats are deterministic too,
  but arithmetic makes the goldens human-checkable).
* ``gated_workload`` — blocks on a named :class:`threading.Event`
  until the test opens it; concurrency tests use it to hold a job
  in-flight deterministically instead of sleeping and hoping.
* ``contract_env`` / ``gated_env`` — context managers that register
  the workload, build an in-process service+client pair, and guarantee
  unregistration on the way out.

See docs/TESTING.md ("Service tests") for the map of which test module
uses which helper.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path

from repro.errors import ConfigurationError, SimulationError
from repro.serve.testing import in_process_service
from repro.serve.workloads import register_workload, unregister_workload

CONTRACT_WORKLOAD = "t_contract"
GATED_WORKLOAD = "t_gated"

#: The canonical job the golden fixtures are built around.
CONTRACT_JOB = {
    "kind": "sweep",
    "workload": CONTRACT_WORKLOAD,
    "axes": {"x": [0, 1, 2], "y": [3]},
}

GOLDENS_PATH = (
    Path(__file__).parent / "data" / "serve" / "contract_goldens.json"
)


def contract_workload(x: int = 1, y: int = 2) -> dict:
    """Deterministic arithmetic point: JSON-able, platform-independent."""
    if x < 0:
        raise ConfigurationError("x must be >= 0")
    return {
        "sum": x + y,
        "product": x * y,
        "objectives": [float(x + y), float(-x * y)],
    }


#: name -> Event; gated_workload blocks until the named gate opens.
GATES: dict = {}


def open_gate(name: str) -> None:
    GATES.setdefault(name, threading.Event()).set()


def reset_gate(name: str) -> None:
    GATES[name] = threading.Event()


def gated_workload(x: int = 0, gate: str = "default") -> dict:
    event = GATES.setdefault(gate, threading.Event())
    if not event.wait(timeout=30.0):
        raise SimulationError(f"gate {gate!r} never opened")
    return {"x": x}


@contextmanager
def contract_env(cache=None, max_workers: int = 4):
    register_workload(CONTRACT_WORKLOAD, contract_workload, replace=True)
    try:
        with in_process_service(
            cache=cache, max_workers=max_workers
        ) as pair:
            yield pair
    finally:
        unregister_workload(CONTRACT_WORKLOAD)


@contextmanager
def gated_env(cache=None, max_workers: int = 4):
    register_workload(GATED_WORKLOAD, gated_workload, replace=True)
    try:
        with in_process_service(
            cache=cache, max_workers=max_workers
        ) as pair:
            yield pair
    finally:
        unregister_workload(GATED_WORKLOAD)


def scrub(document: dict, volatile) -> dict:
    """A copy of ``document`` with the volatile top-level keys removed."""
    return {
        key: value
        for key, value in document.items()
        if key not in set(volatile)
    }
