"""Tests for repro.dft.compression and repro.cost.nre."""

import pytest

from repro.cost.nre import (
    EDRAM_CONCEPT_NRE,
    EDRAM_FIRST_PRODUCT_NRE,
    LOGIC_ASIC_NRE,
    NREBreakdown,
)
from repro.dft.compression import SignatureCompressor
from repro.dft.march import MARCH_C_MINUS, MATS_PLUS
from repro.errors import ConfigurationError
from repro.units import MBIT


class TestSignatureCompression:
    def test_huge_compression_ratio(self):
        # Section 6: compression reduces the off-chip interface need;
        # for a 64-Mbit module the ratio is astronomic.
        compressor = SignatureCompressor()
        ratio = compressor.compression_ratio(MARCH_C_MINUS, 64 * MBIT)
        assert ratio > 1e6

    def test_offchip_volume_independent_of_memory_size(self):
        compressor = SignatureCompressor()
        small = compressor.offchip_bits(MARCH_C_MINUS, 4 * MBIT)
        large = compressor.offchip_bits(MARCH_C_MINUS, 128 * MBIT)
        assert small == large

    def test_uncompressed_scales_with_memory(self):
        compressor = SignatureCompressor()
        small = compressor.offchip_bits_uncompressed(
            MARCH_C_MINUS, 4 * MBIT
        )
        large = compressor.offchip_bits_uncompressed(
            MARCH_C_MINUS, 8 * MBIT
        )
        assert large == 2 * small

    def test_aliasing_negligible_at_32_bits(self):
        assert SignatureCompressor(
            signature_bits=32
        ).aliasing_probability() < 1e-9

    def test_aliasing_vs_width_tradeoff(self):
        narrow = SignatureCompressor(signature_bits=8)
        wide = SignatureCompressor(signature_bits=32)
        assert (
            narrow.aliasing_probability() > wide.aliasing_probability()
        )
        assert narrow.offchip_bits(MATS_PLUS, MBIT) < wide.offchip_bits(
            MATS_PLUS, MBIT
        )

    def test_readout_cycles(self):
        compressor = SignatureCompressor(
            signature_bits=32, readout_width_bits=4
        )
        # 6 elements x 8 shift cycles.
        assert compressor.readout_cycles(MARCH_C_MINUS) == 48

    def test_no_fail_bitmap(self):
        # Repair allocation needs bitmaps: compression is for post-fuse.
        assert not SignatureCompressor().preserves_fail_bitmap()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SignatureCompressor(signature_bits=2)


class TestNREBreakdown:
    def test_edram_entry_costs_real_money(self):
        # Section 1's "libraries must be developed and characterized,
        # macros must be ported, and design flows must be tuned".
        assert EDRAM_FIRST_PRODUCT_NRE.process_entry_cost > 1e6
        assert LOGIC_ASIC_NRE.process_entry_cost < 0.1e6

    def test_edram_nre_exceeds_logic_asic(self):
        assert EDRAM_FIRST_PRODUCT_NRE.total > 1.5 * LOGIC_ASIC_NRE.total

    def test_flexible_concept_cuts_memory_nre(self):
        # Section 5: the concept's generator gives "first-time-right
        # designs accompanied by all views, test programs, etc.".
        assert EDRAM_CONCEPT_NRE.total < EDRAM_FIRST_PRODUCT_NRE.total
        assert EDRAM_CONCEPT_NRE.memory_design < 0.2 * (
            EDRAM_FIRST_PRODUCT_NRE.memory_design
        )
        # Entry costs are untouched: they are process facts.
        assert EDRAM_CONCEPT_NRE.process_entry_cost == (
            EDRAM_FIRST_PRODUCT_NRE.process_entry_cost
        )

    def test_total_sums_items(self):
        breakdown = NREBreakdown()
        assert breakdown.total == pytest.approx(
            breakdown.mask_set
            + breakdown.library_development
            + breakdown.macro_porting
            + breakdown.design_flow
            + breakdown.memory_design
            + breakdown.test_program
            + breakdown.qualification
        )

    def test_amortization(self):
        breakdown = NREBreakdown()
        assert breakdown.amortized_per_unit(
            1_000_000
        ) == pytest.approx(breakdown.total / 1e6)
        # The Section 2 volume rule in NRE terms: at 10M units the NRE
        # adder is cents.
        assert breakdown.amortized_per_unit(10_000_000) < 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NREBreakdown(mask_set=-1.0)
        with pytest.raises(ConfigurationError):
            NREBreakdown().amortized_per_unit(0)
