"""Tests for repro.area.cell: memory cell technologies."""

import pytest

from repro.area.cell import (
    CellTechnology,
    DRAM_1T1C,
    DRAM_1T1C_PLANAR,
    DRAM_3T,
    SRAM_6T,
    EDRAM_CELLS,
)
from repro.errors import ConfigurationError


class TestBuiltinCells:
    def test_dram_vs_sram_density_gap(self):
        # The reason large embedded memories must be DRAM: ~15x denser.
        ratio = DRAM_1T1C.density_ratio_vs(SRAM_6T)
        assert 10 < ratio < 25

    def test_planar_cell_is_bigger(self):
        # A logic-process DRAM cell is substantially larger.
        assert DRAM_1T1C_PLANAR.area_f2 > 2 * DRAM_1T1C.area_f2

    def test_sram_is_fastest(self):
        assert SRAM_6T.relative_speed == max(
            cell.relative_speed for cell in EDRAM_CELLS
        )

    def test_dram_needs_refresh_sram_does_not(self):
        assert DRAM_1T1C.needs_refresh
        assert not SRAM_6T.needs_refresh

    def test_transistor_counts(self):
        assert DRAM_1T1C.transistors == 1
        assert DRAM_3T.transistors == 3
        assert SRAM_6T.transistors == 6


class TestAreaMath:
    def test_cell_area_scales_with_feature_squared(self):
        a025 = DRAM_1T1C.cell_area_um2(0.25)
        a050 = DRAM_1T1C.cell_area_um2(0.50)
        assert a050 == pytest.approx(4 * a025)

    def test_array_area_linear_in_bits(self):
        one = DRAM_1T1C.array_area_mm2(2**20, 0.25)
        two = DRAM_1T1C.array_area_mm2(2**21, 0.25)
        assert two == pytest.approx(2 * one)

    def test_quarter_micron_megabit_array_area(self):
        # 8 F^2 at 0.25 um -> 0.5 um^2/cell -> ~0.52 mm^2 per Mbit of
        # raw array.  Periphery (modeled elsewhere) roughly doubles it,
        # consistent with the ~1 Mbit/mm^2 macro density.
        area = DRAM_1T1C.array_area_mm2(2**20, 0.25)
        assert area == pytest.approx(0.524, abs=0.01)

    def test_zero_bits_zero_area(self):
        assert DRAM_1T1C.array_area_mm2(0, 0.25) == 0.0


class TestValidation:
    def test_bad_feature_size(self):
        with pytest.raises(ConfigurationError):
            DRAM_1T1C.cell_area_um2(0.0)

    def test_negative_bits(self):
        with pytest.raises(ConfigurationError):
            DRAM_1T1C.array_area_mm2(-1, 0.25)

    def test_dynamic_cell_requires_retention(self):
        with pytest.raises(ConfigurationError):
            CellTechnology(
                name="bad",
                transistors=1,
                area_f2=8.0,
                relative_speed=0.4,
                needs_refresh=True,
                retention_time_s=None,
            )

    def test_zero_transistors_rejected(self):
        with pytest.raises(ConfigurationError):
            CellTechnology(
                name="bad",
                transistors=0,
                area_f2=8.0,
                relative_speed=0.4,
                needs_refresh=False,
            )

    def test_negative_area_rejected(self):
        with pytest.raises(ConfigurationError):
            CellTechnology(
                name="bad",
                transistors=1,
                area_f2=-1.0,
                relative_speed=0.4,
                needs_refresh=False,
            )
