"""Fast-forward simulator: bit-identity with the naive loop + pacing.

The event-skipping path must be *observationally indistinguishable*
from stepping every cycle: same completed requests in the same order,
same command counts, same latency samples, same FIFO statistics.  The
grid here crosses client mixes, bank counts, refresh, page policy and
controller subclasses; any divergence is a bug in the skip-safety
analysis, not an acceptable approximation.

Also pins the token-bucket pacing contract the fast path relies on:
credit accrual freezes while a client's request is back-pressured.
"""

import pytest

from repro.controller.controller import ControllerConfig, MemoryController
from repro.controller.page_policy import ClosedPagePolicy
from repro.controller.prefetch import PrefetchingMemoryController
from repro.controller.rowcache import RowCacheController
from repro.dram.edram import EDRAMMacro
from repro.dram.organizations import AddressMapping, MappingScheme
from repro.errors import ConfigurationError
from repro.sim.simulator import MemorySystemSimulator, SimulationConfig
from repro.traffic.client import MemoryClient
from repro.traffic.patterns import RandomPattern, SequentialPattern
from repro.units import MBIT


def make_clients(mix: str, rate: float):
    if mix == "stream":
        return [
            MemoryClient(
                name="s0",
                pattern=SequentialPattern(base=0, length=32768),
                rate=rate,
            )
        ]
    if mix == "mixed":
        return [
            MemoryClient(
                name="s0",
                pattern=SequentialPattern(base=0, length=32768),
                rate=rate,
            ),
            MemoryClient(
                name="r0",
                pattern=RandomPattern(base=0, length=262144, seed=5),
                rate=rate,
                read_fraction=0.6,
                seed=5,
            ),
        ]
    raise ValueError(mix)


def build(
    mix="mixed",
    rate=0.02,
    banks=4,
    refresh=True,
    policy=None,
    controller_cls=MemoryController,
    fast=True,
    cycles=3000,
    warmup=300,
    fifo_capacity=8,
):
    macro = EDRAMMacro.build(
        size_bits=4 * MBIT, width=64, banks=banks, page_bits=2048
    )
    device = macro.device()
    kwargs = {}
    if policy is not None:
        kwargs["page_policy"] = policy
    controller = controller_cls(
        device=device,
        mapping=AddressMapping(
            device.organization, MappingScheme.ROW_BANK_COL
        ),
        config=ControllerConfig(
            refresh_enabled=refresh, fifo_capacity=fifo_capacity
        ),
        **kwargs,
    )
    return MemorySystemSimulator(
        controller=controller,
        clients=make_clients(mix, rate),
        config=SimulationConfig(
            cycles=cycles, warmup_cycles=warmup, fast_forward=fast
        ),
    )


def fingerprint(result):
    """Every observable field of a SimulationResult."""
    return (
        result.requests_completed,
        result.data_bits_transferred,
        result.commands,
        result.refreshes,
        result.bank_activations,
        result.fifo_high_water,
        result.fifo_stall_cycles,
        result.row_hit_rate,
        result.latency.digest(),
        {
            name: stats.digest()
            for name, stats in result.latency_by_client.items()
        },
    )


def assert_equivalent(**kwargs):
    naive = build(fast=False, **kwargs)
    fast = build(fast=True, **kwargs)
    assert fingerprint(naive.run()) == fingerprint(fast.run())
    assert naive.cycles_fast_forwarded == 0
    return fast


class TestFastForwardEquivalence:
    @pytest.mark.parametrize("rate", [0.002, 0.02, 0.1, 0.9])
    def test_load_grid(self, rate):
        assert_equivalent(rate=rate)

    @pytest.mark.parametrize("banks", [1, 4])
    def test_bank_grid(self, banks):
        assert_equivalent(banks=banks, rate=0.01)

    @pytest.mark.parametrize("refresh", [True, False])
    def test_refresh_grid(self, refresh):
        assert_equivalent(refresh=refresh, rate=0.01)

    def test_closed_page_policy(self):
        assert_equivalent(policy=ClosedPagePolicy(), rate=0.01)

    def test_prefetch_controller(self):
        assert_equivalent(
            controller_cls=PrefetchingMemoryController,
            mix="stream",
            rate=0.05,
        )

    def test_rowcache_controller(self):
        assert_equivalent(
            controller_cls=RowCacheController, mix="stream", rate=0.05
        )

    def test_zero_warmup(self):
        assert_equivalent(warmup=0, rate=0.01)

    def test_single_stream(self):
        assert_equivalent(mix="stream", rate=0.005)

    def test_fast_path_actually_skips(self):
        sim = build(rate=0.002, fast=True)
        sim.run()
        # At 0.2% offered load the run is overwhelmingly idle; a fast
        # path that never skips is a silently-broken fast path.
        assert sim.cycles_fast_forwarded > 1000

    def test_fast_forward_off_steps_every_cycle(self):
        sim = build(rate=0.002, fast=False)
        sim.run()
        assert sim.cycles_fast_forwarded == 0

    def test_backpressure_equivalence(self):
        # A 1-deep FIFO under load exercises the _pending barrier: the
        # fast path must not skip while a request is held back.
        assert_equivalent(rate=0.5, fifo_capacity=1)


class TestPacingContract:
    def test_tick_many_matches_iterated_ticks(self):
        a = MemoryClient(
            name="a",
            pattern=SequentialPattern(base=0, length=1024),
            rate=0.003,
        )
        b = MemoryClient(
            name="b",
            pattern=SequentialPattern(base=0, length=1024),
            rate=0.003,
        )
        for span in (1, 7, 100, 333):
            for _ in range(span):
                a.tick()
            b.tick_many(span)
            # Bit-identical, not approximately equal: the fast path
            # replays the naive loop's float rounding sequence.
            assert a._credit == b._credit

    def test_cycles_until_wants_is_pure_lookahead(self):
        client = MemoryClient(
            name="c",
            pattern=SequentialPattern(base=0, length=1024),
            rate=0.01,
        )
        before = client._credit
        ticks = client.cycles_until_wants(1000)
        assert client._credit == before
        for _ in range(ticks):
            assert not client.wants_to_issue(0)
            client.tick()
        assert client.wants_to_issue(0)

    def test_cycles_until_wants_respects_limit(self):
        client = MemoryClient(
            name="c",
            pattern=SequentialPattern(base=0, length=1024),
            rate=0.001,
        )
        assert client.cycles_until_wants(10) == 10

    def test_negative_arguments_rejected(self):
        client = MemoryClient(
            name="c",
            pattern=SequentialPattern(base=0, length=1024),
            rate=0.5,
        )
        with pytest.raises(ConfigurationError):
            client.tick_many(-1)
        with pytest.raises(ConfigurationError):
            client.cycles_until_wants(-1)

    def test_credit_freezes_under_backpressure(self):
        """The pinned pacing semantics: a back-pressured client accrues
        no credit while its request is held in the simulator's pending
        slot (the held request already spent its credit; banking more
        would burst out after the stall and distort pacing)."""
        sim = build(rate=0.5, fifo_capacity=1, fast=False)
        client = sim.clients[0]
        observed_frozen = False
        total = sim.config.warmup_cycles + sim.config.cycles
        # Drive the loop manually, watching the pending slot.
        for cycle in range(total):
            pending_before = client.name in sim._pending
            credit_before = client._credit
            issued_before = client.issued
            sim._drive_clients(cycle)
            if pending_before and client.name in sim._pending:
                # Still back-pressured: credit frozen, nothing issued.
                assert client._credit == credit_before
                assert client.issued == issued_before
                observed_frozen = True
            sim.controller.step(cycle)
        assert observed_frozen, "scenario never back-pressured the client"
