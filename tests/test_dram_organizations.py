"""Tests for repro.dram.organizations: address mapping round-trips."""

import pytest

from repro.dram.organizations import (
    AddressMapping,
    DecodedAddress,
    MappingScheme,
    Organization,
)
from repro.errors import CapacityError, ConfigurationError


def org(banks=4, rows=128, page=4096, word=32) -> Organization:
    return Organization(
        n_banks=banks, n_rows=rows, page_bits=page, word_bits=word
    )


class TestOrganization:
    def test_capacity(self):
        o = org()
        assert o.capacity_bits == 4 * 128 * 4096
        assert o.columns_per_page == 128
        assert o.total_words == o.capacity_bits // 32

    def test_non_power_of_two_rows_allowed(self):
        # Embedded modules have "odd" sizes (e.g. frame-sized): rows may
        # be any positive integer.
        o = Organization(n_banks=2, n_rows=607, page_bits=4096, word_bits=32)
        assert o.capacity_bits == 2 * 607 * 4096

    def test_power_of_two_required_for_banks(self):
        with pytest.raises(ConfigurationError):
            Organization(n_banks=3, n_rows=128, page_bits=4096, word_bits=32)

    def test_word_exceeding_page_rejected(self):
        with pytest.raises(ConfigurationError):
            Organization(n_banks=2, n_rows=16, page_bits=64, word_bits=128)

    def test_str_mentions_banks(self):
        assert "banks" in str(org())


class TestAddressMappingRoundTrip:
    @pytest.mark.parametrize(
        "scheme", [MappingScheme.ROW_BANK_COL, MappingScheme.BANK_ROW_COL]
    )
    def test_decode_encode_roundtrip(self, scheme):
        mapping = AddressMapping(org(), scheme)
        for address in [0, 1, 127, 128, 4095, 65535, org().total_words - 1]:
            decoded = mapping.decode(address)
            assert mapping.encode(decoded) == address

    @pytest.mark.parametrize(
        "scheme", [MappingScheme.ROW_BANK_COL, MappingScheme.BANK_ROW_COL]
    )
    def test_roundtrip_odd_rows(self, scheme):
        odd = Organization(
            n_banks=4, n_rows=607, page_bits=2048, word_bits=32
        )
        mapping = AddressMapping(odd, scheme)
        for address in range(0, odd.total_words, 9973):
            decoded = mapping.decode(address)
            assert mapping.encode(decoded) == address

    def test_decoded_in_bounds(self):
        mapping = AddressMapping(org(), MappingScheme.ROW_BANK_COL)
        for address in range(0, org().total_words, 4099):
            d = mapping.decode(address)
            assert 0 <= d.bank < 4
            assert 0 <= d.row < 128
            assert 0 <= d.column < 128


class TestMappingSemantics:
    def test_row_bank_col_interleaves_pages(self):
        # Consecutive pages land in different banks.
        mapping = AddressMapping(org(), MappingScheme.ROW_BANK_COL)
        words_per_page = org().columns_per_page
        first = mapping.decode(0)
        second = mapping.decode(words_per_page)
        assert first.bank != second.bank
        assert first.row == second.row

    def test_bank_row_col_keeps_regions_private(self):
        # Addresses in the first quarter of memory stay in bank 0.
        mapping = AddressMapping(org(), MappingScheme.BANK_ROW_COL)
        quarter = org().total_words // 4
        banks = {mapping.decode(a).bank for a in range(0, quarter, 997)}
        assert banks == {0}

    def test_sequential_fills_page_first(self):
        mapping = AddressMapping(org(), MappingScheme.ROW_BANK_COL)
        decodes = [mapping.decode(a) for a in range(org().columns_per_page)]
        assert all(d.bank == decodes[0].bank for d in decodes)
        assert all(d.row == decodes[0].row for d in decodes)
        assert [d.column for d in decodes] == list(
            range(org().columns_per_page)
        )


class TestCapacityErrors:
    def test_decode_out_of_range(self):
        mapping = AddressMapping(org())
        with pytest.raises(CapacityError):
            mapping.decode(org().total_words)

    def test_encode_out_of_range(self):
        mapping = AddressMapping(org())
        with pytest.raises(CapacityError):
            mapping.encode(DecodedAddress(bank=4, row=0, column=0))
        with pytest.raises(CapacityError):
            mapping.encode(DecodedAddress(bank=0, row=128, column=0))
        with pytest.raises(CapacityError):
            mapping.encode(DecodedAddress(bank=0, row=0, column=128))
