"""Tests for repro.core.explorer, quantizer, advisor, tradeoffs."""

import pytest

from repro.core.advisor import Advisor
from repro.core.explorer import DesignSpaceExplorer
from repro.core.quantizer import Quantizer
from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoffs import (
    LogicMemoryTrade,
    QUARTER_MICRON_DIE_BUDGET_MM2,
)
from repro.errors import ConfigurationError, InfeasibleError
from repro.units import KBIT, MBIT


def requirements(**overrides):
    base = dict(
        name="app",
        capacity_bits=8 * MBIT,
        sustained_bandwidth_bits_per_s=1e9,
        locality=0.7,
        volume_per_year=5_000_000,
    )
    base.update(overrides)
    return ApplicationRequirements(**base)


class TestExplorer:
    def test_exploration_produces_feasible_set(self):
        result = DesignSpaceExplorer().explore(requirements())
        assert result.n_explored > 50
        assert result.feasible
        assert result.frontier
        assert set(result.frontier) <= set(result.feasible)

    def test_frontier_smaller_than_feasible(self):
        result = DesignSpaceExplorer().explore(requirements())
        assert len(result.frontier) < len(result.feasible)

    def test_named_optima_are_feasible(self):
        result = DesignSpaceExplorer().explore(requirements())
        for metrics in (
            result.min_power,
            result.min_area,
            result.min_cost,
            result.max_bandwidth,
        ):
            assert metrics in result.feasible

    def test_all_candidates_cover_capacity(self):
        explorer = DesignSpaceExplorer()
        for macro in explorer.enumerate(requirements()):
            assert macro.size_bits >= 8 * MBIT

    def test_infeasible_bandwidth_empty(self):
        # 100 GB/s is beyond the concept's 9 GB/s.
        result = DesignSpaceExplorer().explore(
            requirements(sustained_bandwidth_bits_per_s=8e11)
        )
        assert not result.feasible
        with pytest.raises(InfeasibleError):
            result.min_power

    def test_capacity_beyond_concept(self):
        with pytest.raises(InfeasibleError):
            DesignSpaceExplorer().explore(
                requirements(capacity_bits=512 * MBIT)
            )

    def test_discrete_baseline_present(self):
        result = DesignSpaceExplorer().explore(requirements())
        assert result.discrete_baseline is not None
        assert not result.discrete_baseline.embedded

    def test_embedded_frontier_beats_discrete_power(self):
        result = DesignSpaceExplorer().explore(requirements())
        assert result.min_power.power_w < result.discrete_baseline.power_w


class TestQuantizer:
    def test_snap_size_block_granularity(self):
        quantizer = Quantizer()
        snapped = quantizer.snap_size(int(4.6 * MBIT))
        assert snapped % (256 * KBIT) == 0
        assert snapped >= 4.6 * MBIT
        assert snapped - 4.6 * MBIT < 256 * KBIT

    def test_quantization_overhead_tiny_vs_commodity(self):
        # Section 4.1's point: eDRAM snaps to 256-Kbit granularity where
        # commodity granularity forced 16 -> 64 Mbit jumps.
        quantizer = Quantizer()
        overhead = quantizer.quantization_overhead(int(4.75 * MBIT))
        assert overhead < 0.06

    def test_snap_width(self):
        quantizer = Quantizer()
        assert quantizer.snap_width(100) == 128
        assert quantizer.snap_width(16) == 16
        with pytest.raises(InfeasibleError):
            quantizer.snap_width(600)

    def test_snap_size_beyond_max(self):
        with pytest.raises(InfeasibleError):
            Quantizer().snap_size(512 * MBIT)

    def test_block_decomposition(self):
        quantizer = Quantizer()
        counts = quantizer.block_decomposition(int(4.75 * MBIT))
        rebuilt = sum(size * n for size, n in counts.items())
        assert rebuilt == int(4.75 * MBIT)
        assert counts[MBIT] == 4
        assert counts[256 * KBIT] == 3

    def test_named_solutions(self):
        result = DesignSpaceExplorer().explore(requirements())
        named = Quantizer().named_solutions(result)
        names = {solution.name for solution in named}
        assert {
            "min-power",
            "min-area",
            "min-cost",
            "max-bandwidth",
            "min-latency",
            "balanced",
        } <= names
        # Every named pick comes from the explored pool.
        labels = {metrics.label for metrics in result.feasible}
        assert all(solution.metrics.label in labels for solution in named)

    def test_named_solutions_need_feasible(self):
        result = DesignSpaceExplorer().explore(
            requirements(sustained_bandwidth_bits_per_s=8e11)
        )
        with pytest.raises(InfeasibleError):
            Quantizer().named_solutions(result)


class TestAdvisor:
    def test_laptop_graphics_recommended(self):
        advice = Advisor().advise(
            requirements(
                capacity_bits=16 * MBIT,
                sustained_bandwidth_bits_per_s=8e9,
                portable=True,
                volume_per_year=10_000_000,
            )
        )
        assert advice.recommended
        assert advice.reasons

    def test_upgrade_path_veto(self):
        advice = Advisor(needs_upgrade_path=True).advise(requirements())
        assert advice.score == 0.0
        assert not advice.recommended
        assert any("upgrade path" in reason for reason in advice.reasons)

    def test_unknown_memory_veto(self):
        advice = Advisor(memory_known_at_design_time=False).advise(
            requirements()
        )
        assert advice.score == 0.0


class TestLogicMemoryTrade:
    def test_paper_feasibility_pairs(self):
        trade = LogicMemoryTrade(
            die_budget_mm2=QUARTER_MICRON_DIE_BUDGET_MM2
        )
        assert trade.max_memory_for_logic(500e3) == 128 * MBIT
        assert trade.max_memory_for_logic(1e6) == 64 * MBIT

    def test_inverse_query(self):
        trade = LogicMemoryTrade(
            die_budget_mm2=QUARTER_MICRON_DIE_BUDGET_MM2
        )
        gates = trade.max_logic_for_memory(128 * MBIT)
        assert gates == pytest.approx(500e3, rel=0.02)

    def test_frontier_monotone(self):
        trade = LogicMemoryTrade(die_budget_mm2=200.0)
        points = trade.frontier([1e5, 3e5, 6e5, 1e6, 1.5e6])
        memories = [point.memory_bits for point in points]
        assert memories == sorted(memories, reverse=True)

    def test_exchange_rate(self):
        trade = LogicMemoryTrade(die_budget_mm2=200.0)
        assert trade.exchange_rate_gates_per_mbit() == pytest.approx(8680.0)

    def test_memory_exceeding_die(self):
        trade = LogicMemoryTrade(die_budget_mm2=50.0)
        with pytest.raises(InfeasibleError):
            trade.max_logic_for_memory(128 * MBIT)

    def test_bad_budget(self):
        with pytest.raises(ConfigurationError):
            LogicMemoryTrade(die_budget_mm2=0.0)
