"""Tests for repro.dft.bist, test_cost, and flow (E9)."""

import pytest

from repro.dft.bist import BISTController
from repro.dft.flow import TestFlow
from repro.dft.march import MARCH_C_MINUS
from repro.dft.test_cost import (
    LOGIC_TESTER,
    MEMORY_TESTER,
    TestCostModel,
    TesterSpec,
)
from repro.errors import ConfigurationError
from repro.units import MBIT


class TestBISTController:
    def test_gate_count_scales_with_width(self):
        narrow = BISTController(internal_width_bits=64)
        wide = BISTController(internal_width_bits=512)
        assert wide.gate_count > narrow.gate_count

    def test_bist_is_small_logic(self):
        # "A small, synthesizable BIST controller": tens of kgates at
        # most, even at full width.
        assert BISTController(internal_width_bits=512).gate_count < 30e3

    def test_march_time_inverse_in_width(self):
        test = MARCH_C_MINUS
        narrow = BISTController(internal_width_bits=32)
        wide = BISTController(internal_width_bits=256)
        assert narrow.march_time_s(test, 16 * MBIT) == pytest.approx(
            8 * wide.march_time_s(test, 16 * MBIT)
        )

    def test_speedup_vs_external(self):
        bist = BISTController(internal_width_bits=256, clock_hz=143e6)
        speedup = bist.speedup_vs_external(16, 50e6)
        assert speedup == pytest.approx(256 * 143e6 / (16 * 50e6))
        assert speedup > 40

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            BISTController(internal_width_bits=0)


class TestTestCostModel:
    def test_bist_cuts_pattern_time(self):
        external = TestCostModel(tester=LOGIC_TESTER)
        with_bist = TestCostModel(
            tester=LOGIC_TESTER, bist=BISTController()
        )
        slow = external.march_time_s(MARCH_C_MINUS, 64 * MBIT)
        fast = with_bist.march_time_s(MARCH_C_MINUS, 64 * MBIT)
        assert fast < slow / 10

    def test_waiting_dominates_with_bist(self):
        # Parallelism saturates: with BIST the retention waits dominate,
        # which caps further gains (Section 6's structure).
        model = TestCostModel(tester=LOGIC_TESTER, bist=BISTController())
        assert model.waiting_fraction(MARCH_C_MINUS, 64 * MBIT) > 0.8

    def test_memory_tester_multi_site_cheaper_per_die(self):
        memory = TestCostModel(tester=MEMORY_TESTER)
        logic = TestCostModel(tester=LOGIC_TESTER)
        assert memory.cost_per_die(
            MARCH_C_MINUS, 16 * MBIT
        ) < logic.cost_per_die(MARCH_C_MINUS, 16 * MBIT)

    def test_bist_enables_logic_tester(self):
        # The paper's business-model point: with BIST, a logic tester
        # tests the memory at a fraction of the raw cost — bounded below
        # by the width-independent retention waits.
        bist_on_logic = TestCostModel(
            tester=LOGIC_TESTER, bist=BISTController()
        )
        raw_on_logic = TestCostModel(tester=LOGIC_TESTER)
        assert bist_on_logic.cost_per_die(
            MARCH_C_MINUS, 64 * MBIT
        ) < 0.4 * raw_on_logic.cost_per_die(MARCH_C_MINUS, 64 * MBIT)

    def test_cost_scales_with_memory(self):
        model = TestCostModel(tester=MEMORY_TESTER)
        small = model.cost_per_die(MARCH_C_MINUS, 4 * MBIT)
        large = model.cost_per_die(MARCH_C_MINUS, 64 * MBIT)
        assert large > small

    def test_tester_validation(self):
        with pytest.raises(ConfigurationError):
            TesterSpec(
                name="bad",
                cost_per_hour=0.0,
                interface_width_bits=16,
                rate_hz=50e6,
            )


class TestProductionFlow:
    def test_repair_improves_yield(self):
        flow = TestFlow(mean_faults_per_die=1.2)
        result = flow.run_lot(300, seed=7)
        assert result.yield_post_repair > result.yield_pre_repair
        assert result.repair_gain > 1.5

    def test_no_spares_no_repair(self):
        flow = TestFlow(spare_rows=0, spare_cols=0)
        result = flow.run_lot(200, seed=7)
        assert result.repaired == 0
        assert result.yield_post_repair == pytest.approx(
            result.yield_pre_repair
        )

    def test_more_spares_higher_yield(self):
        lean = TestFlow(spare_rows=1, spare_cols=1).run_lot(300, seed=9)
        rich = TestFlow(spare_rows=4, spare_cols=4).run_lot(300, seed=9)
        assert rich.yield_post_repair >= lean.yield_post_repair

    def test_waiving_retention_raises_yield(self):
        # Graphics-grade quality target (Section 6): retention-only
        # failures are acceptable -> higher effective yield.
        strict = TestFlow(waive_retention_only=False).run_lot(300, seed=11)
        relaxed = TestFlow(waive_retention_only=True).run_lot(300, seed=11)
        assert relaxed.yield_post_repair >= strict.yield_post_repair
        assert relaxed.waived > 0

    def test_categories_partition_lot(self):
        result = TestFlow().run_lot(100, seed=3)
        assert (
            result.perfect + result.repaired + result.scrap + result.waived
            == result.dies
        )

    def test_bad_lot(self):
        with pytest.raises(ConfigurationError):
            TestFlow().run_lot(0)
