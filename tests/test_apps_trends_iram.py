"""Tests for repro.apps.trends and repro.apps.iram (E7)."""

import pytest

from repro.apps.iram import (
    AMATModel,
    CacheLevel,
    DESKTOP_HIERARCHY,
    IRAMModel,
)
from repro.apps.trends import (
    DRAM_BANDWIDTH_TREND,
    DRAM_CORE_TREND,
    PROCESSOR_TREND,
    TrendModel,
    gap_growth_per_year,
    performance_gap,
)
from repro.errors import ConfigurationError


class TestTrends:
    def test_paper_growth_rates(self):
        assert PROCESSOR_TREND.annual_growth == pytest.approx(0.60)
        assert DRAM_CORE_TREND.annual_growth == pytest.approx(0.10)

    def test_gap_growth_145_per_year(self):
        assert gap_growth_per_year() == pytest.approx(1.4545, rel=1e-3)

    def test_gap_explodes_over_a_decade(self):
        # 1.4545^10 ~ 42x: the motivation for deep caches and IRAM.
        gap_1990 = performance_gap(1990)
        gap_1998 = performance_gap(1998)
        assert gap_1998 / gap_1990 == pytest.approx(
            gap_growth_per_year() ** 8, rel=1e-9
        )
        assert performance_gap(1990) / performance_gap(1980) > 40

    def test_two_orders_of_magnitude_bandwidth(self):
        # "peak device memory bandwidth has increased over the last
        # couple of years by two orders of magnitude"
        assert DRAM_BANDWIDTH_TREND.ratio(1998) >= 100

    def test_doubling_time(self):
        assert PROCESSOR_TREND.doubling_time_years() == pytest.approx(
            1.474, abs=0.01
        )
        assert DRAM_CORE_TREND.doubling_time_years() == pytest.approx(
            7.27, abs=0.05
        )

    def test_years_to_factor(self):
        years = PROCESSOR_TREND.years_to_factor(1.6)
        assert years == pytest.approx(1.0)

    def test_negative_growth_models_decline(self):
        access_time = TrendModel(
            name="tRAC", base_year=1990, base_value=80.0, annual_growth=-0.10
        )
        assert access_time.value(1991) == pytest.approx(72.0)

    def test_bad_base_value(self):
        with pytest.raises(ConfigurationError):
            TrendModel(name="x", base_year=1990, base_value=0.0,
                       annual_growth=0.1)


class TestAMAT:
    def test_single_level(self):
        model = AMATModel(
            levels=(CacheLevel(name="L1", hit_time_ns=2.0, miss_rate=0.1),),
            memory_latency_ns=100.0,
        )
        assert model.amat_ns() == pytest.approx(2.0 + 0.1 * 100.0)

    def test_two_levels(self):
        amat = DESKTOP_HIERARCHY.amat_ns()
        # 2 + 0.05*10 + 0.05*0.30*120 = 4.3 ns.
        assert amat == pytest.approx(4.3, abs=0.01)

    def test_memory_reference_fraction(self):
        assert DESKTOP_HIERARCHY.memory_reference_fraction() == (
            pytest.approx(0.015)
        )

    def test_bad_hierarchy(self):
        with pytest.raises(ConfigurationError):
            AMATModel(levels=(), memory_latency_ns=100.0)


class TestIRAM:
    def test_default_factors_in_paper_ranges(self):
        # "reduce the latency by a factor of 5-10, increase the
        # bandwidth by a factor of 50 to 100 and improve the energy
        # efficiency by a factor of 2 to 4"
        assert IRAMModel().within_paper_ranges()

    def test_out_of_range_detected(self):
        assert not IRAMModel(latency_factor=20.0).within_paper_ranges()

    def test_merged_memory_latency(self):
        iram = IRAMModel(latency_factor=8.0)
        merged = iram.merged_hierarchy(DESKTOP_HIERARCHY)
        assert merged.memory_latency_ns == pytest.approx(
            DESKTOP_HIERARCHY.memory_latency_ns / 8.0
        )

    def test_amat_speedup_diluted_by_cache_hits(self):
        # End-to-end speedup is far below the raw memory-latency factor
        # because caches absorb most references.
        iram = IRAMModel(latency_factor=8.0)
        speedup = iram.amat_speedup(DESKTOP_HIERARCHY)
        assert 1.0 < speedup < 8.0

    def test_memory_bound_workload_bigger_speedup(self):
        cache_friendly = DESKTOP_HIERARCHY
        memory_bound = AMATModel(
            levels=(
                CacheLevel(name="L1", hit_time_ns=2.0, miss_rate=0.4),
            ),
            memory_latency_ns=120.0,
        )
        iram = IRAMModel()
        assert iram.amat_speedup(memory_bound) > iram.amat_speedup(
            cache_friendly
        )

    def test_bandwidth_factor(self):
        iram = IRAMModel(bandwidth_factor=60.0)
        assert iram.bandwidth_bits_per_s(1e9) == pytest.approx(6e10)

    def test_energy_improvement_positive(self):
        assert IRAMModel().energy_improvement(DESKTOP_HIERARCHY) > 1.0

    def test_factors_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            IRAMModel(latency_factor=0.5)
