"""Tests for repro.controller.scheduler and page policies."""

import pytest

from repro.controller.page_policy import (
    AdaptivePagePolicy,
    ClosedPagePolicy,
    OpenPagePolicy,
)
from repro.controller.request import Request
from repro.controller.scheduler import FCFSScheduler, FRFCFSScheduler
from repro.dram.commands import Command, CommandType
from repro.dram.device import DRAMDevice
from repro.dram.organizations import AddressMapping, Organization
from repro.dram.timing import PC100_TIMING


def make_device():
    org = Organization(n_banks=4, n_rows=64, page_bits=2048, word_bits=16)
    return DRAMDevice(organization=org, timing=PC100_TIMING)


def decoded_request(rid, bank, row, column=0, cycle=0):
    device_org = Organization(
        n_banks=4, n_rows=64, page_bits=2048, word_bits=16
    )
    mapping = AddressMapping(device_org)
    request = Request(
        request_id=rid,
        client="c",
        address=0,
        is_read=True,
        created_cycle=cycle,
    )
    from repro.dram.organizations import DecodedAddress

    request.decoded = DecodedAddress(bank=bank, row=row, column=column)
    return request


class TestFCFS:
    def test_only_head_considered(self):
        device = make_device()
        window = [decoded_request(0, 0, 1), decoded_request(1, 1, 2)]
        assert FCFSScheduler().candidates(window, device, 0) == window[:1]

    def test_empty_window(self):
        assert FCFSScheduler().candidates([], make_device(), 0) == []


class TestFRFCFS:
    def test_row_hits_first(self):
        device = make_device()
        device.issue(
            Command(kind=CommandType.ACTIVATE, cycle=0, bank=2, row=7)
        )
        miss = decoded_request(0, 0, 1)
        hit = decoded_request(1, 2, 7)
        order = FRFCFSScheduler().candidates([miss, hit], device, 5)
        assert order[0] is hit

    def test_hits_ordered_by_age(self):
        device = make_device()
        device.issue(
            Command(kind=CommandType.ACTIVATE, cycle=0, bank=1, row=3)
        )
        device.issue(
            Command(kind=CommandType.ACTIVATE, cycle=2, bank=2, row=4)
        )
        older = decoded_request(0, 2, 4)
        younger = decoded_request(1, 1, 3)
        order = FRFCFSScheduler().candidates([older, younger], device, 5)
        assert [r.request_id for r in order[:2]] == [0, 1]

    def test_one_preparer_per_bank(self):
        device = make_device()
        first = decoded_request(0, 0, 1)
        second = decoded_request(1, 0, 2)  # same bank, younger
        third = decoded_request(2, 3, 5)
        order = FRFCFSScheduler().candidates(
            [first, second, third], device, 0
        )
        ids = [r.request_id for r in order]
        assert 0 in ids and 2 in ids
        assert 1 not in ids  # younger same-bank request may not prepare


class TestPagePolicies:
    def test_open_never_closes(self):
        assert not OpenPagePolicy().close_after_access(0, 1, [])

    def test_closed_always_closes(self):
        pending = [decoded_request(0, 0, 1)]
        assert ClosedPagePolicy().close_after_access(0, 1, pending)

    def test_adaptive_keeps_open_for_pending_hit(self):
        policy = AdaptivePagePolicy()
        pending = [decoded_request(0, 0, 1)]
        assert not policy.close_after_access(0, 1, pending)

    def test_adaptive_closes_without_customers(self):
        policy = AdaptivePagePolicy()
        pending = [decoded_request(0, 0, 9), decoded_request(1, 2, 1)]
        assert policy.close_after_access(0, 1, pending)

    def test_adaptive_ignores_undecoded(self):
        policy = AdaptivePagePolicy()
        raw = Request(
            request_id=0,
            client="c",
            address=0,
            is_read=True,
            created_cycle=0,
        )
        assert policy.close_after_access(0, 1, [raw])
