"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_power(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "discrete" in out and "embedded" in out

    def test_mpeg2_pal(self, capsys):
        assert main(["mpeg2"]) == 0
        out = capsys.readouterr().out
        assert "PAL" in out
        assert "fits 16 Mbit: True" in out

    def test_mpeg2_ntsc_reduced(self, capsys):
        assert main(["mpeg2", "--ntsc", "--reduced"]) == 0
        out = capsys.readouterr().out
        assert "NTSC" in out and "reduced-output" in out

    def test_explore(self, capsys):
        code = main(
            [
                "explore",
                "--capacity-mbit", "8",
                "--bandwidth-gbs", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quantized solutions" in out
        assert "balanced" in out

    def test_explore_infeasible(self, capsys):
        code = main(
            [
                "explore",
                "--capacity-mbit", "8",
                "--bandwidth-gbs", "100",
            ]
        )
        assert code == 1

    def test_feasibility(self, capsys):
        assert main(["feasibility"]) == 0
        out = capsys.readouterr().out
        assert "500k" in out
        assert "128 Mbit" in out

    def test_testcost(self, capsys):
        assert main(["testcost"]) == 0
        out = capsys.readouterr().out
        assert "BIST" in out

    def test_partition(self, capsys):
        assert main(["partition"]) == 0
        out = capsys.readouterr().out
        assert "frame stores" in out
        assert "edram" in out

    def test_partition_infeasible_budget(self, capsys):
        assert main(["partition", "--area-budget-mm2", "1"]) == 1
