"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_power(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "discrete" in out and "embedded" in out

    def test_mpeg2_pal(self, capsys):
        assert main(["mpeg2"]) == 0
        out = capsys.readouterr().out
        assert "PAL" in out
        assert "fits 16 Mbit: True" in out

    def test_mpeg2_ntsc_reduced(self, capsys):
        assert main(["mpeg2", "--ntsc", "--reduced"]) == 0
        out = capsys.readouterr().out
        assert "NTSC" in out and "reduced-output" in out

    def test_explore(self, capsys):
        code = main(
            [
                "explore",
                "--capacity-mbit", "8",
                "--bandwidth-gbs", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quantized solutions" in out
        assert "balanced" in out

    def test_explore_infeasible(self, capsys):
        code = main(
            [
                "explore",
                "--capacity-mbit", "8",
                "--bandwidth-gbs", "100",
            ]
        )
        assert code == 1

    def test_feasibility(self, capsys):
        assert main(["feasibility"]) == 0
        out = capsys.readouterr().out
        assert "500k" in out
        assert "128 Mbit" in out

    def test_testcost(self, capsys):
        assert main(["testcost"]) == 0
        out = capsys.readouterr().out
        assert "BIST" in out

    def test_partition(self, capsys):
        assert main(["partition"]) == 0
        out = capsys.readouterr().out
        assert "frame stores" in out
        assert "edram" in out

    def test_partition_infeasible_budget(self, capsys):
        assert main(["partition", "--area-budget-mm2", "1"]) == 1


class TestWorkersCommand:
    def test_status_requires_existing_queue(self, tmp_path, capsys):
        code = main(
            ["workers", "status", "--queue", str(tmp_path / "nope")]
        )
        assert code == 2
        assert "no work-queue directory" in capsys.readouterr().err

    def test_status_reports_queue_snapshot(self, tmp_path, capsys):
        import json

        from repro.core.executor import WorkQueue

        queue = WorkQueue(tmp_path / "q")
        queue.reset()
        queue.publish_chunk(0, [0], [0], None)
        code = main(["workers", "status", "--queue", str(tmp_path / "q")])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["pending"] == 1
        assert snapshot["completed"] == 0
        assert not snapshot["done"]

    def test_start_single_worker_exits_on_done_queue(
        self, tmp_path, capsys
    ):
        from repro.core.executor import WorkQueue

        queue = WorkQueue(tmp_path / "q")
        queue.reset()
        queue.mark_done("test")
        code = main(
            [
                "workers",
                "start",
                "--queue",
                str(tmp_path / "q"),
                "--max-idle-s",
                "0.2",
            ]
        )
        assert code == 0
        assert "0 chunk(s)" in capsys.readouterr().out

    def test_start_rejects_worker_id_with_multiple_workers(self):
        code = main(
            [
                "workers",
                "start",
                "--queue",
                "ignored",
                "--n",
                "2",
                "--worker-id",
                "w1",
            ]
        )
        assert code == 2


class TestInterrupt:
    """Ctrl-C during the long-running commands: one line, exit 130."""

    def _interrupt(self, argv, ready_line, timeout_s=20.0):
        import os
        import signal
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            start_new_session=True,  # isolate from pytest's signals
        )
        try:
            deadline = time.monotonic() + timeout_s
            banner = ""
            while time.monotonic() < deadline:
                line = proc.stdout.readline().decode()
                banner += line
                if ready_line in line:
                    break
            else:
                raise AssertionError(
                    f"never saw {ready_line!r} in {banner!r}"
                )
            proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=timeout_s)
            return proc.returncode, stderr.decode()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    def test_serve_sigint_exits_130_without_traceback(self):
        code, stderr = self._interrupt(
            ["serve", "--port", "0"], "listening on http://"
        )
        assert code == 130
        assert "repro: interrupted" in stderr
        assert "Traceback" not in stderr

    def test_workers_sigint_exits_130_without_traceback(self, tmp_path):
        from repro.core.executor import WorkQueue

        queue = WorkQueue(tmp_path / "q")
        queue.reset()  # empty, not done: workers idle until signalled
        code, stderr = self._interrupt(
            [
                "workers",
                "start",
                "--queue",
                str(tmp_path / "q"),
                "--n",
                "2",
                "--max-idle-s",
                "60",
            ],
            "starting 2 worker(s)",
        )
        assert code == 130
        assert "repro: interrupted" in stderr
        assert "Traceback" not in stderr
