"""Property tests: both Pareto engines agree on ties, duplicates, NaN.

The vectorized engine is only an optimization if it is *extensionally
equal* to the reference loop — same frontier, same order, same handling
of the degenerate inputs real metric matrices contain: exact ties,
duplicated vectors, and NaN metrics from infeasible configurations.
The fuzz generator is biased toward exactly those degeneracies (a tiny
value palette plus injected NaNs), and the handcrafted cases pin the
documented semantics one by one.
"""

import math
import random

import pytest

from repro.core.pareto import dominates, pareto_frontier
from repro.verify.fuzz import check_pareto_engines, gen_pareto_case

NAN = float("nan")


def frontiers(vectors):
    """The same frontier from every engine, asserted equal."""
    items = list(range(len(vectors)))

    def objectives(index):
        return vectors[index]

    python = pareto_frontier(items, objectives, engine="python")
    numpy_ = pareto_frontier(items, objectives, engine="numpy")
    auto = pareto_frontier(items, objectives, engine="auto")
    assert python == numpy_ == auto, (vectors, python, numpy_, auto)
    return python


class TestEngineAgreementProperty:
    @pytest.mark.parametrize("seed", range(60))
    def test_generated_tie_heavy_matrices(self, seed):
        params = gen_pareto_case(random.Random(f"pareto:{seed}"))
        assert check_pareto_engines(params) == []

    @pytest.mark.parametrize("seed", range(10))
    def test_continuous_matrices(self, seed):
        # No ties at all — the opposite regime from the palette cases.
        rng = random.Random(f"pareto-cont:{seed}")
        vectors = [
            tuple(rng.random() for _ in range(3)) for _ in range(40)
        ]
        frontier = frontiers(vectors)
        assert frontier  # some vector is always non-dominated


class TestTieSemantics:
    def test_equal_vectors_never_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_duplicates_keep_first_occurrence_only(self):
        vectors = [(1.0, 2.0), (0.0, 5.0), (1.0, 2.0), (1.0, 2.0)]
        assert frontiers(vectors) == [0, 1]

    def test_tied_in_one_dimension_both_survive(self):
        # Neither dominates: each is strictly better somewhere.
        vectors = [(1.0, 5.0), (1.0, 4.0), (2.0, 4.0)]
        # (1,4) dominates both neighbours in this palette... check:
        # (1,4) vs (1,5): no worse everywhere, better in dim 1 -> 1
        # dominates 0; (1,4) vs (2,4): dominates 2 as well.
        assert frontiers(vectors) == [1]

    def test_single_objective_minimum_wins_with_ties(self):
        vectors = [(3.0,), (1.0,), (1.0,), (2.0,)]
        assert frontiers(vectors) == [1]


class TestNaNSemantics:
    def test_nan_never_dominates_and_is_never_dominated(self):
        assert not dominates((NAN, 0.0), (1.0, 1.0))
        assert not dominates((1.0, 1.0), (NAN, 0.0))
        assert not dominates((NAN,), (NAN,))

    def test_nan_vector_always_lands_on_frontier(self):
        vectors = [(0.0, 0.0), (NAN, 9.0), (5.0, 5.0)]
        frontier = frontiers(vectors)
        assert 0 in frontier  # the true optimum
        assert 1 in frontier  # incomparable, so kept
        assert 2 not in frontier  # dominated by (0, 0)

    def test_all_nan_matrix_keeps_everything(self):
        vectors = [(NAN, NAN), (NAN, NAN), (NAN, NAN)]
        # NaN tuples are identical objects value-wise but NaN != NaN, so
        # the seen-set (equality-based) must NOT merge them; engines
        # just have to agree, whatever the membership test does.
        assert frontiers(vectors) == frontiers(vectors)

    def test_partial_nan_still_orders_finite_dimensions(self):
        vectors = [(1.0, NAN), (2.0, NAN)]
        # dim 1 comparisons are all false -> neither strictly better
        # everywhere-comparable; both survive.
        assert frontiers(vectors) == [0, 1]
        assert all(
            math.isnan(vectors[i][1]) for i in frontiers(vectors)
        )
