"""Fuzz harness: tier-1 smoke, injected-bug detection, shrinking, CLI.

Small budgets here — deep fuzzing lives in ``tests/fuzz/`` behind the
``fuzz`` marker.  What tier-1 pins is the harness machinery itself:
every registered property passes on generated inputs, a deliberately
mutated bank model is *caught* (and the failure shrinks to a minimal,
seed-free JSON repro that fails under the bug and passes without it),
and the ``python -m repro.verify`` CLI round-trips all of it.
"""

import json

import pytest

from repro.dram.bank import Bank
from repro.dram.commands import CommandType
from repro.errors import ConfigurationError
from repro.verify.cli import main as verify_main
from repro.verify.fuzz import (
    PROPERTIES,
    PROPERTY_BY_NAME,
    _scalar_reductions,
    _shrink_candidates,
    evaluate_case,
    run_fuzz,
    shrink_case,
)


@pytest.fixture
def trcd_bug(monkeypatch):
    """Column commands accepted one cycle before tRCD has elapsed."""
    original = Bank.can_issue

    def relaxed(self, command):
        if command.kind in (CommandType.READ, CommandType.WRITE):
            self._settle(command.cycle)
            return (
                self._open_row is not None
                and command.cycle >= self._ready_column - 1
            )
        return original(self, command)

    monkeypatch.setattr(Bank, "can_issue", relaxed)


class TestRunFuzz:
    def test_small_budget_passes_every_property(self):
        report = run_fuzz(seed=0, budget=3 * len(PROPERTIES))
        assert report.ok, "\n".join(
            failure.describe() for failure in report.failures
        )
        assert report.cases_run == 3 * len(PROPERTIES)
        assert set(report.cases_by_property) == set(PROPERTY_BY_NAME)
        assert all(
            count == 3 for count in report.cases_by_property.values()
        )
        assert "all passed" in report.summary()

    def test_cases_are_json_able_and_deterministic(self):
        import random

        for prop in PROPERTIES:
            first = prop.generate(random.Random("det:1"))
            second = prop.generate(random.Random("det:1"))
            assert first == second
            json.dumps(first)  # must be repro-able as a CLI --case

    def test_unknown_property_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fuzz(seed=0, budget=1, properties=["no_such_property"])

    def test_zero_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fuzz(seed=0, budget=0)


class TestInjectedBugDetection:
    def test_mutation_is_caught_and_shrunk(self, trcd_bug):
        report = run_fuzz(
            seed=0,
            budget=6,
            properties=["sim_invariants"],
            max_shrink_attempts=80,
        )
        assert not report.ok, "the tRCD mutation escaped the fuzzer"
        failure = report.failures[0]
        assert failure.check == "sim_invariants"
        assert any("col.t_rcd" in m for m in failure.messages)
        # Shrinking produced a minimal case that still fails, and the
        # repro command is self-contained (JSON params, no RNG state).
        assert failure.shrunk_params is not None
        assert failure.shrunk_messages
        assert len(failure.case_json()) < len(
            json.dumps(failure.params, sort_keys=True)
        )
        assert "--property sim_invariants" in failure.repro_command()
        assert failure.case_json() in failure.repro_command()
        # The shrunk case fails *under the bug*...
        assert evaluate_case("sim_invariants", failure.shrunk_params)

    def test_shrunk_repro_passes_without_the_bug(self):
        # Patch scope is explicit here: fuzz under the mutation, then
        # replay the shrunk case on the restored model.  A repro that
        # failed either way would indict the generator, not the bug.
        original = Bank.can_issue

        def relaxed(self, command):
            if command.kind in (CommandType.READ, CommandType.WRITE):
                self._settle(command.cycle)
                return (
                    self._open_row is not None
                    and command.cycle >= self._ready_column - 1
                )
            return original(self, command)

        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(Bank, "can_issue", relaxed)
            report = run_fuzz(
                seed=0,
                budget=6,
                properties=["sim_invariants"],
                max_shrink_attempts=80,
            )
            failure = report.failures[0]
            shrunk = json.loads(failure.case_json())
            assert evaluate_case("sim_invariants", shrunk)
        assert Bank.can_issue is original
        assert evaluate_case("sim_invariants", shrunk) == []


class TestShrinker:
    def test_int_reductions_shrink_toward_one(self):
        assert set(_scalar_reductions(10)) == {1, 5, 9}
        assert set(_scalar_reductions(1)) == {0}
        assert list(_scalar_reductions(0)) == []

    def test_bools_are_not_treated_as_ints(self):
        assert list(_scalar_reductions(True)) == []
        assert list(_scalar_reductions(False)) == []

    def test_float_reductions_terminate(self):
        candidates = set(_scalar_reductions(0.73718))
        assert 1.0 in candidates and 0.5 in candidates
        assert 0.73718 not in candidates

    def test_candidates_try_list_removal_first(self):
        params = {"clients": [1, 2], "n": 4}
        candidates = list(_shrink_candidates(params))
        assert candidates[0] == {"clients": [2], "n": 4}
        assert candidates[1] == {"clients": [1], "n": 4}
        assert {"clients": [1, 2], "n": 1} in candidates

    def test_shrink_preserves_failure_and_terminates(self, trcd_bug):
        report = run_fuzz(
            seed=0,
            budget=6,
            properties=["sim_invariants"],
            shrink=False,
        )
        failure = report.failures[0]
        assert failure.shrunk_params is None  # shrink=False honored
        shrunk = shrink_case(
            "sim_invariants", failure.params, max_attempts=60
        )
        assert evaluate_case("sim_invariants", shrunk)
        assert len(json.dumps(shrunk)) <= len(json.dumps(failure.params))


class TestVerifyCLI:
    def test_fuzz_subcommand_clean_run(self, capsys):
        code = verify_main(["fuzz", "--seed", "0", "--budget", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all passed" in out

    def test_properties_subcommand_lists_all(self, capsys):
        code = verify_main(["properties"])
        out = capsys.readouterr().out
        assert code == 0
        for prop in PROPERTIES:
            assert prop.name in out

    def test_case_replay_passes_on_healthy_code(self, capsys):
        import random

        params = PROPERTY_BY_NAME["mapping_roundtrip"].generate(
            random.Random("cli:case")
        )
        code = verify_main(
            [
                "fuzz",
                "--property",
                "mapping_roundtrip",
                "--case",
                json.dumps(params),
            ]
        )
        assert code == 0

    def test_case_replay_fails_under_the_bug(self, trcd_bug, capsys):
        report = run_fuzz(
            seed=0, budget=6, properties=["sim_invariants"],
            max_shrink_attempts=80,
        )
        failure = report.failures[0]
        code = verify_main(
            [
                "fuzz",
                "--property",
                failure.check,
                "--case",
                failure.case_json(),
            ]
        )
        assert code == 1
        assert "col.t_rcd" in capsys.readouterr().out

    def test_bad_case_json_is_a_usage_error(self, capsys):
        code = verify_main(
            ["fuzz", "--property", "pacing_plan", "--case", "{not json"]
        )
        assert code == 2

    def test_diff_subcommand(self, capsys):
        code = verify_main(["diff", "--seed", "3", "--cases", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "identical" in out

    def test_repro_cli_forwards(self, capsys):
        from repro.cli import main as repro_main

        code = repro_main(
            ["verify", "fuzz", "--seed", "1", "--budget", "6"]
        )
        assert code == 0
        assert "all passed" in capsys.readouterr().out
