"""Tests for repro.core.partition: SRAM/DRAM/off-chip partitioning."""

import pytest

from repro.core.partition import (
    DEFAULT_PROFILES,
    EDRAM_PROFILE,
    MemoryBlock,
    MemoryTech,
    OFF_CHIP_PROFILE,
    Partitioner,
    SRAM_PROFILE,
    TechProfile,
)
from repro.errors import ConfigurationError, InfeasibleError
from repro.units import KBIT, MBIT


def block(name, mbit, bandwidth_gbit=0.5, latency_ns=None):
    return MemoryBlock(
        name=name,
        size_bits=int(mbit * MBIT),
        bandwidth_bits_per_s=bandwidth_gbit * 1e9,
        max_latency_ns=latency_ns,
    )


class TestProfiles:
    def test_sram_much_larger_than_edram(self):
        ratio = SRAM_PROFILE.area_mm2_per_mbit / EDRAM_PROFILE.area_mm2_per_mbit
        assert 10 < ratio < 20

    def test_off_chip_costs_no_area_but_most_energy(self):
        assert OFF_CHIP_PROFILE.area_mm2_per_mbit == 0.0
        assert OFF_CHIP_PROFILE.energy_pj_per_bit > 10 * (
            EDRAM_PROFILE.energy_pj_per_bit
        )

    def test_latency_ordering(self):
        assert (
            SRAM_PROFILE.latency_ns
            < EDRAM_PROFILE.latency_ns
            < OFF_CHIP_PROFILE.latency_ns
        )

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            TechProfile(
                tech=MemoryTech.ON_CHIP_SRAM,
                area_mm2_per_mbit=-1.0,
                latency_ns=5.0,
                max_bandwidth_bits_per_s=1e9,
                energy_pj_per_bit=1.0,
                cost_per_mbit=1.0,
            )


class TestConstraintDrivenPlacement:
    def test_tight_latency_forces_sram(self):
        partitioner = Partitioner()
        plan = partitioner.partition(
            [block("line buffer", 0.05, bandwidth_gbit=2.0, latency_ns=10.0)]
        )
        assert plan.tech_of("line buffer") is MemoryTech.ON_CHIP_SRAM

    def test_high_bandwidth_forces_on_chip(self):
        partitioner = Partitioner()
        plan = partitioner.partition(
            [block("frame store", 5.0, bandwidth_gbit=4.0)]
        )
        assert plan.tech_of("frame store") is MemoryTech.ON_CHIP_EDRAM

    def test_cold_bulk_goes_off_chip(self):
        # Huge, cold, latency-tolerant storage is cheapest off-chip
        # (when it does not fit the on-chip budget anyway).
        partitioner = Partitioner(area_budget_mm2=20.0)
        plan = partitioner.partition(
            [block("program store", 64.0, bandwidth_gbit=0.05)]
        )
        assert plan.tech_of("program store") is MemoryTech.OFF_CHIP_DRAM

    def test_impossible_block_raises(self):
        partitioner = Partitioner()
        with pytest.raises(InfeasibleError):
            partitioner.partition(
                [block("impossible", 1.0, bandwidth_gbit=100.0,
                       latency_ns=1.0)]
            )


class TestMpeg2Partition:
    """The decoder's blocks partition the way the paper describes."""

    def _blocks(self, output_latency_ns=60.0):
        return [
            block("input buffer", 1.75, bandwidth_gbit=0.03),
            block("frame stores", 9.5, bandwidth_gbit=0.45,
                  latency_ns=60.0),
            block("output buffer", 4.75, bandwidth_gbit=0.25,
                  latency_ns=output_latency_ns),
            block("mb line buffer", 0.04, bandwidth_gbit=1.5,
                  latency_ns=12.0),
        ]

    def test_partition_structure(self):
        plan = Partitioner(area_budget_mm2=40.0).partition(self._blocks())
        assert plan.tech_of("mb line buffer") is MemoryTech.ON_CHIP_SRAM
        assert plan.tech_of("frame stores") is MemoryTech.ON_CHIP_EDRAM
        assert plan.tech_of("output buffer") is MemoryTech.ON_CHIP_EDRAM
        assert plan.area_mm2 <= 40.0

    def test_on_chip_fraction(self):
        plan = Partitioner(area_budget_mm2=40.0).partition(self._blocks())
        assert plan.on_chip_fraction() > 0.85

    def test_tiny_budget_spills_to_off_chip(self):
        # With the output buffer latency-tolerant (display scan-out can
        # be buffered), a 12 mm^2 budget fits only the latency-bound
        # blocks (frame stores + SRAM line buffer, ~10.8 mm^2): the
        # output buffer must spill off-chip.
        generous = Partitioner(area_budget_mm2=40.0).partition(
            self._blocks()
        )
        tight = Partitioner(area_budget_mm2=12.0).partition(
            self._blocks(output_latency_ns=None)
        )
        off_chip_tight = sum(
            1
            for tech in tight.assignment.values()
            if tech is MemoryTech.OFF_CHIP_DRAM
        )
        off_chip_generous = sum(
            1
            for tech in generous.assignment.values()
            if tech is MemoryTech.OFF_CHIP_DRAM
        )
        assert off_chip_tight > off_chip_generous


class TestObjective:
    def test_power_weight_shifts_hot_blocks_on_chip(self):
        hot = block("hot", 8.0, bandwidth_gbit=0.9)
        cheap = Partitioner(power_weight=0.0).partition([hot])
        power_aware = Partitioner(power_weight=50.0).partition([hot])
        # With power free, commodity DRAM wins on cost; pricing power
        # pulls the block on-chip.
        assert cheap.tech_of("hot") is MemoryTech.OFF_CHIP_DRAM
        assert power_aware.tech_of("hot") is MemoryTech.ON_CHIP_EDRAM
        assert power_aware.power_w < cheap.power_w

    def test_greedy_matches_exhaustive_on_small_inputs(self):
        blocks = [
            block("a", 2.0, bandwidth_gbit=0.8),
            block("b", 6.0, bandwidth_gbit=0.2),
            block("c", 0.1, bandwidth_gbit=2.5, latency_ns=10.0),
        ]
        exact = Partitioner(exhaustive_limit=10).partition(blocks)
        greedy = Partitioner(exhaustive_limit=0).partition(blocks)
        # Greedy must be feasible and no worse than 20% off on cost.
        assert greedy.area_mm2 <= Partitioner().area_budget_mm2
        assert greedy.unit_cost + 5.0 * greedy.power_w <= 1.2 * (
            exact.unit_cost + 5.0 * exact.power_w
        )


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Partitioner().partition([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Partitioner().partition([block("x", 1.0), block("x", 2.0)])

    def test_unknown_block_query(self):
        plan = Partitioner().partition([block("a", 1.0)])
        with pytest.raises(ConfigurationError):
            plan.tech_of("missing")
