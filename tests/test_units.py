"""Tests for repro.units: conversions and the paper's binary-Mbit rule."""

import pytest

from repro import units
from repro.units import (
    MBIT,
    KBIT,
    GBIT,
    ceil_div,
    fill_frequency,
    is_power_of_two,
    log2_int,
    mbit,
)


class TestBinaryUnits:
    def test_mbit_is_binary(self):
        assert MBIT == 2**20

    def test_kbit_gbit(self):
        assert KBIT == 2**10
        assert GBIT == 2**30

    def test_pal_frame_matches_paper(self):
        # 720 x 576 x 12 bpp = the paper's "4.75 Mbit"
        assert mbit(720 * 576 * 12) == pytest.approx(4.75, abs=0.01)

    def test_ntsc_frame_matches_paper(self):
        assert mbit(720 * 480 * 12) == pytest.approx(3.96, abs=0.01)

    def test_byte_units(self):
        assert units.MBYTE == 8 * MBIT
        assert units.mbyte(units.MBYTE) == 1.0


class TestRateConversions:
    def test_gbyte_per_s(self):
        assert units.gbyte_per_s(8e9) == pytest.approx(1.0)

    def test_gbit_per_s(self):
        assert units.gbit_per_s(2e9) == pytest.approx(2.0)

    def test_mhz(self):
        assert units.mhz(143e6) == pytest.approx(143.0)

    def test_ns(self):
        assert units.ns(7e-9) == pytest.approx(7.0)


class TestFillFrequency:
    def test_paper_example_edram(self):
        # 4-Mbit eDRAM with a 256-bit interface at 143 MHz.
        bandwidth = 256 * 143e6
        ff = fill_frequency(bandwidth, 4 * MBIT)
        assert ff == pytest.approx(8726.8, rel=1e-3)

    def test_ratio_vs_discrete(self):
        # Same bandwidth from a 64-Mbit discrete system: 16x lower fill
        # frequency, purely from the granularity.
        bandwidth = 256 * 100e6
        embedded = fill_frequency(bandwidth, 4 * MBIT)
        discrete = fill_frequency(bandwidth, 64 * MBIT)
        assert embedded / discrete == pytest.approx(16.0)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            fill_frequency(1e9, 0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            fill_frequency(1e9, -1)


class TestIntegerHelpers:
    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 1 << 30])
    def test_powers_of_two(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 1023])
    def test_non_powers_of_two(self, value):
        assert not is_power_of_two(value)

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(1024) == 10

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_int(12)

    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0

    def test_ceil_div_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
