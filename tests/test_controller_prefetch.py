"""Tests for repro.controller.prefetch: the stream prefetcher."""

import pytest

from repro.controller import MemoryController, PrefetchingMemoryController
from repro.dram import AddressMapping, EDRAMMacro, MappingScheme
from repro.errors import ConfigurationError
from repro.sim import MemorySystemSimulator, SimulationConfig
from repro.traffic import MemoryClient, RandomPattern, SequentialPattern
from repro.units import MBIT


def run(controller_cls, clients_spec, cycles=8000, **controller_kwargs):
    macro = EDRAMMacro.build(
        size_bits=4 * MBIT, width=64, banks=4, page_bits=2048
    )
    device = macro.device()
    controller = controller_cls(
        device=device,
        mapping=AddressMapping(
            device.organization, MappingScheme.ROW_BANK_COL
        ),
        **controller_kwargs,
    )
    words = device.organization.total_words
    clients = []
    for name, kind, rate, seed in clients_spec:
        if kind == "stream":
            pattern = SequentialPattern(base=0, length=words)
        else:
            pattern = RandomPattern(base=0, length=words, seed=seed)
        clients.append(
            MemoryClient(name=name, pattern=pattern, rate=rate, seed=seed)
        )
    simulator = MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(cycles=cycles, warmup_cycles=500),
    )
    return controller, simulator.run()


STREAM_ONLY = [("s", "stream", 0.15, 1)]
MIXED = [("s", "stream", 0.1, 1), ("r", "random", 0.1, 2)]


class TestPrefetchWins:
    def test_stream_latency_improves(self):
        _, baseline = run(MemoryController, STREAM_ONLY)
        _, prefetched = run(PrefetchingMemoryController, STREAM_ONLY)
        assert prefetched.latency.mean < baseline.latency.mean

    def test_high_accuracy_on_pure_stream(self):
        controller, _ = run(PrefetchingMemoryController, STREAM_ONLY)
        assert controller.prefetch_issued > 100
        assert controller.prefetch_accuracy() > 0.9

    def test_stream_client_wins_in_mixed_traffic(self):
        _, baseline = run(MemoryController, MIXED)
        _, prefetched = run(PrefetchingMemoryController, MIXED)
        assert (
            prefetched.latency_by_client["s"].mean
            < baseline.latency_by_client["s"].mean
        )

    def test_useful_bandwidth_not_inflated(self):
        # Prefetch traffic must not count as delivered client bandwidth.
        _, baseline = run(MemoryController, STREAM_ONLY)
        _, prefetched = run(PrefetchingMemoryController, STREAM_ONLY)
        assert prefetched.sustained_bandwidth_bits_per_s == pytest.approx(
            baseline.sustained_bandwidth_bits_per_s, rel=0.05
        )


class TestPrefetchCosts:
    def test_no_prefetch_on_random_traffic(self):
        controller, _ = run(
            PrefetchingMemoryController, [("r", "random", 0.2, 3)]
        )
        # Random addresses almost never form back-to-back bursts.
        assert controller.prefetch_issued < 50

    def test_requests_conserved(self):
        controller, result = run(PrefetchingMemoryController, MIXED)
        completed_clients = {
            request.client for request in controller.completed
        }
        assert "__prefetch__" not in completed_clients

    def test_prefetch_depth_bounded_by_buffer(self):
        controller, _ = run(
            PrefetchingMemoryController,
            STREAM_ONLY,
            prefetch_depth=4,
            prefetch_buffer_capacity=4,
        )
        assert len(controller._ready) <= 4


class TestValidation:
    def test_bad_depth(self):
        macro = EDRAMMacro.build(size_bits=4 * MBIT, width=64)
        device = macro.device()
        with pytest.raises(ConfigurationError):
            PrefetchingMemoryController(
                device=device,
                mapping=AddressMapping(device.organization),
                prefetch_depth=0,
            )

    def test_bad_buffer(self):
        macro = EDRAMMacro.build(size_bits=4 * MBIT, width=64)
        device = macro.device()
        with pytest.raises(ConfigurationError):
            PrefetchingMemoryController(
                device=device,
                mapping=AddressMapping(device.organization),
                prefetch_buffer_capacity=0,
            )
