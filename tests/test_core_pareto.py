"""Tests for repro.core.pareto."""

import pytest

from repro.core.pareto import dominates, pareto_frontier
from repro.errors import ConfigurationError


class TestDominates:
    def test_strict_domination(self):
        assert dominates((1, 1), (2, 2))

    def test_partial_improvement(self):
        assert dominates((1, 2), (2, 2))

    def test_equal_does_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_tradeoff_no_domination(self):
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (1, 3))

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            dominates((1,), (1, 2))

    def test_empty_vectors(self):
        with pytest.raises(ConfigurationError):
            dominates((), ())


class TestParetoFrontier:
    def test_simple_frontier(self):
        points = [(1, 5), (2, 3), (3, 4), (4, 1), (5, 5)]
        frontier = pareto_frontier(points, lambda p: p)
        assert set(frontier) == {(1, 5), (2, 3), (4, 1)}

    def test_single_point(self):
        assert pareto_frontier([(3, 3)], lambda p: p) == [(3, 3)]

    def test_all_on_frontier(self):
        points = [(1, 4), (2, 3), (3, 2), (4, 1)]
        assert pareto_frontier(points, lambda p: p) == points

    def test_duplicates_kept_once(self):
        points = [(1, 1), (1, 1), (2, 2)]
        assert pareto_frontier(points, lambda p: p) == [(1, 1)]

    def test_frontier_members_not_dominated(self):
        import itertools

        points = [(i % 7, (i * 3) % 11, (i * 5) % 13) for i in range(60)]
        frontier = pareto_frontier(points, lambda p: p)
        for a, b in itertools.permutations(frontier, 2):
            assert not dominates(a, b)

    def test_non_frontier_members_dominated(self):
        points = [(i % 7, (i * 3) % 11) for i in range(40)]
        frontier = set(pareto_frontier(points, lambda p: p))
        for point in points:
            if point not in frontier:
                assert any(dominates(f, point) for f in frontier)

    def test_empty_input(self):
        assert pareto_frontier([], lambda p: p) == []

    def test_key_function_used(self):
        items = ["aa", "b", "ccc"]
        frontier = pareto_frontier(items, lambda s: (len(s),))
        assert frontier == ["b"]
