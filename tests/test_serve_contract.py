"""Contract tests for the exploration service's wire protocol.

The golden fixtures in ``tests/data/serve/contract_goldens.json`` pin
the exact request→response mapping — envelopes, error codes, messages,
fingerprints — for the submit/status/result endpoints plus every
malformed-request path.  A change that alters any byte of the contract
must come with a regenerated golden file and a schema-version bump
when it breaks compatibility.

Everything here drives :func:`repro.serve.handlers.route` through the
in-process client — the same dispatch the socket server uses — except
the transport-level cases (malformed JSON bodies, SSE) which need a
real socket.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.serve import SCHEMA_VERSION
from repro.serve.protocol import RequestError, parse_job
from tests.serve_helpers import (
    CONTRACT_JOB,
    GOLDENS_PATH,
    contract_env,
    gated_env,
    open_gate,
    reset_gate,
    scrub,
)


def load_goldens() -> list:
    with open(GOLDENS_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestGoldens:
    def test_scenario_matches_goldens(self):
        """Replay the full golden scenario against a fresh service."""
        goldens = load_goldens()
        with contract_env() as (service, client):
            for step in goldens:
                request = step["request"]
                status, response = client.request(
                    request["method"],
                    request["path"],
                    request.get("body"),
                )
                assert status == step["status"], step["name"]
                assert scrub(response, step["volatile"]) == step[
                    "response"
                ], step["name"]

    def test_every_response_carries_schema_version(self):
        goldens = load_goldens()
        assert goldens, "golden file is empty"
        for step in goldens:
            assert step["response"]["schema_version"] == SCHEMA_VERSION

    def test_error_paths_cover_every_4xx_code(self):
        codes = {
            step["response"]["error"]["code"]
            for step in load_goldens()
            if not step["response"].get("ok")
        }
        assert {
            "bad_request",
            "unknown_workload",
            "too_large",
            "not_found",
            "method_not_allowed",
        } <= codes


class TestEndpoints:
    def test_report_endpoint_renders_job_ledger(self, contract_service):
        service, client = contract_service
        submitted = client.submit(CONTRACT_JOB)
        client.wait(submitted["job_id"])
        report = client.report(submitted["job_id"])
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["status"] == "done"
        assert report["markdown"].startswith("# Run report")
        assert "sweep" in report["markdown"]

    def test_events_endpoint_returns_full_stream(self, contract_service):
        service, client = contract_service
        submitted = client.submit(CONTRACT_JOB)
        client.wait(submitted["job_id"])
        status, payload = client.request(
            "GET", f"/v1/jobs/{submitted['job_id']}/events"
        )
        assert status == 200
        kinds = [event["kind"] for event in payload["events"]]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "progress" in kinds
        assert payload["finished"] is True

    def test_result_before_completion_is_409(self):
        with gated_env() as (service, client):
            reset_gate("contract")
            submitted = client.submit(
                {
                    "kind": "sweep",
                    "workload": "t_gated",
                    "axes": {"x": [1], "gate": ["contract"]},
                }
            )
            status, payload = client.request(
                "GET", f"/v1/jobs/{submitted['job_id']}/result"
            )
            assert status == 409
            assert payload["error"]["code"] == "not_ready"
            open_gate("contract")
            client.wait(submitted["job_id"])

    def test_failed_job_reports_evaluation_error(self, contract_service):
        service, client = contract_service
        submitted = client.submit(
            {
                "kind": "sweep",
                "workload": "t_contract",
                "axes": {"x": [-1]},
            }
        )
        final = client.wait(submitted["job_id"])
        assert final["status"] == "failed"
        assert final["error"]["code"] == "evaluation_failed"
        assert "x must be >= 0" in final["error"]["message"]
        status, payload = client.request(
            "GET", f"/v1/jobs/{submitted['job_id']}/result"
        )
        assert status == 500
        assert payload["error"]["code"] == "evaluation_failed"

    def test_skip_errors_quarantines_instead(self, contract_service):
        service, client = contract_service
        submitted = client.submit(
            {
                "kind": "sweep",
                "workload": "t_contract",
                "axes": {"x": [-1, 1]},
                "skip_errors": True,
            }
        )
        final = client.wait(submitted["job_id"])
        assert final["status"] == "done"
        result = client.result(submitted["job_id"])["result"]
        assert result["n_ok"] == 1
        assert result["n_failed"] == 1
        assert "x must be >= 0" in result["failures"][0]["error"]


class TestTransport:
    """Socket-level cases the in-process client cannot express."""

    def test_malformed_json_body_is_400(self):
        from repro.serve.testing import running_server

        with running_server() as (server, client):
            connection = http.client.HTTPConnection(
                client.host, client.port, timeout=10
            )
            try:
                connection.request(
                    "POST",
                    "/v1/jobs",
                    body=b"{not json",
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
            finally:
                connection.close()
            assert response.status == 400
            assert payload["error"]["code"] == "bad_json"
            assert payload["schema_version"] == SCHEMA_VERSION

    def test_missing_body_on_submit_is_400(self):
        from repro.serve.testing import running_server

        with running_server() as (server, client):
            status, payload = client.request("POST", "/v1/jobs")
            assert status == 400
            assert payload["ok"] is False


class TestParseJob:
    def test_parse_is_strict_about_scalar_axis_values(self):
        with contract_env():
            with pytest.raises(RequestError, match="scalar"):
                parse_job(
                    {
                        "kind": "sweep",
                        "workload": "t_contract",
                        "axes": {"x": [[1, 2]]},
                    }
                )

    def test_parse_rejects_non_object_payloads(self):
        for payload in (None, [], "job", 7):
            with pytest.raises(RequestError):
                parse_job(payload)

    def test_explore_preset_expands_to_mpeg2(self):
        spec = parse_job({"kind": "explore", "requirements": "mpeg2"})
        assert spec.requirements_dict["name"] == "MPEG2 decoder"
        assert spec.to_requirements().max_latency_ns == 400.0

    def test_cli_client_submit_wait_round_trip(self, capsys):
        """`repro client submit --wait` against a live server."""
        from repro.serve.cli import client_main
        from repro.serve.testing import running_server

        job = {
            "kind": "sweep",
            "workload": "edram_tradeoff",
            "axes": {"width": [16, 32]},
        }
        with running_server() as (server, client):
            url = f"http://{client.host}:{client.port}"
            exit_code = client_main(
                [
                    "--url",
                    url,
                    "submit",
                    "--job",
                    json.dumps(job),
                    "--wait",
                ]
            )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["result"]["n_ok"] == 2

    def test_root_cli_forwards_client_with_leading_url(self, capsys):
        """`repro client --url ... healthz` — the root CLI must forward
        a leading option verbatim (argparse REMAINDER alone rejects
        it before the remainder positional can capture it)."""
        from repro.cli import main as repro_main
        from repro.serve.testing import running_server

        with running_server() as (server, client):
            url = f"http://{client.host}:{client.port}"
            exit_code = repro_main(["client", "--url", url, "healthz"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "healthy"
