"""Tests for repro.dft.redundancy: spare allocation."""

import pytest

from repro.dft.redundancy import allocate_spares
from repro.errors import RepairError


class TestBasicAllocation:
    def test_no_faults_no_spares_needed(self):
        plan = allocate_spares(set(), 2, 2)
        assert plan.repaired
        assert plan.spares_used == 0

    def test_single_fault_one_spare(self):
        plan = allocate_spares({(3, 5)}, 1, 0)
        assert plan.repaired
        assert plan.spares_used == 1
        assert plan.covers((3, 5))

    def test_no_spares_unrepairable(self):
        plan = allocate_spares({(3, 5)}, 0, 0)
        assert not plan.repaired
        assert (3, 5) in plan.uncovered

    def test_coverage_invariant(self):
        faults = {(0, 0), (1, 3), (2, 3), (5, 5)}
        plan = allocate_spares(faults, 2, 2)
        if plan.repaired:
            assert all(plan.covers(cell) for cell in faults)
            assert not plan.uncovered


class TestMustRepair:
    def test_row_with_many_faults_forces_spare_row(self):
        # A row with more failing cells than the column budget can only
        # be fixed by a spare row.
        faults = {(7, c) for c in range(10)}
        plan = allocate_spares(faults, 1, 2)
        assert plan.repaired
        assert 7 in plan.spare_rows_used
        assert not plan.spare_cols_used

    def test_column_must_repair(self):
        faults = {(r, 3) for r in range(10)}
        plan = allocate_spares(faults, 2, 1)
        assert plan.repaired
        assert 3 in plan.spare_cols_used

    def test_crossing_line_faults(self):
        # A dead row and a dead column crossing.
        faults = {(2, c) for c in range(8)} | {(r, 5) for r in range(8)}
        plan = allocate_spares(faults, 1, 1)
        assert plan.repaired
        assert plan.spare_rows_used == frozenset({2})
        assert plan.spare_cols_used == frozenset({5})


class TestExactSmallCases:
    def test_diagonal_needs_one_line_each(self):
        # 3 faults on a diagonal need 3 lines total (no sharing).
        faults = {(0, 0), (1, 1), (2, 2)}
        plan = allocate_spares(faults, 2, 1)
        assert plan.repaired
        assert plan.spares_used == 3

    def test_diagonal_exceeding_budget_fails(self):
        faults = {(0, 0), (1, 1), (2, 2), (3, 3)}
        plan = allocate_spares(faults, 2, 1)
        assert not plan.repaired

    def test_exact_solver_finds_clever_cover(self):
        # Four faults in two rows: two spare rows suffice; a naive
        # column-first allocation would burn four columns.
        faults = {(0, 0), (0, 5), (1, 2), (1, 7)}
        plan = allocate_spares(faults, 2, 0)
        assert plan.repaired
        assert plan.spare_rows_used == frozenset({0, 1})

    def test_mixed_optimal(self):
        # One heavy row plus one stray fault: row + (row or col).
        faults = {(4, c) for c in range(5)} | {(9, 9)}
        plan = allocate_spares(faults, 1, 1)
        assert plan.repaired
        assert 4 in plan.spare_rows_used
        assert plan.spares_used == 2


class TestGreedyLargeCases:
    def test_greedy_handles_many_faults(self):
        # A big clustered pattern beyond the exhaustive limit.
        faults = set()
        for r in range(6):
            for c in range(4):
                faults.add((r * 3, c * 7))
        plan = allocate_spares(faults, 6, 4, exhaustive_limit=4)
        assert plan.repaired

    def test_greedy_reports_failure(self):
        faults = {(i, i) for i in range(30)}
        plan = allocate_spares(faults, 3, 3, exhaustive_limit=4)
        assert not plan.repaired
        assert plan.uncovered


class TestValidation:
    def test_negative_budget(self):
        with pytest.raises(RepairError):
            allocate_spares(set(), -1, 0)
