"""Tests for run reports, the bench history and the regression gate."""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.parallel import ParallelConfig
from repro.core.sweep import Sweep
from repro.errors import ConfigurationError, InfeasibleError
from repro.reporting.runreport import (
    append_history,
    check_regression,
    history_entry,
    load_history,
    load_ledger,
    render_html,
    render_markdown,
    render_regression,
    summarize_ledger,
)


def _failing_eval(x, y):
    if x == 2:
        raise InfeasibleError("bad point")
    return x * y


@pytest.fixture
def sweep_ledger(tmp_path):
    path = tmp_path / "sweep.jsonl"
    Sweep(axes={"x": [1, 2, 3], "y": [10, 20]}).run(
        _failing_eval,
        skip_errors=True,
        ledger=path,
        parallel=ParallelConfig(workers=2, chunk_size=2),
    )
    return path


class TestLedgerSummary:
    def test_load_ledger_skips_torn_lines(self, tmp_path):
        path = tmp_path / "l.jsonl"
        path.write_text(
            '{"id": 0, "t": 1.0, "run": "r", "kind": "run_start"}\n'
            '{"id": 1, "t": 2.0, "run": "r", "ki\n'
        )
        events = load_ledger(path)
        assert len(events) == 1

    def test_load_missing_or_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_ledger(tmp_path / "absent.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        with pytest.raises(ConfigurationError):
            load_ledger(empty)

    def test_summary_of_a_real_sweep(self, sweep_ledger):
        summary = summarize_ledger(load_ledger(sweep_ledger))
        assert summary["runs"][0]["workload"] == "sweep"
        assert summary["runs"][0]["status"] == "ok"
        assert summary["runs"][0]["n_failed"] == 2
        assert summary["resilience"]["quarantine"] == 2
        assert len(summary["quarantines"]) == 2
        assert summary["provenance"]["environment"]["python"]
        # Chunks come sorted slowest-first for the top-N table.
        chunk_times = [c["s"] for c in summary["chunks"]]
        assert chunk_times == sorted(chunk_times, reverse=True)

    def test_markdown_report_sections(self, sweep_ledger):
        summary = summarize_ledger(load_ledger(sweep_ledger))
        markdown = render_markdown(summary, top=3)
        assert "# Run report" in markdown
        assert "## Runs" in markdown
        assert "## Resilience" in markdown
        assert "Quarantined points" in markdown
        assert "bad point" in markdown

    def test_html_report_is_self_contained(self, sweep_ledger):
        summary = summarize_ledger(load_ledger(sweep_ledger))
        html = render_html(summary)
        assert html.startswith("<!doctype html>")
        assert "<h1>Run report</h1>" in html
        assert "src=" not in html  # no external assets
        assert "href=" not in html

    def test_explorer_ledger_has_phase_waterfall(self, tmp_path):
        from repro.core.explorer import DesignSpaceExplorer
        from repro.core.requirements import ApplicationRequirements
        from repro.units import MBIT

        path = tmp_path / "explore.jsonl"
        DesignSpaceExplorer().explore(
            ApplicationRequirements(
                name="t",
                capacity_bits=4 * MBIT,
                sustained_bandwidth_bits_per_s=2e9,
                locality=0.6,
            ),
            ledger=path,
        )
        summary = summarize_ledger(load_ledger(path))
        names = [span["name"] for span in summary["spans"]]
        assert names == ["enumerate", "evaluate", "frontier"]
        markdown = render_markdown(summary)
        assert "## Phase waterfall" in markdown


def _report(seconds):
    return {
        "sections": {
            "sim": {
                "fast_seconds": seconds,
                "speedup": 4.0,
                "bit_identical": True,
            }
        }
    }


class TestRegressionGate:
    def test_history_entry_keeps_numbers_drops_bools(self):
        entry = history_entry(_report(1.0), mode="smoke", commit="c0ffee")
        assert entry["sections"]["sim"]["fast_seconds"] == 1.0
        assert "bit_identical" not in entry["sections"]["sim"]
        assert entry["mode"] == "smoke"
        assert entry["commit"] == "c0ffee"

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(path, _report(1.0), mode="smoke")
        append_history(path, _report(1.1), mode="smoke")
        entries = load_history(path)
        assert len(entries) == 2
        assert entries[1]["sections"]["sim"]["fast_seconds"] == 1.1

    def test_first_run_passes_trivially(self):
        verdict = check_regression([history_entry(_report(9.9), "smoke")])
        assert verdict["ok"]
        assert verdict["baseline_runs"] == 0
        assert "no prior history" in render_regression(verdict, 0.3)

    def test_steady_history_passes(self):
        entries = [
            history_entry(_report(s), "smoke")
            for s in (1.0, 1.05, 0.95, 1.02)
        ]
        assert check_regression(entries)["ok"]

    def test_two_x_slowdown_fails(self):
        entries = [
            history_entry(_report(s), "smoke") for s in (1.0, 1.0, 1.0)
        ] + [history_entry(_report(2.0), "smoke")]
        verdict = check_regression(entries)
        assert not verdict["ok"]
        finding = verdict["findings"][0]
        assert finding["metric"] == "fast_seconds"
        assert finding["ratio"] == pytest.approx(2.0)
        assert "REGRESSION" in render_regression(verdict, 0.3)

    def test_other_modes_excluded_from_baseline(self):
        entries = [
            history_entry(_report(0.1), "full"),
            history_entry(_report(1.0), "smoke"),
            history_entry(_report(1.1), "smoke"),
        ]
        verdict = check_regression(entries)
        assert verdict["ok"]
        assert verdict["baseline_runs"] == 1

    def test_window_bounds_the_baseline(self):
        # Old slow runs age out of the rolling window: only the last
        # `window` prior entries form the baseline.
        entries = [history_entry(_report(10.0), "smoke")] + [
            history_entry(_report(1.0), "smoke") for _ in range(5)
        ] + [history_entry(_report(1.8), "smoke")]
        assert not check_regression(entries, window=5)["ok"]
        # A window large enough to include the slow outlier shifts the
        # median enough... it does not here (median is robust), so the
        # gate still fails — pin that robustness.
        assert not check_regression(entries, window=6)["ok"]

    def test_non_seconds_metrics_ignored(self):
        fast = {"sections": {"sim": {"speedup": 100.0}}}
        entries = [
            history_entry(fast, "smoke"),
            history_entry({"sections": {"sim": {"speedup": 1.0}}}, "smoke"),
        ]
        assert check_regression(entries)["ok"]

    def test_validation(self):
        entry = history_entry(_report(1.0), "smoke")
        with pytest.raises(ConfigurationError):
            check_regression([])
        with pytest.raises(ConfigurationError):
            check_regression([entry], threshold=0.0)
        with pytest.raises(ConfigurationError):
            check_regression([entry], window=0)
        with pytest.raises(ConfigurationError):
            history_entry({"sections": "oops"}, "smoke")
        with pytest.raises(ConfigurationError):
            load_history("/nonexistent/hist.jsonl")


class TestReportCli:
    def test_report_renders_markdown_and_html(
        self, sweep_ledger, tmp_path, capsys
    ):
        md = tmp_path / "report.md"
        html = tmp_path / "report.html"
        rc = cli_main(
            ["report", str(sweep_ledger), "--out", str(md),
             "--html", str(html)]
        )
        assert rc == 0
        assert "# Run report" in md.read_text()
        assert html.read_text().startswith("<!doctype html>")

    def test_report_stdout_default(self, sweep_ledger, capsys):
        rc = cli_main(["report", str(sweep_ledger)])
        assert rc == 0
        assert "# Run report" in capsys.readouterr().out

    def test_report_without_inputs_errors(self, capsys):
        assert cli_main(["report"]) == 2

    def test_check_regression_pass_and_fail(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        for seconds in (1.0, 1.0, 1.0):
            append_history(history, _report(seconds), mode="smoke")
        rc = cli_main(
            ["report", "--check-regression", "--history", str(history)]
        )
        assert rc == 0
        append_history(history, _report(2.0), mode="smoke")
        rc = cli_main(
            ["report", "--check-regression", "--history", str(history)]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_metrics_merge_cli(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"counters": {"c": 2}}))
        b.write_text(json.dumps({"counters": {"c": 3}}))
        rc = cli_main(["metrics", "--merge", str(a), str(b)])
        assert rc == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["counters"]["c"] == 5

    def test_metrics_merge_bad_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert cli_main(["metrics", "--merge", str(bad)]) == 2
