"""Tests for repro.experiments: every claim report holds end to end.

These are the cheap analytic experiments; the simulation-heavy ones
(E5, E10) are exercised at reduced scale here and at full scale in the
benchmark harness.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    e01_interface_power,
    e02_fill_frequency,
    e03_granularity,
    e04_feasibility,
    e06_mpeg2,
    e07_gap_iram,
    e08_siemens_concept,
    e09_test_cost,
)


FAST_EXPERIMENTS = [
    e01_interface_power,
    e02_fill_frequency,
    e03_granularity,
    e04_feasibility,
    e06_mpeg2,
    e07_gap_iram,
    e08_siemens_concept,
    e09_test_cost,
]


@pytest.mark.parametrize(
    "module",
    FAST_EXPERIMENTS,
    ids=lambda m: m.__name__.rsplit(".", 1)[-1],
)
def test_experiment_all_claims_hold(module):
    report = module.run()
    assert report.all_hold, report.render()


@pytest.mark.parametrize(
    "module",
    FAST_EXPERIMENTS,
    ids=lambda m: m.__name__.rsplit(".", 1)[-1],
)
def test_experiment_table_renders(module):
    table = module.render_table()
    assert isinstance(table, str)
    assert len(table.splitlines()) >= 4


def test_experiment_ids_sequential():
    ids = [module.run.__module__.split(".")[-1][:3] for module in
           ALL_EXPERIMENTS]
    assert ids == [f"e{n:02d}" for n in range(1, 11)]


def test_e05_weak_org_saturates():
    from repro.experiments.e05_sustainable_bw import simulate_org

    weak = simulate_org(banks=1, page_bits=1024, cycles=4000)
    assert weak.efficiency < 0.75


def test_e05_strong_org_recovers():
    from repro.experiments.e05_sustainable_bw import simulate_org

    weak = simulate_org(banks=1, page_bits=1024, cycles=4000)
    strong = simulate_org(banks=8, page_bits=4096, cycles=4000)
    assert strong.efficiency > weak.efficiency


def test_e10_requirements_derived_from_mpeg2():
    from repro.experiments.e10_design_space import mpeg2_requirements
    from repro.apps.mpeg2 import MPEG2MemoryBudget

    requirements = mpeg2_requirements()
    budget = MPEG2MemoryBudget()
    assert requirements.capacity_bits == budget.total_bits
    assert requirements.sustained_bandwidth_bits_per_s == pytest.approx(
        budget.total_bandwidth_bits_per_s()
    )


def test_generate_md_produces_markdown(tmp_path):
    import io

    from repro.experiments import generate_md

    stream = io.StringIO()
    generate_md.main(stream)
    text = stream.getvalue()
    assert "# EXPERIMENTS" in text
    for experiment_id in [f"E{n}" for n in range(1, 11)]:
        assert f"## {experiment_id}:" in text
    assert "**NO**" not in text  # every claim holds
