"""Tests for repro.power.supplies: the dual-supply issue."""

import pytest

from repro.errors import ConfigurationError
from repro.power.supplies import (
    SupplyDomain,
    SupplyPlan,
    projected_plan,
    reversal_year,
)


class TestSupplyPlan:
    def test_1998_rails(self):
        plan = SupplyPlan()
        assert plan.logic_vdd == pytest.approx(3.3)
        assert plan.dram_vdd == pytest.approx(2.5)
        assert not plan.dram_rail_is_higher()

    def test_four_domains(self):
        domains = SupplyPlan().domains()
        names = {domain.name for domain in domains}
        assert len(domains) == 4
        assert any("VPP" in name for name in names)
        assert any("VBB" in name for name in names)

    def test_pumped_rails_flagged(self):
        pumped = [d for d in SupplyPlan().domains() if d.on_chip_generated]
        assert len(pumped) == 2

    def test_level_shifters_needed_in_1998(self):
        assert SupplyPlan().needs_level_shifters()

    def test_equal_rails_no_shifters(self):
        plan = SupplyPlan(logic_vdd=2.5, dram_vdd=2.5)
        assert not plan.needs_level_shifters()
        assert plan.overhead_area_mm2() < SupplyPlan().overhead_area_mm2()

    def test_overhead_scales_with_crossing_signals(self):
        narrow = SupplyPlan(crossing_signals=64)
        wide = SupplyPlan(crossing_signals=600)
        assert wide.overhead_area_mm2() > narrow.overhead_area_mm2()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupplyPlan(logic_vdd=0.0)
        with pytest.raises(ConfigurationError):
            SupplyDomain(name="x", voltage=0.0)


class TestReversal:
    def test_paper_predicted_reversal_occurs(self):
        # "This situation will reverse in the future due to the
        # back-biasing problem in DRAMs."
        year = reversal_year()
        assert year is not None
        assert 1999 <= year <= 2006

    def test_rails_converge_then_cross(self):
        before = projected_plan(1998)
        after = projected_plan(2006)
        assert not before.dram_rail_is_higher()
        assert after.dram_rail_is_higher()

    def test_logic_scales_faster(self):
        early = projected_plan(1998)
        late = projected_plan(2004)
        logic_drop = early.logic_vdd / late.logic_vdd
        dram_drop = early.dram_vdd / late.dram_vdd
        assert logic_drop > dram_drop

    def test_year_bounds(self):
        with pytest.raises(ConfigurationError):
            projected_plan(1990)
