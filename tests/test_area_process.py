"""Tests for repro.area.process: base process trade-offs."""

import pytest

from repro.area.process import (
    ALL_PROCESSES_025,
    BaseProcess,
    DRAM_BASED_025,
    LOGIC_BASED_025,
    MERGED_025,
    ProcessKind,
)
from repro.area.cell import DRAM_1T1C
from repro.errors import ConfigurationError
from repro.units import MBIT


class TestSectionThreeTradeoffs:
    """The paper's Section 3 process-choice claims, as assertions."""

    def test_dram_base_dense_memory_slow_logic(self):
        assert (
            DRAM_BASED_025.memory_density_mbit_per_mm2
            > LOGIC_BASED_025.memory_density_mbit_per_mm2
        )
        assert (
            DRAM_BASED_025.logic_speed_factor
            < LOGIC_BASED_025.logic_speed_factor
        )

    def test_logic_base_fast_logic_poor_memory(self):
        assert (
            LOGIC_BASED_025.logic_density_kgates_per_mm2
            > DRAM_BASED_025.logic_density_kgates_per_mm2
        )

    def test_merged_best_of_both_at_higher_cost(self):
        assert MERGED_025.memory_density_mbit_per_mm2 > 0.8
        assert MERGED_025.logic_speed_factor > 0.9
        assert MERGED_025.relative_wafer_cost > max(
            DRAM_BASED_025.relative_wafer_cost,
            LOGIC_BASED_025.relative_wafer_cost,
        )
        assert MERGED_025.mask_count > max(
            DRAM_BASED_025.mask_count, LOGIC_BASED_025.mask_count
        )

    def test_dram_process_fewer_metal_layers(self):
        assert DRAM_BASED_025.metal_layers < LOGIC_BASED_025.metal_layers

    def test_leakage_classes(self):
        # DRAM transistors optimized for low leakage; logic for speed.
        assert DRAM_BASED_025.leakage_class == "low"
        assert LOGIC_BASED_025.leakage_class == "high"


class TestAreaQueries:
    def test_memory_area_one_mbit(self):
        assert DRAM_BASED_025.memory_area_mm2(MBIT) == pytest.approx(1.0)

    def test_logic_area_scaling(self):
        a = DRAM_BASED_025.logic_area_mm2(500e3)
        b = DRAM_BASED_025.logic_area_mm2(1e6)
        assert b == pytest.approx(2 * a)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAM_BASED_025.memory_area_mm2(-1)
        with pytest.raises(ConfigurationError):
            DRAM_BASED_025.logic_area_mm2(-1.0)

    def test_all_processes_listed(self):
        kinds = {process.kind for process in ALL_PROCESSES_025}
        assert kinds == {
            ProcessKind.DRAM_BASED,
            ProcessKind.LOGIC_BASED,
            ProcessKind.MERGED,
        }


class TestValidation:
    def _base_kwargs(self):
        return dict(
            name="test",
            kind=ProcessKind.DRAM_BASED,
            feature_size_um=0.25,
            dram_cell=DRAM_1T1C,
            memory_density_mbit_per_mm2=1.0,
            logic_density_kgates_per_mm2=8.0,
            logic_speed_factor=0.6,
            metal_layers=2,
            mask_count=22,
            leakage_class="low",
            relative_wafer_cost=1.1,
        )

    def test_valid_process_constructs(self):
        BaseProcess(**self._base_kwargs())

    @pytest.mark.parametrize(
        "field,value",
        [
            ("feature_size_um", 0.0),
            ("memory_density_mbit_per_mm2", -1.0),
            ("logic_density_kgates_per_mm2", 0.0),
            ("logic_speed_factor", 0.0),
            ("metal_layers", 0),
            ("mask_count", 5),
            ("leakage_class", "extreme"),
            ("relative_wafer_cost", 0.0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        kwargs = self._base_kwargs()
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            BaseProcess(**kwargs)
