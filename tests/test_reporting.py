"""Tests for repro.reporting: tables and experiment reports."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table, format_bits, format_si
from repro.units import MBIT


class TestFormatters:
    def test_si_giga(self):
        assert format_si(9.15e9, "B/s") == "9.15 GB/s"

    def test_si_milli(self):
        assert format_si(0.064, "s") == "64.00 ms"

    def test_si_zero(self):
        assert format_si(0, "W") == "0 W"

    def test_bits_mbit(self):
        assert format_bits(4.75 * MBIT) == "4.75 Mbit"

    def test_bits_small(self):
        assert format_bits(512) == "512 bit"


class TestTable:
    def test_render_alignment(self):
        table = Table(title="T", columns=["a", "bb"])
        table.add_row("x", "y")
        table.add_row("long-cell", "z")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_cell_count_enforced(self):
        table = Table(title="T", columns=["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row("only-one")

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Table(title="T", columns=[])


class TestExperimentReport:
    def test_checks_accumulate(self):
        report = ExperimentReport(
            experiment_id="E1", title="power", paper_section="S1"
        )
        report.check("claim A", "10x", "10.6x", holds=True)
        report.check("claim B", "16", "16", holds=True)
        assert report.all_hold
        assert len(report.checks) == 2

    def test_failure_visible(self):
        report = ExperimentReport(
            experiment_id="E9", title="test", paper_section="S6"
        )
        report.check("claim", "yes", "no", holds=False, note="calibration")
        assert not report.all_hold
        text = report.render()
        assert "FAIL" in text
        assert "calibration" in text

    def test_render_contains_values(self):
        report = ExperimentReport(
            experiment_id="E6", title="mpeg2", paper_section="S4.1"
        )
        report.check("frame", "4.75 Mbit", "4.746 Mbit", holds=True)
        text = str(report)
        assert "4.75 Mbit" in text and "4.746 Mbit" in text
