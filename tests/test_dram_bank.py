"""Tests for repro.dram.bank and repro.dram.commands: protocol legality."""

import pytest

from repro.dram.bank import Bank, BankState
from repro.dram.commands import Command, CommandType
from repro.dram.timing import PC100_TIMING
from repro.errors import ConfigurationError, ProtocolError


def make_bank(index: int = 0) -> Bank:
    return Bank(index=index, timing=PC100_TIMING, n_rows=256)


def act(cycle, row=5, bank=0):
    return Command(kind=CommandType.ACTIVATE, cycle=cycle, bank=bank, row=row)


def rd(cycle, col=0, bank=0):
    return Command(kind=CommandType.READ, cycle=cycle, bank=bank, column=col)


def wr(cycle, col=0, bank=0):
    return Command(kind=CommandType.WRITE, cycle=cycle, bank=bank, column=col)


def pre(cycle, bank=0):
    return Command(kind=CommandType.PRECHARGE, cycle=cycle, bank=bank)


class TestCommandConstruction:
    def test_activate_needs_row(self):
        with pytest.raises(ConfigurationError):
            Command(kind=CommandType.ACTIVATE, cycle=0, bank=0)

    def test_read_needs_column(self):
        with pytest.raises(ConfigurationError):
            Command(kind=CommandType.READ, cycle=0, bank=0)

    def test_str(self):
        assert "ACT" in str(act(3))
        assert "@3" in str(act(3))


class TestBankProtocol:
    def test_happy_path_activate_read_precharge(self):
        bank = make_bank()
        bank.issue(act(0))
        # Column command before tRCD is illegal.
        assert not bank.can_issue(rd(1))
        assert bank.can_issue(rd(PC100_TIMING.t_rcd))
        end = bank.issue(rd(PC100_TIMING.t_rcd))
        assert end == PC100_TIMING.t_rcd + PC100_TIMING.t_cas + (
            PC100_TIMING.burst_length - 1
        )

    def test_read_without_activate_illegal(self):
        bank = make_bank()
        with pytest.raises(ProtocolError):
            bank.issue(rd(0))

    def test_double_activate_illegal(self):
        bank = make_bank()
        bank.issue(act(0))
        with pytest.raises(ProtocolError):
            bank.issue(act(PC100_TIMING.t_rc + 1, row=9))

    def test_precharge_respects_tras(self):
        bank = make_bank()
        bank.issue(act(0))
        assert not bank.can_issue(pre(PC100_TIMING.t_ras - 1))
        assert bank.can_issue(pre(PC100_TIMING.t_ras))

    def test_activate_after_precharge_respects_trp(self):
        bank = make_bank()
        bank.issue(act(0))
        bank.issue(pre(PC100_TIMING.t_ras))
        too_soon = PC100_TIMING.t_ras + PC100_TIMING.t_rp - 1
        assert not bank.can_issue(act(too_soon, row=7))
        assert bank.can_issue(act(too_soon + 1, row=7))

    def test_write_recovery_delays_precharge(self):
        bank = make_bank()
        bank.issue(act(0))
        end = bank.issue(wr(PC100_TIMING.t_rcd))
        earliest = max(PC100_TIMING.t_ras, end + PC100_TIMING.t_wr)
        assert not bank.can_issue(pre(earliest - 1))
        assert bank.can_issue(pre(earliest))

    def test_row_out_of_range(self):
        bank = make_bank()
        with pytest.raises(ProtocolError):
            bank.issue(act(0, row=256))

    def test_wrong_bank_rejected(self):
        bank = make_bank(index=1)
        with pytest.raises(ProtocolError):
            bank.issue(act(0, bank=0))

    def test_refresh_requires_idle(self):
        bank = make_bank()
        bank.issue(act(0))
        refresh = Command(kind=CommandType.REFRESH, cycle=2, bank=0)
        assert not bank.can_issue(refresh)
        bank.issue(pre(PC100_TIMING.t_ras))
        ready = PC100_TIMING.t_ras + PC100_TIMING.t_rp
        refresh_ok = Command(kind=CommandType.REFRESH, cycle=ready, bank=0)
        assert bank.can_issue(refresh_ok)
        done = bank.issue(refresh_ok)
        assert done == ready + PC100_TIMING.t_rfc


class TestBankState:
    def test_open_row_visible_immediately(self):
        bank = make_bank()
        bank.issue(act(0, row=42))
        assert bank.open_row(1) == 42
        assert bank.is_row_open(42, 1)

    def test_precharge_clears_row(self):
        bank = make_bank()
        bank.issue(act(0, row=42))
        bank.issue(pre(PC100_TIMING.t_ras))
        assert bank.open_row(PC100_TIMING.t_ras + 1) is None

    def test_state_transitions(self):
        bank = make_bank()
        assert bank.state is BankState.IDLE
        bank.issue(act(0))
        assert bank.state is BankState.ACTIVATING
        bank.open_row(PC100_TIMING.t_rcd)  # settle
        assert bank.state is BankState.ACTIVE

    def test_statistics(self):
        bank = make_bank()
        bank.issue(act(0))
        bank.record_access_outcome(False)
        bank.record_access_outcome(True)
        assert bank.activations == 1
        assert bank.row_hits == 1
        assert bank.row_misses == 1

    def test_nop_always_legal(self):
        bank = make_bank()
        nop = Command(kind=CommandType.NOP, cycle=0, bank=0)
        assert bank.can_issue(nop)
        assert bank.issue(nop) == 0
