"""Shared fixtures for the test suite (currently: the serve layer).

The serve fixtures are thin wrappers over ``tests.serve_helpers`` —
see that module and docs/TESTING.md for what each workload/environment
is for.
"""

from __future__ import annotations

import pytest

from tests.serve_helpers import contract_env, gated_env


@pytest.fixture()
def contract_service():
    """(service, InProcessClient) with the ``t_contract`` workload."""
    with contract_env() as pair:
        yield pair


@pytest.fixture()
def gated_service():
    """(service, InProcessClient) with the blockable ``t_gated``
    workload — concurrency tests hold jobs in flight with it."""
    with gated_env() as pair:
        yield pair
