"""Chaos test: PR 4's fault injector as a served workload.

A live server sweeps the ``injected_sim`` workload across fault axes —
dropped refreshes, stuck cells — and must stay deterministic under
chaos: the injected runs complete, quarantine invalid corners instead
of dying, and an identical re-submission returns byte-identical
results (injection is seeded, so even faulty universes replay
exactly).
"""

from __future__ import annotations

from repro.serve.testing import running_server

CHAOS_JOB = {
    "kind": "sweep",
    "workload": "injected_sim",
    "axes": {
        "cycles": [600],
        "seed": [3],
        "cell_faults": [0, 40],
        "refresh_drop_rate": [0.0, 0.2],
    },
}


class TestServeChaos:
    def test_injected_sweep_is_deterministic_over_http(self):
        with running_server() as (server, client):
            first = client.submit(CHAOS_JOB)
            final = client.wait(first["job_id"], timeout_s=120.0)
            assert final["status"] == "done"
            cold = client.result_bytes(first["job_id"])

            document = client.result(first["job_id"])["result"]
            assert document["n_ok"] == 4
            assert document["n_failed"] == 0
            by_params = {
                (
                    point["parameters"]["cell_faults"],
                    point["parameters"]["refresh_drop_rate"],
                ): point["result"]
                for point in document["points"]
            }
            baseline = by_params[(0, 0.0)]
            faulty = by_params[(40, 0.2)]
            assert baseline["injected"] is False
            assert faulty["injected"] is True
            assert baseline["requests_completed"] > 0
            assert faulty["requests_completed"] > 0

            # Chaos replays exactly: same job, same bytes, no rerun.
            second = client.submit(CHAOS_JOB)
            assert second["cached"] is True
            assert client.result_bytes(second["job_id"]) == cold
            assert server.service.stats["executions"] == 1

    def test_invalid_fault_corners_are_quarantined(self):
        job = {
            "kind": "sweep",
            "workload": "injected_sim",
            "axes": {
                "cycles": [600, -5],
                "refresh_drop_rate": [0.0, 0.2],
            },
            "skip_errors": True,
        }
        with running_server() as (server, client):
            submitted = client.submit(job)
            final = client.wait(submitted["job_id"], timeout_s=120.0)
            assert final["status"] == "done"
            document = client.result(submitted["job_id"])["result"]
            assert document["n_ok"] == 2
            assert document["n_failed"] == 2
            for failure in document["failures"]:
                assert failure["parameters"]["cycles"] == -5
            report = client.report(submitted["job_id"])
            assert "quarantine" in report["markdown"].lower()
