"""Cache-correctness tests: the content-addressed store and coalescer.

The service's central promise: a warm-cache response is *byte-
identical* to the cold evaluation it stands in for, and costs zero
evaluations.  These tests pin that promise three ways — the store
itself (LRU/eviction/persistence semantics), the fingerprint (what
must and must not share a key), and the service (evaluation-count
probe, duplicate in-flight jobs sharing one execution).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.serve.cache import ResultCache
from repro.serve.protocol import parse_job
from tests.serve_helpers import (
    CONTRACT_JOB,
    contract_env,
    gated_env,
    open_gate,
    reset_gate,
)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(maxsize=4)
        assert cache.get("k1") is None
        cache.put("k1", '{"a":1}')
        assert cache.get("k1") == '{"a":1}'
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.get("a") == "1"  # refresh a's recency
        cache.put("c", "3")  # evicts b, the least recent
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert cache.get("c") == "3"
        assert cache.evictions == 1

    def test_maxsize_validation(self):
        with pytest.raises(ConfigurationError):
            ResultCache(maxsize=0)

    def test_only_text_is_accepted(self):
        cache = ResultCache()
        with pytest.raises(ConfigurationError):
            cache.put("k", {"not": "text"})

    def test_persistence_round_trip(self, tmp_path):
        spill = tmp_path / "results.jsonl"
        first = ResultCache(maxsize=8, path=spill)
        first.put("k1", '{"v":1}')
        first.put("k2", '{"v":2}')
        reopened = ResultCache(maxsize=8, path=spill)
        assert reopened.get("k1") == '{"v":1}'
        assert reopened.get("k2") == '{"v":2}'

    def test_restart_after_evictions_regression(self, tmp_path):
        # Regression: the append-only spill used to keep every evicted
        # record and replay them all on restart, so a bounded cache
        # came back resurrecting entries it had evicted and the spill
        # file grew without bound across restarts.
        spill = tmp_path / "results.jsonl"
        cache = ResultCache(maxsize=2, path=spill)
        for key in "abcde":
            cache.put(key, key.upper())
        assert cache.evictions == 3
        cache.close()
        reopened = ResultCache(maxsize=2, path=spill)
        assert len(reopened) == 2
        assert reopened.get("a") is None
        assert reopened.get("d") == "D"
        assert reopened.get("e") == "E"
        # The spill can be pinned to exactly the live entries.
        reopened.compact()
        reopened.close()
        lines = [
            line
            for line in spill.read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == 2

    def test_persistence_last_record_wins_and_tolerates_torn_tail(
        self, tmp_path
    ):
        spill = tmp_path / "results.jsonl"
        with open(spill, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"fingerprint": "k", "result": "old"}) + "\n"
            )
            handle.write(
                json.dumps({"fingerprint": "k", "result": "new"}) + "\n"
            )
            handle.write('{"fingerprint": "torn...')
        cache = ResultCache(path=spill)
        assert cache.get("k") == "new"


class TestFingerprint:
    def _fingerprint(self, job: dict) -> str:
        return parse_job(job).fingerprint()

    def test_identical_jobs_share_a_fingerprint(self):
        with contract_env():
            assert self._fingerprint(CONTRACT_JOB) == self._fingerprint(
                json.loads(json.dumps(CONTRACT_JOB))
            )

    def test_axis_values_change_the_fingerprint(self):
        with contract_env():
            other = json.loads(json.dumps(CONTRACT_JOB))
            other["axes"]["x"] = [0, 1, 3]
            assert self._fingerprint(other) != self._fingerprint(
                CONTRACT_JOB
            )

    def test_axis_order_changes_the_fingerprint(self):
        # Point order follows axis order, so a reordered grid is a
        # different result document — it must not share a cache entry.
        with contract_env():
            reordered = dict(CONTRACT_JOB)
            axes = CONTRACT_JOB["axes"]
            reordered["axes"] = dict(reversed(list(axes.items())))
            assert self._fingerprint(reordered) != self._fingerprint(
                CONTRACT_JOB
            )

    def test_flags_change_the_fingerprint(self):
        with contract_env():
            assert self._fingerprint(
                dict(CONTRACT_JOB, skip_errors=True)
            ) != self._fingerprint(CONTRACT_JOB)

    def test_explore_requirement_key_order_is_canonical(self):
        base = {
            "kind": "explore",
            "requirements": {
                "name": "app",
                "capacity_mbit": 8,
                "bandwidth_gbit_s": 1.5,
            },
        }
        shuffled = {
            "kind": "explore",
            "requirements": {
                "bandwidth_gbit_s": 1.5,
                "name": "app",
                "capacity_mbit": 8,
            },
        }
        assert (
            parse_job(base).fingerprint()
            == parse_job(shuffled).fingerprint()
        )


class TestServiceCache:
    def test_warm_hit_is_byte_identical_and_free(self):
        """The acceptance criterion: identical repeat → identical bytes,
        zero re-evaluations (the evaluation-count probe)."""
        with contract_env() as (service, client):
            cold = client.submit(CONTRACT_JOB)
            client.wait(cold["job_id"])
            cold_text = service.result_text(cold["job_id"])
            evaluations = service.stats["evaluations"]
            executions = service.stats["executions"]
            assert evaluations == 3  # one per grid point

            warm = client.submit(CONTRACT_JOB)
            assert warm["cached"] is True
            assert warm["status"] == "done"
            warm_text = service.result_text(warm["job_id"])
            assert warm_text is cold_text or warm_text == cold_text
            assert warm_text.encode() == cold_text.encode()
            assert service.stats["evaluations"] == evaluations
            assert service.stats["executions"] == executions
            assert service.stats["cache_hits"] == 1

    def test_shared_cache_survives_service_restart(self, tmp_path):
        spill = tmp_path / "results.jsonl"
        with contract_env(
            cache=ResultCache(maxsize=8, path=spill)
        ) as (service, client):
            cold = client.submit(CONTRACT_JOB)
            client.wait(cold["job_id"])
            cold_text = service.result_text(cold["job_id"])
        # A brand-new service over the same spill file serves the same
        # bytes without a single evaluation.
        with contract_env(
            cache=ResultCache(maxsize=8, path=spill)
        ) as (service, client):
            warm = client.submit(CONTRACT_JOB)
            assert warm["cached"] is True
            assert service.result_text(warm["job_id"]) == cold_text
            assert service.stats["evaluations"] == 0
            assert service.stats["executions"] == 0

    def test_eviction_forces_a_cold_run(self):
        with contract_env(cache=ResultCache(maxsize=1)) as (
            service,
            client,
        ):
            first = client.submit(CONTRACT_JOB)
            client.wait(first["job_id"])
            other = dict(CONTRACT_JOB, axes={"x": [5]})
            second = client.submit(other)
            client.wait(second["job_id"])
            assert service.cache.evictions == 1
            third = client.submit(CONTRACT_JOB)  # evicted → cold again
            client.wait(third["job_id"])
            assert third["cached"] is False
            assert service.stats["executions"] == 3


class TestCoalescing:
    def test_duplicate_in_flight_jobs_share_one_execution(self):
        job = {
            "kind": "sweep",
            "workload": "t_gated",
            "axes": {"x": [1, 2], "gate": ["coalesce"]},
        }
        with gated_env() as (service, client):
            reset_gate("coalesce")
            first = client.submit(job)
            second = client.submit(job)
            assert second["coalesced_with"] == first["job_id"]
            assert service.coalescer.coalesced == 1
            assert service.coalescer.in_flight == 1
            open_gate("coalesce")
            client.wait(first["job_id"])
            client.wait(second["job_id"])
            assert service.stats["executions"] == 1
            assert service.stats["evaluations"] == 2
            assert service.result_text(
                first["job_id"]
            ) == service.result_text(second["job_id"])
            assert service.coalescer.in_flight == 0

    def test_followers_inherit_a_primary_failure(self):
        job = {
            "kind": "sweep",
            "workload": "t_gated",
            # unknown-gate values come from the axes; a negative wait
            # is impossible, so fail via a bad axis instead
            "axes": {"x": [1], "gate": ["fail-case"]},
        }
        with gated_env() as (service, client):
            reset_gate("fail-case")
            first = client.submit(job)
            second = client.submit(job)
            # Fail the primary by never opening the gate and letting
            # the workload's own timeout raise — too slow for a unit
            # test, so resolve it directly through the service
            # internals instead.
            primary = service._jobs[first["job_id"]]
            service._resolve(
                primary,
                error={"code": "evaluation_failed", "message": "boom"},
            )
            for job_id in (first["job_id"], second["job_id"]):
                status = client.status(job_id)
                assert status["status"] == "failed"
                assert status["error"]["message"] == "boom"
            open_gate("fail-case")

    def test_coalesced_counter_in_stats_endpoint(self):
        job = {
            "kind": "sweep",
            "workload": "t_gated",
            "axes": {"x": [1], "gate": ["stats-case"]},
        }
        with gated_env() as (service, client):
            reset_gate("stats-case")
            first = client.submit(job)
            client.submit(job)
            stats = client.stats()
            assert stats["coalesced"] == 1
            assert stats["in_flight"] == 1
            open_gate("stats-case")
            client.wait(first["job_id"])


def _hammer(client, job, results, index):
    try:
        results[index] = client.run(job, timeout_s=60.0)
    except Exception as error:  # noqa: BLE001 - surface in the test
        results[index] = error


class TestConcurrentSubmissions:
    def test_two_simultaneous_identical_jobs_one_execution(self):
        """Acceptance criterion: simultaneous duplicates → one
        execution, two identical responses."""
        job = {
            "kind": "sweep",
            "workload": "t_gated",
            "axes": {"x": [1, 2, 3], "gate": ["simultaneous"]},
        }
        with gated_env() as (service, client):
            reset_gate("simultaneous")
            results: list = [None, None]
            threads = [
                threading.Thread(
                    target=_hammer, args=(client, job, results, index)
                )
                for index in range(2)
            ]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 30.0
            while (
                service.stats["submitted"] < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            open_gate("simultaneous")
            for thread in threads:
                thread.join(timeout=60.0)
            for outcome in results:
                assert isinstance(outcome, dict), outcome
            assert results[0] == results[1]
            assert service.stats["executions"] == 1
            assert service.stats["evaluations"] == 3
            assert (
                service.coalescer.coalesced + service.stats["cache_hits"]
                == 1
            )
