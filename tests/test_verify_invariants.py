"""Live invariant checking: clean runs stay clean, injected bugs don't.

The value of a verification layer is measured from both sides: zero
false positives on correct code (every mode, every load level) and a
guaranteed catch when a protocol rule is deliberately broken.  The
injected bug here is the classic mutation — the bank model accepts
column commands one cycle before tRCD has elapsed — which the device
model happily issues and only the independent oracle can flag.
"""

import pytest

from repro.dram.bank import Bank
from repro.dram.commands import CommandType
from repro.errors import ConfigurationError, VerificationError
from repro.dram.organizations import Organization
from repro.dram.timing import EDRAM_TIMING, PC100_TIMING, TimingParameters
from repro.verify.fuzz import build_simulator
from repro.verify.invariants import (
    LiveInvariantChecker,
    refresh_deadline_slack,
)


def sim_params(rate=0.8, cycles=400, refresh=True):
    """A busy single-client workload with t_rcd large enough that a
    one-cycle-early column command is observable (the controller issues
    at most one command per cycle, so t_rcd must exceed 1)."""
    return {
        "timing": {
            "clock_period_ns": 10.0,
            "t_rcd": 3,
            "t_cas": 2,
            "t_rp": 2,
            "t_ras": 5,
            "t_rc": 8,
            "t_rrd": 1,
            "t_wr": 2,
            "t_rfc": 6,
            "burst_length": 4,
            "t_turnaround": 1,
        },
        "organization": {
            "n_banks": 4,
            "n_rows": 16,
            "page_bits": 1024,
            "word_bits": 16,
        },
        "scheme": "row:bank:col",
        "controller": {
            "window_size": 4,
            "fifo_capacity": 4,
            "refresh_enabled": refresh,
            # interval = retention / (n_rows * clock) = 200 cycles.
            "refresh_retention_s": 200 * 16 * 10e-9,
        },
        "sim": {"cycles": cycles, "warmup_cycles": 0},
        "clients": [
            {
                "name": "c0",
                "pattern": {
                    "kind": "sequential",
                    "base": 0,
                    "length": 4096,
                },
                "rate": rate,
                "read_fraction": 0.7,
                "seed": 3,
            }
        ],
    }


@pytest.fixture
def trcd_bug(monkeypatch):
    """Mutate the bank model: column commands accepted at tRCD - 1."""
    original = Bank.can_issue

    def relaxed(self, command):
        if command.kind in (CommandType.READ, CommandType.WRITE):
            self._settle(command.cycle)
            return (
                self._open_row is not None
                and command.cycle >= self._ready_column - 1
            )
        return original(self, command)

    monkeypatch.setattr(Bank, "can_issue", relaxed)


class TestCleanRuns:
    @pytest.mark.parametrize("fast", [False, True])
    @pytest.mark.parametrize("rate", [0.01, 0.8])
    def test_collect_mode_reports_clean(self, fast, rate):
        simulator = build_simulator(
            sim_params(rate=rate),
            fast_forward=fast,
            check_invariants="collect",
        )
        simulator.run()
        report = simulator.invariant_report
        assert report.clean, report.summary()
        assert report.commands_checked > 0
        assert report.cycles_checked > 0

    def test_fast_forward_skips_are_audited(self):
        simulator = build_simulator(
            sim_params(rate=0.01),
            fast_forward=True,
            check_invariants="collect",
        )
        simulator.run()
        assert simulator.cycles_fast_forwarded > 0
        report = simulator.invariant_report
        assert report.skips_checked > 0
        assert report.clean, report.summary()

    def test_raise_mode_is_silent_on_clean_runs(self):
        simulator = build_simulator(
            sim_params(), fast_forward=True, check_invariants="raise"
        )
        simulator.run()  # must not raise
        assert simulator.invariant_report.clean

    def test_off_mode_attaches_no_checker(self):
        simulator = build_simulator(
            sim_params(), fast_forward=True, check_invariants="off"
        )
        simulator.run()
        assert simulator.invariant_report is None
        assert simulator.invariant_checker is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            build_simulator(
                sim_params(), fast_forward=True, check_invariants="loud"
            )

    def test_checking_does_not_perturb_results(self):
        from repro.verify.differential import result_fingerprint

        plain = build_simulator(sim_params(), fast_forward=True).run()
        checked = build_simulator(
            sim_params(), fast_forward=True, check_invariants="collect"
        ).run()
        assert result_fingerprint(plain) == result_fingerprint(checked)


class TestInjectedTrcdBug:
    def test_collect_mode_catches_the_mutation(self, trcd_bug):
        simulator = build_simulator(
            sim_params(), fast_forward=True, check_invariants="collect"
        )
        simulator.run()
        report = simulator.invariant_report
        assert not report.clean
        checks = {violation.check for violation in report.violations}
        assert "col.t_rcd" in checks
        first = report.violations[0]
        assert "t_rcd" in str(first) or "ready" in str(first)

    def test_raise_mode_raises_verification_error(self, trcd_bug):
        simulator = build_simulator(
            sim_params(), fast_forward=True, check_invariants="raise"
        )
        with pytest.raises(VerificationError):
            simulator.run()

    def test_unchecked_run_sails_through(self, trcd_bug):
        # The point of the oracle: without it the mutated device model
        # accepts its own illegal schedule without complaint.
        simulator = build_simulator(sim_params(), fast_forward=True)
        simulator.run()
        assert simulator.invariant_report is None


class TestRefreshDeadlineSlack:
    def test_slack_is_positive_and_grows_with_banks(self):
        narrow = Organization(
            n_banks=1, n_rows=64, page_bits=1024, word_bits=16
        )
        wide = Organization(
            n_banks=8, n_rows=64, page_bits=1024, word_bits=16
        )
        for timing in (PC100_TIMING, EDRAM_TIMING):
            small = refresh_deadline_slack(timing, narrow)
            large = refresh_deadline_slack(timing, wide)
            assert 0 < small < large

    def test_checker_builds_from_parameters(self):
        timing = TimingParameters(**sim_params()["timing"])
        organization = Organization(**sim_params()["organization"])
        checker = LiveInvariantChecker(
            organization=organization, timing=timing
        )
        report = checker.report()
        assert report.clean
        assert report.commands_checked == 0
