"""Tests for repro.power.interface: CV^2f interface power."""

import pytest

from repro.errors import ConfigurationError
from repro.power.interface import (
    InterfacePowerModel,
    InterfaceSpec,
    OFF_CHIP_BUS,
    ON_CHIP_BUS,
)


class TestInterfaceSpec:
    def test_off_chip_heavier_than_on_chip(self):
        # The capacitance and swing gap is the paper's whole argument.
        off = OFF_CHIP_BUS.energy_per_line_toggle_j()
        on = ON_CHIP_BUS.energy_per_line_toggle_j()
        assert off / on > 15

    def test_toggle_energy_value(self):
        spec = InterfaceSpec(
            name="x", capacitance_per_line_f=10e-12, swing_v=2.0
        )
        assert spec.energy_per_line_toggle_j() == pytest.approx(40e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InterfaceSpec(name="x", capacitance_per_line_f=0.0, swing_v=3.3)
        with pytest.raises(ConfigurationError):
            InterfaceSpec(name="x", capacitance_per_line_f=1e-12, swing_v=0.0)
        with pytest.raises(ConfigurationError):
            InterfaceSpec(
                name="x",
                capacitance_per_line_f=1e-12,
                swing_v=3.3,
                activity=0.0,
            )


class TestInterfacePowerModel:
    def test_power_linear_in_width(self):
        narrow = InterfacePowerModel(OFF_CHIP_BUS, 16, 100e6)
        wide = InterfacePowerModel(OFF_CHIP_BUS, 256, 100e6)
        assert wide.power_w() == pytest.approx(16 * narrow.power_w())

    def test_power_linear_in_utilization(self):
        model = InterfacePowerModel(OFF_CHIP_BUS, 64, 100e6)
        assert model.power_w(0.5) == pytest.approx(0.5 * model.power_w(1.0))

    def test_zero_utilization_zero_power(self):
        model = InterfacePowerModel(ON_CHIP_BUS, 64, 100e6)
        assert model.power_w(0.0) == 0.0

    def test_peak_bandwidth(self):
        model = InterfacePowerModel(ON_CHIP_BUS, 256, 143e6)
        assert model.peak_bandwidth_bits_per_s == pytest.approx(256 * 143e6)

    def test_energy_per_bit_independent_of_width(self):
        a = InterfacePowerModel(OFF_CHIP_BUS, 16, 100e6).energy_per_bit_j()
        b = InterfacePowerModel(OFF_CHIP_BUS, 256, 100e6).energy_per_bit_j()
        assert a == pytest.approx(b)

    def test_width_for_bandwidth(self):
        model = InterfacePowerModel(ON_CHIP_BUS, 1, 100e6)
        assert model.width_for_bandwidth(1.6e9) == 16

    def test_bad_utilization(self):
        model = InterfacePowerModel(ON_CHIP_BUS, 64, 100e6)
        with pytest.raises(ConfigurationError):
            model.power_w(1.5)

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            InterfacePowerModel(ON_CHIP_BUS, 0, 100e6)
