"""Differential oracles: fast vs per-cycle, serial vs parallel, diffing.

The acceptance surface of the verification subsystem: the fast-forward
simulator must be bit-identical to the per-cycle reference on a broad
sample of *fuzz-generated* configurations (not just hand-picked ones),
the process-pool sweep must match its serial reference, and when two
executions *do* differ the report must localize the first divergent
command and cycle rather than just saying "something differed".
"""

import math
import random

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.edram import EDRAMMacro
from repro.errors import ConfigurationError
from repro.units import MBIT
from repro.verify.differential import (
    DifferentialReport,
    FieldDiff,
    FirstDivergence,
    diff_memoized_vs_cold,
    diff_serial_vs_parallel,
    diff_simulations,
    diff_values,
    first_command_divergence,
    result_fingerprint,
)
from repro.verify.fuzz import build_simulator, gen_sim_case


# Twenty-plus generated configurations: the differential acceptance
# criterion.  Seeds are arbitrary but fixed so failures are repro-able.
FUZZ_SEEDS = [f"diffsuite:{i}" for i in range(22)]


class TestFastForwardDifferential:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_fast_forward_matches_per_cycle(self, seed):
        params = gen_sim_case(random.Random(seed))
        report = diff_simulations(
            lambda fast_forward, record_commands: build_simulator(
                params,
                fast_forward=fast_forward,
                record_commands=record_commands,
            )
        )
        assert report.identical, report.describe()

    def test_divergence_is_localized(self):
        """Two genuinely different workloads (client seed differs) must
        produce a non-identical report that names the first divergent
        command — the first-divergence machinery end to end."""
        rng = random.Random("diffsuite:localize")
        base = gen_sim_case(rng)
        # Force a stochastic client so the seed actually matters.
        base["clients"] = [
            {
                "name": "c0",
                "pattern": {
                    "kind": "random",
                    "base": 0,
                    "length": 256,
                    "seed": 1,
                },
                "rate": 0.6,
                "read_fraction": 0.5,
                "seed": 1,
            }
        ]
        other = {
            **base,
            "clients": [
                {
                    **base["clients"][0],
                    "pattern": {**base["clients"][0]["pattern"], "seed": 2},
                    "seed": 2,
                }
            ],
        }

        def factory(fast_forward, record_commands):
            params = other if fast_forward else base
            return build_simulator(
                params,
                fast_forward=fast_forward,
                record_commands=record_commands,
            )

        report = diff_simulations(factory, label="seed 1 vs seed 2")
        assert not report.identical
        assert report.diffs, "different workloads must differ somewhere"
        divergence = report.first_divergence
        assert divergence is not None
        assert divergence.cycle is not None
        assert divergence.cycle >= 0
        # The human-facing description names the label, the cycle and at
        # least one differing field.
        text = report.describe()
        assert "seed 1 vs seed 2" in text
        assert "first divergence" in text


class TestFirstCommandDivergence:
    def act(self, cycle, bank=0, row=0):
        return Command(
            kind=CommandType.ACTIVATE, cycle=cycle, bank=bank, row=row
        )

    def test_identical_logs_have_no_divergence(self):
        log = [self.act(0), self.act(10, bank=1)]
        assert first_command_divergence(log, list(log)) is None
        assert first_command_divergence([], []) is None

    def test_first_differing_command_is_reported(self):
        left = [self.act(0), self.act(7, bank=1), self.act(20)]
        right = [self.act(0), self.act(9, bank=1), self.act(20)]
        divergence = first_command_divergence(left, right)
        assert divergence == FirstDivergence(
            index=1, left=left[1], right=right[1]
        )
        assert divergence.cycle == 7  # the earlier of the two sides

    def test_prefix_log_diverges_at_the_missing_tail(self):
        left = [self.act(0), self.act(5)]
        right = [self.act(0)]
        divergence = first_command_divergence(left, right)
        assert divergence.index == 1
        assert divergence.left == left[1]
        assert divergence.right is None
        assert divergence.cycle == 5
        mirrored = first_command_divergence(right, left)
        assert mirrored.left is None and mirrored.right == left[1]

    def test_both_sides_missing_has_no_cycle(self):
        divergence = FirstDivergence(index=3, left=None, right=None)
        assert divergence.cycle is None


class TestDiffValues:
    def test_equal_structures_produce_no_diffs(self):
        value = {"a": [1, 2, (3.5, "x")], "b": {"c": None}}
        assert diff_values(value, value) == []

    def test_scalar_diff_carries_the_path(self):
        diffs = diff_values({"a": {"b": 1}}, {"a": {"b": 2}}, "root")
        assert diffs == [FieldDiff("root['a']['b']", 1, 2)]

    def test_missing_dict_keys_are_reported_from_both_sides(self):
        diffs = diff_values({"a": 1}, {"b": 2}, "d")
        paths = {diff.path: (diff.left, diff.right) for diff in diffs}
        assert paths == {
            "d['a']": (1, "<missing>"),
            "d['b']": ("<missing>", 2),
        }

    def test_length_mismatch_and_element_diffs(self):
        diffs = diff_values([1, 2, 3], [1, 9], "seq")
        assert FieldDiff("seq.len", 3, 2) in diffs
        assert FieldDiff("seq[1]", 2, 9) in diffs

    def test_floats_compare_exactly(self):
        assert diff_values(0.1 + 0.2, 0.3) != []
        nan_diffs = diff_values(float("nan"), float("nan"))
        assert len(nan_diffs) == 1  # NaN != NaN: bit-identity, not ==
        assert math.isnan(nan_diffs[0].left)

    def test_report_describe_truncates(self):
        report = DifferentialReport(
            label="wide",
            diffs=[FieldDiff(f"f{i}", i, -i) for i in range(12)],
        )
        text = report.describe(limit=3)
        assert "12 field diffs" in text
        assert "... and 9 more" in text


def _bandwidth_of(width: int) -> float:
    """Module-level (picklable) worker for the pool comparison."""
    from repro.core.evaluator import Evaluator
    from repro.experiments.e10_design_space import mpeg2_requirements

    macro = EDRAMMacro(
        size_bits=16 * MBIT, width=width, banks=4, page_bits=4096
    )
    metrics = Evaluator().evaluate_macro(macro, mpeg2_requirements())
    return metrics.sustained_bandwidth_bits_per_s


def _rejects(width: int) -> float:
    if width > 64:
        raise ConfigurationError(f"width {width} rejected on purpose")
    return float(width)


class TestSerialVsParallel:
    def test_macro_sweep_matches(self):
        report = diff_serial_vs_parallel(
            _bandwidth_of, [16, 32, 64, 128], workers=2
        )
        assert report.identical, report.describe()

    def test_caught_errors_match_too(self):
        # Error outcomes (caught ReproError subclasses) must round-trip
        # through the pool identically to the serial path.
        report = diff_serial_vs_parallel(
            _rejects, [16, 64, 128, 256], workers=2, chunk_size=1
        )
        assert report.identical, report.describe()


class TestMemoizedVsCold:
    def test_memo_serves_identical_metrics(self):
        from repro.core.requirements import ApplicationRequirements

        macro = EDRAMMacro(
            size_bits=8 * MBIT, width=64, banks=4, page_bits=2048
        )
        requirements = ApplicationRequirements(
            name="memo",
            capacity_bits=4 * MBIT,
            sustained_bandwidth_bits_per_s=0.4e9,
        )
        report = diff_memoized_vs_cold(macro, requirements)
        assert report.identical, report.describe()


class TestResultFingerprint:
    def test_fingerprint_equals_iff_results_identical(self):
        params = gen_sim_case(random.Random("diffsuite:fingerprint"))
        first = build_simulator(params, fast_forward=True).run()
        second = build_simulator(params, fast_forward=True).run()
        assert result_fingerprint(first) == result_fingerprint(second)
        assert hash(result_fingerprint(first)) is not None  # hashable
