"""Tests for repro.dram.multimodule and repro.controller.rowcache."""

import pytest

from repro.controller.rowcache import RowCacheController
from repro.controller import MemoryController
from repro.dram import AddressMapping, EDRAMMacro, MappingScheme
from repro.dram.multimodule import MultiModuleSystem, compose_for_bandwidth
from repro.errors import ConfigurationError, InfeasibleError
from repro.sim import MemorySystemSimulator, SimulationConfig
from repro.traffic import MemoryClient, StridedPattern, SequentialPattern
from repro.units import MBIT


class TestMultiModuleComposition:
    def test_single_module_when_it_suffices(self):
        system = compose_for_bandwidth(16 * MBIT, 4e9 * 8 / 8)
        assert system.n_modules == 1
        assert system.total_bits >= 16 * MBIT

    def test_bandwidth_beyond_one_module_adds_modules(self):
        # 20 GB/s is beyond one module's ~9.15 GB/s.
        system = compose_for_bandwidth(32 * MBIT, 20e9 * 8)
        assert system.n_modules >= 2
        assert system.peak_bandwidth_bits_per_s >= 20e9 * 8

    def test_capacity_split_in_blocks(self):
        system = compose_for_bandwidth(30 * MBIT, 12e9 * 8)
        step = 256 * 1024
        for module in system.modules:
            assert module.size_bits % step == 0

    def test_aggregate_figures(self):
        system = compose_for_bandwidth(64 * MBIT, 15e9 * 8)
        assert system.total_bits == sum(
            module.size_bits for module in system.modules
        )
        assert system.area_mm2() > sum(
            module.area_mm2() for module in system.modules
        )  # routing overhead

    def test_describe(self):
        system = compose_for_bandwidth(16 * MBIT, 2e9 * 8)
        text = system.describe()
        assert "Mbit" in text and "GB/s" in text

    def test_too_much_bandwidth(self):
        with pytest.raises(InfeasibleError):
            compose_for_bandwidth(16 * MBIT, 1000e9 * 8, max_modules=4)

    def test_too_much_capacity(self):
        with pytest.raises(InfeasibleError):
            compose_for_bandwidth(1024 * MBIT, 2e9 * 8, max_modules=1)

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiModuleSystem(modules=())


class TestRowCacheController:
    def _run(self, controller_cls, **kwargs):
        macro = EDRAMMacro.build(
            size_bits=4 * MBIT, width=64, banks=1, page_bits=2048
        )
        device = macro.device()
        controller = controller_cls(
            device=device,
            mapping=AddressMapping(
                device.organization, MappingScheme.ROW_BANK_COL
            ),
            **kwargs,
        )
        words = device.organization.total_words
        page_words = device.organization.columns_per_page
        # Two clients ping-ponging between two rows of the single bank:
        # a plain open-page controller thrashes; a row cache holds both.
        clients = [
            MemoryClient(
                name="a",
                pattern=StridedPattern(
                    base=0, length=2 * page_words, stride=1
                ),
                rate=0.08,
                seed=1,
            ),
            MemoryClient(
                name="b",
                pattern=StridedPattern(
                    base=8 * page_words,
                    length=2 * page_words,
                    stride=1,
                ),
                rate=0.08,
                seed=2,
            ),
        ]
        simulator = MemorySystemSimulator(
            controller=controller,
            clients=clients,
            config=SimulationConfig(cycles=6000, warmup_cycles=500),
        )
        return controller, simulator.run()

    def test_row_cache_cuts_latency_under_thrashing(self):
        _, baseline = self._run(MemoryController)
        _, cached = self._run(RowCacheController)
        assert cached.latency.mean < baseline.latency.mean

    def test_hits_recorded(self):
        controller, _ = self._run(RowCacheController)
        assert controller.row_cache_hits > 0
        assert 0 < controller.row_cache_hit_rate() <= 1.0

    def test_single_entry_cache_weaker(self):
        big, _ = self._run(RowCacheController, row_cache_entries=8)
        small, _ = self._run(RowCacheController, row_cache_entries=1)
        assert big.row_cache_hits >= small.row_cache_hits

    def test_writes_not_served_from_cache(self):
        macro = EDRAMMacro.build(
            size_bits=4 * MBIT, width=64, banks=2, page_bits=2048
        )
        device = macro.device()
        controller = RowCacheController(
            device=device,
            mapping=AddressMapping(
                device.organization, MappingScheme.ROW_BANK_COL
            ),
        )
        clients = [
            MemoryClient(
                name="w",
                pattern=SequentialPattern(base=0, length=1024),
                rate=0.1,
                read_fraction=0.0,
            )
        ]
        simulator = MemorySystemSimulator(
            controller=controller,
            clients=clients,
            config=SimulationConfig(cycles=3000, warmup_cycles=300),
        )
        simulator.run()
        assert controller.row_cache_hits == 0

    def test_validation(self):
        macro = EDRAMMacro.build(size_bits=4 * MBIT, width=64)
        device = macro.device()
        with pytest.raises(ConfigurationError):
            RowCacheController(
                device=device,
                mapping=AddressMapping(device.organization),
                row_cache_entries=0,
            )
