"""Edge cases at the fast-forward x refresh boundary.

The riskiest interaction in the event-skipping fast path: an idle span
the simulator wants to jump over that *contains a refresh deadline*.
The skip target must be capped at the scheduler's quiescent point so
the controller wakes up exactly when refresh is due — never a cycle
late.  These tests pin the off-by-one surface: deadlines strictly
inside a skipped window, the quiescent cycle landing exactly on the
deadline (integer and fractional intervals), and bit-identity with the
per-cycle loop across a retention sweep.
"""

import math

import pytest

from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import PC100_TIMING
from repro.verify.differential import result_fingerprint
from repro.verify.fuzz import build_simulator


def idle_params(retention_cycles, cycles=900, rate=0.004, n_rows=16):
    """A nearly idle workload whose refresh interval is
    ``retention_cycles / n_rows`` cycles: small enough that many
    deadlines fall inside the long idle gaps between requests."""
    clock_ns = 10.0
    return {
        "timing": {
            "clock_period_ns": clock_ns,
            "t_rcd": 2,
            "t_cas": 2,
            "t_rp": 2,
            "t_ras": 4,
            "t_rc": 6,
            "t_rrd": 1,
            "t_wr": 1,
            "t_rfc": 5,
            "burst_length": 2,
            "t_turnaround": 1,
        },
        "organization": {
            "n_banks": 2,
            "n_rows": n_rows,
            "page_bits": 512,
            "word_bits": 16,
        },
        "scheme": "row:bank:col",
        "controller": {
            "window_size": 4,
            "fifo_capacity": 4,
            "refresh_enabled": True,
            "refresh_retention_s": retention_cycles * clock_ns * 1e-9,
        },
        "sim": {"cycles": cycles, "warmup_cycles": 0},
        "clients": [
            {
                "name": "c0",
                "pattern": {"kind": "sequential", "base": 0, "length": 512},
                "rate": rate,
                "read_fraction": 1.0,
                "seed": 1,
            }
        ],
    }


def fingerprints(params):
    naive = build_simulator(params, fast_forward=False)
    fast = build_simulator(params, fast_forward=True)
    naive_result = naive.run()
    fast_result = fast.run()
    assert naive.cycles_fast_forwarded == 0
    return (
        result_fingerprint(naive_result),
        result_fingerprint(fast_result),
        fast,
    )


class TestDeadlineInsideSkippedWindow:
    def test_refresh_fires_despite_long_idle_skips(self):
        # Interval of 100 cycles, requests ~250 cycles apart: most
        # refresh deadlines sit strictly inside skipped idle windows.
        params = idle_params(retention_cycles=1600)
        naive_fp, fast_fp, fast = fingerprints(params)
        assert naive_fp == fast_fp
        assert fast.cycles_fast_forwarded > 100
        result = build_simulator(params, fast_forward=True).run()
        assert result.refreshes >= 5

    @pytest.mark.parametrize(
        "retention_cycles", [130, 399, 400, 1000, 4096, 9999]
    )
    def test_retention_sweep_is_bit_identical(self, retention_cycles):
        # Odd intervals produce fractional due cycles; powers of two
        # and round numbers produce exact integer deadlines.  All must
        # agree with the per-cycle loop.
        naive_fp, fast_fp, _ = fingerprints(
            idle_params(retention_cycles=retention_cycles)
        )
        assert naive_fp == fast_fp

    def test_skips_stay_clean_under_live_invariants(self):
        simulator = build_simulator(
            idle_params(retention_cycles=1600),
            fast_forward=True,
            check_invariants="raise",
        )
        simulator.run()  # skip.refresh_deadline would raise here
        report = simulator.invariant_report
        assert report.clean
        assert report.skips_checked > 0


class TestQuiescentExactlyAtDeadline:
    def make(self, n_rows=8, retention_cycles=800.0):
        return RefreshScheduler(
            timing=PC100_TIMING,
            n_rows_total=n_rows,
            retention_s=retention_cycles * PC100_TIMING.clock_period_ns
            * 1e-9,
        )

    def test_due_exactly_at_quiescent_cycle(self):
        # Pin the boundary with an exact integer deadline: quiescent
        # lands on it dead-on, and due() flips exactly there.
        scheduler = self.make()
        scheduler._next_due_cycle = 100.0
        quiescent = scheduler.quiescent_until(5)
        assert quiescent == 100
        assert not scheduler.due(quiescent - 1)
        assert scheduler.due(quiescent)

    def test_quiescent_is_never_past_a_due_cycle(self):
        # Whatever float the interval arithmetic lands on, the skip
        # target must be the *first* cycle where due() is true.
        scheduler = self.make()
        assert scheduler.interval_cycles == pytest.approx(100.0)
        scheduler.mark_issued(0)
        quiescent = scheduler.quiescent_until(5)
        assert scheduler.due(quiescent)
        assert not scheduler.due(quiescent - 1)

    def test_fractional_interval_rounds_up_never_late(self):
        scheduler = self.make(n_rows=3)  # interval = 800/3 cycles
        assert scheduler.interval_cycles == pytest.approx(800 / 3)
        scheduler.mark_issued(0)
        quiescent = scheduler.quiescent_until(1)
        assert quiescent == math.ceil(scheduler.interval_cycles)
        # The skip target must not be a cycle where refresh was already
        # due (late) nor one where it is not yet due (early wake is
        # allowed only from the ceiling, by at most one fraction).
        assert not scheduler.due(quiescent - 1)
        assert scheduler.due(quiescent)

    def test_due_now_means_no_skip(self):
        scheduler = self.make()
        assert scheduler.due(0)
        assert scheduler.quiescent_until(0) == 0
        scheduler.mark_issued(0)
        # Past the new deadline, quiescent_until never points backwards.
        assert scheduler.quiescent_until(250) == 250

    def test_controller_quiescence_is_capped_by_refresh(self):
        params = idle_params(retention_cycles=1600)
        simulator = build_simulator(params, fast_forward=True)
        controller = simulator.controller
        scheduler = controller._refresh
        # Idle controller, no traffic: its only future obligation is
        # the refresh deadline, and it must report exactly that cycle.
        assert controller.quiescent_until(0) == scheduler.quiescent_until(0)
        cycle = controller.quiescent_until(0)
        controller.step(cycle)
        assert controller.refreshes_issued + scheduler.refreshes_issued > 0
