"""Tests for repro.power.idd: IDD-based core power."""

import pytest

from repro.errors import ConfigurationError
from repro.power.idd import (
    CorePowerModel,
    EDRAM_IDD,
    IddParameters,
    PC100_IDD,
    StateWeights,
)


class TestIddParameters:
    def test_builtin_parameters_valid(self):
        assert PC100_IDD.vdd == pytest.approx(3.3)
        assert EDRAM_IDD.vdd == pytest.approx(2.5)

    def test_standby_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            IddParameters(
                vdd=3.3,
                idd0=0.09,
                idd2=0.05,  # precharge standby above active standby
                idd3=0.03,
                idd4r=0.12,
                idd4w=0.11,
                idd5=0.15,
            )

    def test_scaled_for_width(self):
        half = EDRAM_IDD.scaled_for_width(128, reference_width_bits=256)
        assert half.idd4r == pytest.approx(EDRAM_IDD.idd4r / 2)
        assert half.idd4w == pytest.approx(EDRAM_IDD.idd4w / 2)
        # Non-datapath currents unchanged.
        assert half.idd0 == EDRAM_IDD.idd0
        assert half.idd2 == EDRAM_IDD.idd2

    def test_scaled_bad_width(self):
        with pytest.raises(ConfigurationError):
            EDRAM_IDD.scaled_for_width(0)


class TestStateWeights:
    def test_remainder_is_precharge_standby(self):
        weights = StateWeights(activating=0.1, reading=0.3, writing=0.2)
        assert weights.precharge_standby == pytest.approx(0.4)

    def test_overfull_rejected(self):
        with pytest.raises(ConfigurationError):
            StateWeights(activating=0.5, reading=0.6)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            StateWeights(reading=-0.1)


class TestCorePowerModel:
    def test_idle_below_busy(self):
        model = CorePowerModel(PC100_IDD)
        assert model.idle_power_w() < model.busy_power_w()

    def test_idle_power_near_standby(self):
        model = CorePowerModel(PC100_IDD)
        standby = PC100_IDD.idd2 * PC100_IDD.vdd
        assert model.idle_power_w() == pytest.approx(
            standby + model.refresh_power_w()
        )

    def test_refresh_power_small_fraction(self):
        # Distributed refresh is a sub-1% duty cycle.
        model = CorePowerModel(PC100_IDD)
        assert model.refresh_power_w() < 0.05 * model.busy_power_w()

    def test_busy_read_vs_write(self):
        model = CorePowerModel(PC100_IDD)
        reads = model.busy_power_w(read_fraction=1.0)
        writes = model.busy_power_w(read_fraction=0.0)
        # IDD4R > IDD4W for this part.
        assert reads > writes

    def test_bad_read_fraction(self):
        with pytest.raises(ConfigurationError):
            CorePowerModel(PC100_IDD).busy_power_w(1.5)

    def test_pc100_busy_power_plausible(self):
        # A streaming PC100 device burns a few hundred mW.
        busy = CorePowerModel(PC100_IDD).busy_power_w()
        assert 0.2 < busy < 0.6
