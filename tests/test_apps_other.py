"""Tests for repro.apps.graphics, network, storage, markets."""

import pytest

from repro.apps.graphics import GraphicsFrameStore
from repro.apps.markets import (
    MarketSegment,
    SEGMENTS,
    advisability_score,
    rank_segments,
)
from repro.apps.network import SwitchBuffer
from repro.apps.storage import EmbeddedControllerMemory
from repro.errors import ConfigurationError
from repro.units import MBIT


class TestGraphicsFrameStore:
    def test_laptop_store_in_paper_range(self):
        # Section 2: graphics needs 8-32 Mbit, mainly frame storage.
        store = GraphicsFrameStore()
        assert 8 <= store.total_mbit <= 32

    def test_double_buffering_doubles_color(self):
        single = GraphicsFrameStore(double_buffered=False)
        double = GraphicsFrameStore(double_buffered=True)
        assert double.color_buffer_bits == 2 * single.color_buffer_bits

    def test_bandwidth_needs_edram(self):
        # A mid-90s 800x600 pipeline wants several Gbit/s: a couple of
        # 16-bit commodity interfaces' worth of *peak*, i.e. well beyond
        # what one part sustains.
        store = GraphicsFrameStore()
        assert store.total_bandwidth_bits_per_s() > 3e9
        single_sdram_peak = 16 * 100e6
        assert store.total_bandwidth_bits_per_s() > 2 * single_sdram_peak

    def test_overdraw_scales_fill(self):
        flat = GraphicsFrameStore(depth_complexity=1.0)
        deep = GraphicsFrameStore(depth_complexity=3.0)
        assert deep.fill_bandwidth_bits_per_s() == pytest.approx(
            3 * flat.fill_bandwidth_bits_per_s()
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GraphicsFrameStore(depth_complexity=0.5)


class TestSwitchBuffer:
    def test_paper_high_end_figures(self):
        # Section 2: switches need up to 128 Mbit and 512-bit widths.
        # A 16-port gigabit-class box lands exactly there.
        big = SwitchBuffer(
            n_ports=16,
            line_rate_bits_per_s=1.25e9,
            buffering_s=2e-3,
        )
        assert 32 < big.buffer_mbit <= 128
        assert big.interface_width_bits(143e6) == 512

    def test_buffer_scales_with_ports(self):
        small = SwitchBuffer(n_ports=4)
        large = SwitchBuffer(n_ports=16)
        assert large.buffer_bits == 4 * small.buffer_bits

    def test_bandwidth_is_twice_linerate_with_speedup(self):
        switch = SwitchBuffer(n_ports=8, speedup=1.0)
        assert switch.memory_bandwidth_bits_per_s() == pytest.approx(
            2 * switch.aggregate_rate_bits_per_s
        )

    def test_width_power_of_two(self):
        switch = SwitchBuffer()
        width = switch.interface_width_bits(143e6)
        assert width & (width - 1) == 0

    def test_cells_buffered(self):
        switch = SwitchBuffer()
        assert switch.cells_buffered() == switch.buffer_bits // 424

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SwitchBuffer(n_ports=0)


class TestEmbeddedController:
    def test_modest_requirements(self):
        # Section 2: disk/printer memory "more modest ... both in terms
        # of size and bandwidth" than graphics.
        controller = EmbeddedControllerMemory()
        graphics = GraphicsFrameStore()
        assert controller.total_bits < graphics.total_bits
        assert (
            controller.total_bandwidth_bits_per_s()
            < graphics.total_bandwidth_bits_per_s()
        )

    def test_width_modest(self):
        controller = EmbeddedControllerMemory()
        assert controller.interface_width_bits(143e6) <= 64

    def test_total_sums(self):
        controller = EmbeddedControllerMemory()
        assert controller.total_bits == (
            controller.program_bits
            + controller.data_bits
            + controller.media_buffer_bits
        )


class TestAdvisability:
    def test_upgrade_path_vetoes(self):
        # "It is unlikely that edram will capture the PC market for main
        # memory, as the need for flexibility and an upgrade path is too
        # strong."
        score = advisability_score(
            volume_per_year=100_000_000,
            product_lifetime_years=5.0,
            memory_mbit=64.0,
            required_bandwidth_gbyte_per_s=0.8,
            portable=False,
            needs_upgrade_path=True,
        )
        assert score == 0.0

    def test_unknown_memory_vetoes(self):
        score = advisability_score(
            volume_per_year=10_000_000,
            product_lifetime_years=3.0,
            memory_mbit=16.0,
            required_bandwidth_gbyte_per_s=1.0,
            portable=True,
            needs_upgrade_path=False,
            memory_known_at_design_time=False,
        )
        assert score == 0.0

    def test_laptop_graphics_scores_high(self):
        score = advisability_score(
            volume_per_year=5_000_000,
            product_lifetime_years=2.0,
            memory_mbit=16.0,
            required_bandwidth_gbyte_per_s=1.5,
            portable=True,
            needs_upgrade_path=False,
        )
        assert score >= 0.7

    def test_portable_bonus(self):
        kwargs = dict(
            volume_per_year=5_000_000,
            product_lifetime_years=2.0,
            memory_mbit=16.0,
            required_bandwidth_gbyte_per_s=1.5,
            needs_upgrade_path=False,
        )
        assert advisability_score(
            portable=True, **kwargs
        ) > advisability_score(portable=False, **kwargs)

    def test_pc_main_memory_ranks_last(self):
        ranked = rank_segments()
        assert ranked[-1][0].name == "PC main memory"
        assert ranked[-1][1] == 0.0

    def test_all_paper_segments_present(self):
        names = {segment.name for segment in SEGMENTS}
        assert "network switch" in names
        assert "hard-disk controller" in names
        assert "printer controller" in names

    def test_segment_validation(self):
        with pytest.raises(ConfigurationError):
            MarketSegment(
                name="bad",
                memory_mbit_range=(8, 4),
                interface_width_range=(16, 64),
                volume_per_year=1,
                portable=False,
                needs_upgrade_path=False,
                driver="cost",
            )
