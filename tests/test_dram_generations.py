"""Tests for repro.dram.generations and repro.apps.pcmemory."""

import pytest

from repro.apps.pcmemory import (
    PC_GENERATIONS,
    PCGeneration,
    device_growth_rate,
    forced_overprovision_mbit,
    system_growth_rate,
)
from repro.dram.generations import (
    GENERATIONS,
    bandwidth_growth,
    burst_granularity_bits,
    generation,
    latency_improvement_per_year,
)
from repro.errors import ConfigurationError


class TestGenerationLadder:
    def test_two_orders_of_magnitude_bandwidth(self):
        # Section 4: peak device bandwidth "+2 orders of magnitude".
        assert bandwidth_growth(1985, 1999) >= 100

    def test_latency_only_ten_percent_per_year(self):
        # Access times decline ~10%/yr at most — far slower than BW.
        rate = latency_improvement_per_year(1985, 1999)
        assert 0.02 < rate < 0.12

    def test_bandwidth_paid_with_burst_length(self):
        # "The increased bandwidth must be paid with increased
        # latencies and burst lengths": burst granularity grows
        # monotonically along the ladder.
        granularities = [burst_granularity_bits(g) for g in GENERATIONS]
        assert granularities == sorted(granularities)
        assert granularities[-1] >= 64 * granularities[0]

    def test_mechanisms_present(self):
        # The four mechanisms the paper lists: synchronous interfaces,
        # row-as-cache (burst > 1), prefetch (wide internal fetch) and
        # multiple banks all appear by the SDRAM generations.
        pc100 = generation("SDRAM-100 (PC100)")
        assert pc100.synchronous
        assert pc100.burst_words > 1
        assert pc100.banks >= 4

    def test_chronological(self):
        years = [entry.year for entry in GENERATIONS]
        assert years == sorted(years)

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError):
            generation("DDR5")

    def test_growth_needs_valid_years(self):
        with pytest.raises(ConfigurationError):
            bandwidth_growth(1900, 1999)
        with pytest.raises(ConfigurationError):
            latency_improvement_per_year(1999, 1990)


class TestPCGranularity:
    def test_system_grows_half_as_fast_as_devices(self):
        # Section 4's headline: systems grew at roughly half the rate
        # of devices — i.e. half as many doublings over the span.
        import math

        device_rate = device_growth_rate()
        system_rate = system_growth_rate()
        assert system_rate < device_rate
        doubling_ratio = math.log(1 + device_rate) / math.log(
            1 + system_rate
        )
        assert doubling_ratio == pytest.approx(2.0, abs=0.3)

    def test_increment_fraction_grows(self):
        # The minimum upgrade becomes a larger share of the system:
        # granularity worsens over the generations.
        fractions = [
            entry.increment_fraction_of_system for entry in PC_GENERATIONS
        ]
        assert fractions[-1] > fractions[0]

    def test_1998_increment_is_64_mbyte(self):
        pc98 = PC_GENERATIONS[-1]
        # 64-bit bus / x16 devices = 4 devices x 64 Mbit = 256 Mbit.
        assert pc98.devices_per_rank == 4
        assert pc98.increment_mbit == 256

    def test_forced_overprovision(self):
        pc98 = PC_GENERATIONS[-1]
        # Wanting 300 Mbit forces 2 ranks = 512 Mbit.
        extra = forced_overprovision_mbit(300, pc98)
        assert extra == pytest.approx(212.0)

    def test_exact_fit_no_overprovision(self):
        pc98 = PC_GENERATIONS[-1]
        assert forced_overprovision_mbit(256, pc98) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PCGeneration(
                year=1998,
                device_capacity_mbit=64,
                device_width_bits=16,
                bus_width_bits=60,  # not a multiple
                typical_system_mbyte=32,
            )
        with pytest.raises(ConfigurationError):
            forced_overprovision_mbit(0, PC_GENERATIONS[-1])
