"""Cross-module integration tests.

The most valuable one validates the *analytic* evaluator against the
*cycle-level* simulator on matched configurations: the closed-form
sustainable-bandwidth model must track the simulator's measurement
within a coarse band across organizations, or the design-space sweep
would be exploring with a broken compass.
"""

import pytest

from repro.controller import MemoryController
from repro.core import ApplicationRequirements, Evaluator
from repro.dram import AddressMapping, EDRAMMacro, MappingScheme
from repro.sim import MemorySystemSimulator, SimulationConfig
from repro.traffic import MemoryClient, RandomPattern, SequentialPattern
from repro.units import MBIT


def simulate_efficiency(macro: EDRAMMacro, locality: float) -> float:
    """Measure sustained/peak for a saturating mix of given locality."""
    device = macro.device()
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(
            device.organization, MappingScheme.ROW_BANK_COL
        ),
    )
    words = device.organization.total_words
    stream_rate = 0.4 * locality
    random_rate = 0.4 * (1.0 - locality)
    clients = []
    if stream_rate > 0.001:
        clients.append(
            MemoryClient(
                name="stream",
                pattern=SequentialPattern(base=0, length=words),
                rate=min(1.0, stream_rate),
            )
        )
    if random_rate > 0.001:
        clients.append(
            MemoryClient(
                name="random",
                pattern=RandomPattern(base=0, length=words, seed=3),
                rate=min(1.0, random_rate),
            )
        )
    simulator = MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(cycles=8000, warmup_cycles=800),
    )
    return simulator.run().bandwidth_efficiency


class TestAnalyticVsSimulated:
    @pytest.mark.parametrize(
        "banks,page_bits,locality",
        [
            (1, 1024, 0.0),
            (1, 2048, 1.0),
            (4, 2048, 0.5),
            (8, 4096, 0.0),
        ],
    )
    def test_efficiency_model_tracks_simulator(
        self, banks, page_bits, locality
    ):
        macro = EDRAMMacro.build(
            size_bits=4 * MBIT, width=64, banks=banks, page_bits=page_bits
        )
        requirements = ApplicationRequirements(
            name="x",
            capacity_bits=4 * MBIT,
            sustained_bandwidth_bits_per_s=1e9,
            locality=locality,
        )
        metrics = Evaluator().evaluate_macro(macro, requirements)
        analytic = (
            metrics.sustained_bandwidth_bits_per_s
            / metrics.peak_bandwidth_bits_per_s
        )
        simulated = simulate_efficiency(macro, locality)
        # Offered load caps the simulated figure at 160% of 0.4*4 beats;
        # compare against the min of analytic prediction and offered.
        offered = 0.4 * 4  # requests/cycle x beats
        expected = min(analytic, offered)
        assert simulated == pytest.approx(expected, abs=0.25)

    def test_model_and_simulator_agree_on_ordering(self):
        weak = EDRAMMacro.build(
            size_bits=4 * MBIT, width=64, banks=1, page_bits=1024
        )
        strong = EDRAMMacro.build(
            size_bits=4 * MBIT, width=64, banks=8, page_bits=4096
        )
        requirements = ApplicationRequirements(
            name="x",
            capacity_bits=4 * MBIT,
            sustained_bandwidth_bits_per_s=1e9,
            locality=0.3,
        )
        evaluator = Evaluator()
        analytic_weak = evaluator.evaluate_macro(weak, requirements)
        analytic_strong = evaluator.evaluate_macro(strong, requirements)
        simulated_weak = simulate_efficiency(weak, 0.3)
        simulated_strong = simulate_efficiency(strong, 0.3)
        assert (
            analytic_strong.sustained_bandwidth_bits_per_s
            >= analytic_weak.sustained_bandwidth_bits_per_s
        )
        assert simulated_strong >= simulated_weak - 0.02


class TestControllerTraceCrossValidation:
    """The controller's live command stream replays cleanly through the
    independent trace checker — two implementations of the protocol
    rules agreeing on thousands of commands."""

    def _run_and_check(self, controller_cls, **kwargs):
        from repro.controller.controller import ControllerConfig
        from repro.dram.tracecheck import TraceChecker
        from repro.traffic import RandomPattern

        macro = EDRAMMacro.build(
            size_bits=4 * MBIT, width=64, banks=4, page_bits=2048
        )
        device = macro.device()
        controller = controller_cls(
            device=device,
            mapping=AddressMapping(
                device.organization, MappingScheme.ROW_BANK_COL
            ),
            config=ControllerConfig(record_commands=True),
            **kwargs,
        )
        words = device.organization.total_words
        clients = [
            MemoryClient(
                name="s",
                pattern=SequentialPattern(base=0, length=words),
                rate=0.2,
            ),
            MemoryClient(
                name="r",
                pattern=RandomPattern(base=0, length=words, seed=9),
                rate=0.2,
                read_fraction=0.5,
                seed=9,
            ),
        ]
        simulator = MemorySystemSimulator(
            controller=controller,
            clients=clients,
            config=SimulationConfig(cycles=5000, warmup_cycles=0),
        )
        simulator.run()
        checker = TraceChecker(
            organization=device.organization, timing=device.timing
        )
        return controller, checker.check(controller.command_log)

    def test_plain_controller_trace_clean(self):
        controller, report = self._run_and_check(MemoryController)
        assert len(controller.command_log) > 1000
        assert report.clean, report.violations[:3]

    def test_prefetching_controller_trace_clean(self):
        from repro.controller.prefetch import PrefetchingMemoryController

        _, report = self._run_and_check(PrefetchingMemoryController)
        assert report.clean, report.violations[:3]

    def test_closed_page_trace_clean(self):
        from repro.controller.page_policy import ClosedPagePolicy

        _, report = self._run_and_check(
            MemoryController, page_policy=ClosedPagePolicy()
        )
        assert report.clean, report.violations[:3]


class TestEndToEndWorkflow:
    def test_full_paper_workflow(self):
        """Advise -> explore -> quantize -> verify one pick by simulation."""
        from repro.core import Advisor, DesignSpaceExplorer, Quantizer

        requirements = ApplicationRequirements(
            name="workflow",
            capacity_bits=8 * MBIT,
            sustained_bandwidth_bits_per_s=2e9,
            volume_per_year=10_000_000,
            portable=True,
            locality=0.7,
        )
        advice = Advisor().advise(requirements)
        assert advice.recommended
        result = DesignSpaceExplorer().explore(requirements)
        named = Quantizer().named_solutions(result)
        balanced = next(s for s in named if s.name == "balanced")
        # Re-derive the macro from the label's parameters and simulate.
        label = balanced.metrics.label
        assert label.startswith("eDRAM")
        assert balanced.metrics.sustained_bandwidth_bits_per_s >= 2e9

    def test_mpeg2_to_test_flow_chain(self):
        """Budget an MPEG2 memory, build it, then cost its testing."""
        from repro.apps import MPEG2MemoryBudget
        from repro.core import Quantizer
        from repro.dft import (
            BISTController,
            MARCH_C_MINUS,
            TestCostModel,
            LOGIC_TESTER,
        )

        budget = MPEG2MemoryBudget()
        size = Quantizer().snap_size(budget.total_bits)
        macro = EDRAMMacro.build(size_bits=size, width=128)
        model = TestCostModel(
            tester=LOGIC_TESTER,
            bist=BISTController(internal_width_bits=macro.width),
        )
        cost = model.cost_per_die(MARCH_C_MINUS, macro.size_bits)
        assert 0 < cost < 1.0
