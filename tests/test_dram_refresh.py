"""Tests for repro.dram.refresh: distributed refresh scheduling."""

import pytest

from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import EDRAM_TIMING, PC100_TIMING
from repro.errors import ConfigurationError


class TestScheduling:
    def test_due_immediately_then_spaced(self):
        scheduler = RefreshScheduler(
            timing=PC100_TIMING, n_rows_total=4096
        )
        assert scheduler.due(0)
        scheduler.mark_issued(0)
        interval = scheduler.interval_cycles
        assert not scheduler.due(int(interval) - 2)
        assert scheduler.due(int(interval) + 1)

    def test_interval_matches_retention(self):
        scheduler = RefreshScheduler(
            timing=PC100_TIMING, n_rows_total=4096, retention_s=64e-3
        )
        # 64 ms at 100 MHz = 6.4e6 cycles over 4096 rows.
        assert scheduler.interval_cycles == pytest.approx(6.4e6 / 4096)

    def test_rows_per_command_reduces_commands(self):
        one = RefreshScheduler(
            timing=PC100_TIMING, n_rows_total=4096, rows_per_command=1
        )
        four = RefreshScheduler(
            timing=PC100_TIMING, n_rows_total=4096, rows_per_command=4
        )
        assert four.commands_per_period == one.commands_per_period // 4
        assert four.interval_cycles == pytest.approx(
            4 * one.interval_cycles
        )

    def test_all_rows_refreshed_within_period(self):
        scheduler = RefreshScheduler(
            timing=PC100_TIMING, n_rows_total=256, retention_s=64e-3
        )
        period_cycles = int(64e-3 * PC100_TIMING.clock_hz)
        issued = 0
        cycle = 0
        while cycle < period_cycles:
            if scheduler.due(cycle):
                scheduler.mark_issued(cycle)
                issued += 1
            cycle += int(scheduler.interval_cycles // 4) or 1
        assert issued >= 256

    def test_counter_tracks_issues(self):
        scheduler = RefreshScheduler(
            timing=EDRAM_TIMING, n_rows_total=64
        )
        scheduler.mark_issued(0)
        scheduler.mark_issued(int(scheduler.interval_cycles) + 1)
        assert scheduler.refreshes_issued == 2


class TestOverhead:
    def test_overhead_small_for_many_rows(self):
        scheduler = RefreshScheduler(
            timing=PC100_TIMING, n_rows_total=4096
        )
        assert scheduler.bandwidth_overhead() < 0.01

    def test_overhead_grows_with_short_retention(self):
        long = RefreshScheduler(
            timing=PC100_TIMING, n_rows_total=4096, retention_s=64e-3
        )
        short = RefreshScheduler(
            timing=PC100_TIMING, n_rows_total=4096, retention_s=8e-3
        )
        assert short.bandwidth_overhead() > long.bandwidth_overhead()

    def test_overhead_capped_at_one(self):
        scheduler = RefreshScheduler(
            timing=PC100_TIMING, n_rows_total=1 << 20, retention_s=1e-3
        )
        assert scheduler.bandwidth_overhead() == 1.0


class TestValidation:
    def test_zero_rows(self):
        with pytest.raises(ConfigurationError):
            RefreshScheduler(timing=PC100_TIMING, n_rows_total=0)

    def test_bad_retention(self):
        with pytest.raises(ConfigurationError):
            RefreshScheduler(
                timing=PC100_TIMING, n_rows_total=64, retention_s=0.0
            )

    def test_negative_cycle(self):
        scheduler = RefreshScheduler(timing=PC100_TIMING, n_rows_total=64)
        with pytest.raises(ConfigurationError):
            scheduler.mark_issued(-1)
