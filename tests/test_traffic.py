"""Tests for repro.traffic: patterns, clients, traces."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.traffic.client import ClientKind, MemoryClient
from repro.traffic.patterns import (
    BlockPattern,
    MotionCompensationPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
)
from repro.traffic.trace import Trace, TraceEntry


def take(pattern, n):
    return list(itertools.islice(pattern.addresses(), n))


class TestSequentialPattern:
    def test_linear_then_wraps(self):
        pattern = SequentialPattern(base=100, length=4)
        assert take(pattern, 6) == [100, 101, 102, 103, 100, 101]

    def test_stays_in_window(self):
        pattern = SequentialPattern(base=10, length=50)
        assert all(10 <= a < 60 for a in take(pattern, 200))

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            SequentialPattern(base=0, length=0)


class TestStridedPattern:
    def test_stride(self):
        pattern = StridedPattern(base=0, length=16, stride=4)
        assert take(pattern, 5) == [0, 4, 8, 12, 0]

    def test_zero_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            StridedPattern(base=0, length=16, stride=0)


class TestRandomPattern:
    def test_reproducible(self):
        a = take(RandomPattern(base=0, length=1000, seed=7), 100)
        b = take(RandomPattern(base=0, length=1000, seed=7), 100)
        assert a == b

    def test_different_seeds_differ(self):
        a = take(RandomPattern(base=0, length=1000, seed=1), 100)
        b = take(RandomPattern(base=0, length=1000, seed=2), 100)
        assert a != b

    def test_in_window(self):
        addresses = take(RandomPattern(base=500, length=100, seed=0), 2000)
        assert all(500 <= a < 600 for a in addresses)

    def test_covers_window(self):
        addresses = take(RandomPattern(base=0, length=16, seed=0), 2000)
        assert set(addresses) == set(range(16))


class TestBlockPattern:
    def test_first_tile_visits_rows(self):
        pattern = BlockPattern(
            base=0, width=8, height=8, block_w=2, block_h=2
        )
        first_tile = take(pattern, 4)
        # 2x2 tile at origin: (0,0) (0,1) then next raster line.
        assert first_tile == [0, 1, 8, 9]

    def test_addresses_in_surface(self):
        pattern = BlockPattern(
            base=100, width=16, height=16, block_w=4, block_h=4
        )
        addresses = take(pattern, 16 * 16)
        assert all(100 <= a < 100 + 256 for a in addresses)

    def test_tile_spans_multiple_dram_pages(self):
        # The structural page-miss source: a 16-line tile touches 16
        # distinct raster lines, each potentially a different page.
        pattern = BlockPattern(
            base=0, width=720, height=32, block_w=16, block_h=16
        )
        one_tile = take(pattern, 16 * 16)
        lines = {a // 720 for a in one_tile}
        assert len(lines) == 16

    def test_bad_block(self):
        with pytest.raises(ConfigurationError):
            BlockPattern(base=0, width=8, height=8, block_w=9, block_h=2)


class TestMotionCompensationPattern:
    def test_reproducible(self):
        kwargs = dict(base=0, width=64, height=64, seed=11)
        a = take(MotionCompensationPattern(**kwargs), 512)
        b = take(MotionCompensationPattern(**kwargs), 512)
        assert a == b

    def test_in_frame(self):
        pattern = MotionCompensationPattern(
            base=1000, width=64, height=64, max_displacement=8, seed=3
        )
        addresses = take(pattern, 4096)
        assert all(1000 <= a < 1000 + 64 * 64 for a in addresses)

    def test_displacement_moves_blocks(self):
        # Compare a full frame of tiles: corner tiles may clip to the
        # same position, but across 16 tiles the displaced stream must
        # diverge from the static one.
        static = take(
            MotionCompensationPattern(
                base=0, width=64, height=64, max_displacement=0, seed=1
            ),
            4096,
        )
        moving = take(
            MotionCompensationPattern(
                base=0, width=64, height=64, max_displacement=16, seed=1
            ),
            4096,
        )
        assert static != moving


class TestMemoryClient:
    def _client(self, rate):
        return MemoryClient(
            name="c",
            pattern=SequentialPattern(base=0, length=1024),
            rate=rate,
        )

    def test_rate_pacing(self):
        client = self._client(0.25)
        issued = 0
        for cycle in range(400):
            if client.wants_to_issue(cycle):
                client.next_request()
                issued += 1
            else:
                client.tick()
        assert issued == pytest.approx(100, abs=2)

    def test_full_rate(self):
        client = self._client(1.0)
        issued = 0
        for cycle in range(100):
            if client.wants_to_issue(cycle):
                client.next_request()
                issued += 1
            else:
                client.tick()
        assert issued == 100

    def test_read_fraction_extremes(self):
        reader = MemoryClient(
            name="r",
            pattern=SequentialPattern(base=0, length=64),
            rate=1.0,
            read_fraction=1.0,
        )
        writer = MemoryClient(
            name="w",
            pattern=SequentialPattern(base=0, length=64),
            rate=1.0,
            read_fraction=0.0,
        )
        assert reader.next_request()[1] is True
        assert writer.next_request()[1] is False

    def test_bad_rate(self):
        with pytest.raises(ConfigurationError):
            self._client(0.0)
        with pytest.raises(ConfigurationError):
            self._client(1.5)


class TestTrace:
    def test_time_ordering_enforced(self):
        trace = Trace()
        trace.append(TraceEntry(cycle=5, client="a", address=0, is_read=True))
        with pytest.raises(ConfigurationError):
            trace.append(
                TraceEntry(cycle=3, client="a", address=1, is_read=True)
            )

    def test_read_fraction(self):
        trace = Trace()
        trace.append(TraceEntry(cycle=0, client="a", address=0, is_read=True))
        trace.append(
            TraceEntry(cycle=1, client="a", address=1, is_read=False)
        )
        assert trace.read_fraction() == pytest.approx(0.5)

    def test_page_analytics(self):
        trace = Trace()
        for cycle, address in enumerate([0, 1, 130, 2, 300]):
            trace.append(
                TraceEntry(
                    cycle=cycle, client="a", address=address, is_read=True
                )
            )
        assert trace.unique_pages(words_per_page=128) == 3
        assert trace.page_transitions(words_per_page=128) == 3

    def test_clients_in_order(self):
        trace = Trace()
        trace.append(TraceEntry(cycle=0, client="b", address=0, is_read=True))
        trace.append(TraceEntry(cycle=1, client="a", address=0, is_read=True))
        trace.append(TraceEntry(cycle=2, client="b", address=0, is_read=True))
        assert trace.clients() == ["b", "a"]
