"""Tests for the worker supervisor (repro workers start --supervise).

Fast paths (fake processes, direct ``_respawn``/``poll`` calls) cover
the bookkeeping: bounded exponential respawn backoff, the respawn cap,
and freeze detection off a backdated heartbeat file.  Two slower tests
spawn real worker processes to check the full loop: the fleet drains a
queue to completion, and ``drain()`` SIGTERMs idle workers into clean
(code 0) exits.
"""

import os
import time

import pytest

from repro.core.executor import (
    WORKERS,
    WorkQueue,
    atomic_write_json,
)
from repro.core.supervisor import WorkerSupervisor
from repro.errors import ConfigurationError


# Module-level: worker processes unpickle queue tasks by reference.
def _double(x):
    return x * 2


class _FakeProc:
    """Stand-in process with a scriptable liveness answer."""

    def __init__(self, alive=True):
        self.alive = alive
        self.killed = False

    def poll(self):
        return None if self.alive else 0

    def kill(self):
        self.killed = True
        self.alive = False

    def wait(self, timeout=None):
        return 0


def _queue_with_manifest(tmp_path, chunks=()):
    queue = WorkQueue(tmp_path / "q")
    queue.reset()
    queue.write_task(_double, catch=())
    for index, item in enumerate(chunks):
        queue.publish_chunk(index, [index], [item], None)
    atomic_write_json(
        queue.root / "manifest.json", {"lease_timeout_s": 5.0}
    )
    return queue


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_workers": 0},
            {"max_respawns": -1},
            {"backoff_s": -0.1},
            {"heartbeat_timeout_s": 0.0},
            {"poll_s": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, tmp_path, overrides):
        with pytest.raises(ConfigurationError):
            WorkerSupervisor(tmp_path / "q", **overrides)


class TestHeartbeatAge:
    def test_never_seen_is_none(self, tmp_path):
        queue = _queue_with_manifest(tmp_path)
        supervisor = WorkerSupervisor(queue.root)
        assert supervisor.heartbeat_age_s("ghost") is None

    def test_fresh_beat_is_young(self, tmp_path):
        queue = _queue_with_manifest(tmp_path)
        supervisor = WorkerSupervisor(queue.root)
        queue.heartbeat("w0", 0)
        age = supervisor.heartbeat_age_s("w0")
        assert age is not None
        assert age < 5.0


class TestRespawnBackoff:
    def _supervisor(self, tmp_path, **overrides):
        queue = _queue_with_manifest(tmp_path)
        kwargs = dict(n_workers=1, max_respawns=3, backoff_s=0.5)
        kwargs.update(overrides)
        supervisor = WorkerSupervisor(queue.root, **kwargs)
        supervisor.spawn_calls = 0

        def _fake_spawn(slot):
            supervisor.spawn_calls += 1
            supervisor.stats["spawned"] += 1
            slot.proc = _FakeProc(alive=False)  # dies immediately

        supervisor._spawn = _fake_spawn
        return supervisor

    def test_backoff_doubles_between_respawns(self, tmp_path):
        supervisor = self._supervisor(tmp_path)
        slot = supervisor._slots[0]
        slot.proc = _FakeProc(alive=False)

        supervisor._respawn(slot, now=100.0)
        assert supervisor.spawn_calls == 1
        assert slot.retry_at == pytest.approx(100.5)

        # Still inside the backoff window: no spawn.
        supervisor._respawn(slot, now=100.4)
        assert supervisor.spawn_calls == 1

        supervisor._respawn(slot, now=100.6)
        assert supervisor.spawn_calls == 2
        assert slot.retry_at == pytest.approx(100.6 + 1.0)

        supervisor._respawn(slot, now=102.0)
        assert supervisor.spawn_calls == 3
        assert slot.retry_at == pytest.approx(102.0 + 2.0)

    def test_respawn_cap_stops_the_fork_bomb(self, tmp_path):
        supervisor = self._supervisor(tmp_path, max_respawns=2)
        slot = supervisor._slots[0]
        slot.proc = _FakeProc(alive=False)
        now = 0.0
        for _ in range(10):
            supervisor._respawn(slot, now)
            now += 100.0  # always past any backoff window
        assert supervisor.spawn_calls == 2
        assert supervisor.stats["respawned"] == 2

    def test_poll_respawns_dead_slot(self, tmp_path):
        supervisor = self._supervisor(tmp_path)
        slot = supervisor._slots[0]
        slot.proc = _FakeProc(alive=False)
        supervisor.poll()
        assert supervisor.spawn_calls == 1
        assert supervisor.stats["respawned"] == 1


class TestFreezeDetection:
    def test_silent_worker_is_killed_and_respawned(self, tmp_path):
        queue = _queue_with_manifest(tmp_path)
        supervisor = WorkerSupervisor(
            queue.root, n_workers=1, heartbeat_timeout_s=1.0
        )
        slot = supervisor._slots[0]
        frozen = _FakeProc(alive=True)
        slot.proc = frozen

        respawned = []
        supervisor._spawn = lambda s: respawned.append(s.worker_id)

        # A beat, backdated far past the timeout: alive but silent.
        queue.heartbeat(slot.worker_id, 0)
        path = queue.directory(WORKERS) / f"{slot.worker_id}.json"
        stale = time.time() - 60.0
        os.utime(path, (stale, stale))

        supervisor.poll()
        assert frozen.killed
        assert supervisor.stats["killed_frozen"] == 1
        assert respawned == [slot.worker_id]

    def test_beating_worker_is_left_alone(self, tmp_path):
        queue = _queue_with_manifest(tmp_path)
        supervisor = WorkerSupervisor(
            queue.root, n_workers=1, heartbeat_timeout_s=1.0
        )
        slot = supervisor._slots[0]
        healthy = _FakeProc(alive=True)
        slot.proc = healthy
        queue.heartbeat(slot.worker_id, 0)

        supervisor.poll()
        assert not healthy.killed
        assert supervisor.stats["killed_frozen"] == 0


class TestRealFleet:
    def test_run_exits_when_queue_is_done(self, tmp_path):
        queue = _queue_with_manifest(tmp_path, chunks=[1, 2, 3])
        queue.mark_done("test")
        supervisor = WorkerSupervisor(
            queue.root, n_workers=2, poll_s=0.05, max_idle_s=10.0
        )
        stats = supervisor.run(install_signal_handlers=False)
        assert stats["spawned"] == 2
        assert stats["drained"] is False
        assert supervisor.alive_workers() == 0

    def test_drain_stops_idle_workers_gracefully(self, tmp_path):
        queue = _queue_with_manifest(tmp_path)  # no chunks: idle fleet
        supervisor = WorkerSupervisor(
            queue.root,
            n_workers=2,
            poll_s=0.05,
            max_idle_s=60.0,
            worker_poll_s=0.02,
        )
        supervisor.start()
        try:
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                ages = [
                    supervisor.heartbeat_age_s(slot.worker_id)
                    for slot in supervisor._slots
                ]
                if all(age is not None for age in ages):
                    break
                time.sleep(0.05)
            assert supervisor.alive_workers() == 2
            supervisor.drain(timeout_s=15.0)
            assert supervisor.alive_workers() == 0
            # Graceful SIGTERM drain, not a kill: clean exit codes.
            for slot in supervisor._slots:
                assert slot.proc.returncode == 0
        finally:
            supervisor.drain(timeout_s=5.0)
