"""Tests for repro.inject.campaign: measured vs analytical coverage."""

import pytest

from repro.dft.faults import Fault, FaultKind, FaultyArray
from repro.dft.march import MARCH_C_RETENTION, MATS_PLUS
from repro.dft.redundancy import allocate_spares
from repro.errors import ConfigurationError
from repro.inject.campaign import (
    CAMPAIGN_TESTS,
    CampaignConfig,
    analytical_detection,
    predicted_cells,
    run_campaign,
)

ROWS = COLS = 16


def _array_with(fault: Fault) -> FaultyArray:
    array = FaultyArray(rows=ROWS, cols=COLS)
    array.inject(fault)
    return array


def _single_faults() -> list:
    """One representative fault per kind, placed mid-array."""
    return [
        Fault(kind=FaultKind.STUCK_AT_0, row=3, col=4),
        Fault(kind=FaultKind.STUCK_AT_1, row=5, col=6),
        Fault(kind=FaultKind.TRANSITION, row=7, col=2),
        Fault(kind=FaultKind.COUPLING_INV, row=2, col=2, aggressor=(9, 9)),
        Fault(kind=FaultKind.WORD_LINE, row=10, col=0),
        Fault(kind=FaultKind.BIT_LINE, row=0, col=11),
        Fault(kind=FaultKind.RETENTION, row=12, col=13),
    ]


class TestAnalyticalDetectionProperty:
    """Every fault kind injected alone is detected by every campaign
    test at exactly the analytically predicted cells."""

    @pytest.mark.parametrize(
        "fault", _single_faults(), ids=lambda f: f.kind.value
    )
    @pytest.mark.parametrize(
        "test", CAMPAIGN_TESTS, ids=lambda t: t.name
    )
    def test_measured_equals_predicted(self, test, fault):
        pause_s = 0.2
        array = _array_with(fault)
        result = test.run(array, pause_s=pause_s)
        predicted = analytical_detection(
            test, fault, ROWS, COLS, pause_s=pause_s
        )
        assert result.failing_cells == predicted

    @pytest.mark.parametrize(
        "fault", _single_faults(), ids=lambda f: f.kind.value
    )
    def test_mats_plus_rate_matches_prediction(self, fault):
        array = _array_with(fault)
        truth = array.faulty_cells()
        result = MATS_PLUS.run(array)
        predicted = analytical_detection(MATS_PLUS, fault, ROWS, COLS)
        assert result.detected(truth) == len(predicted) / len(truth)

    def test_retention_pause_boundary(self):
        fault = Fault(kind=FaultKind.RETENTION, row=1, col=1)
        # Exactly at the threshold: retained, so not predicted and not
        # measured.
        at = analytical_detection(
            MARCH_C_RETENTION, fault, ROWS, COLS, pause_s=0.1
        )
        assert at == set()
        array = _array_with(fault)
        assert MARCH_C_RETENTION.run(array, pause_s=0.1).failing_cells == set()
        beyond = analytical_detection(
            MARCH_C_RETENTION, fault, ROWS, COLS, pause_s=0.11
        )
        assert beyond == {(1, 1)}

    def test_retention_invisible_without_pause(self):
        fault = Fault(kind=FaultKind.RETENTION, row=1, col=1)
        assert (
            analytical_detection(MATS_PLUS, fault, ROWS, COLS, pause_s=0.5)
            == set()
        )


class TestRepairProperty:
    """Spare allocation over the campaign's measured fault map agrees
    with allocation over the ground truth."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_measured_vs_truth_verdicts(self, seed):
        config = CampaignConfig(seed=seed, n_maps=1)
        array = config.build_array(0)
        truth = array.faulty_cells()
        measured: set = set()
        for test in CAMPAIGN_TESTS:
            fresh = config.build_array(0)
            measured |= test.run(
                fresh, pause_s=config.pause_s
            ).failing_cells
        measured_plan = allocate_spares(
            measured, config.spare_rows, config.spare_cols
        )
        truth_plan = allocate_spares(
            truth, config.spare_rows, config.spare_cols
        )
        assert measured_plan.repaired == truth_plan.repaired


class TestRunCampaign:
    def test_campaign_matches_predictions(self):
        report = run_campaign(CampaignConfig(seed=0, n_maps=3))
        assert report.ok, report.summary()
        assert len(report.maps) == 3
        for entry in report.maps:
            for outcome in entry["tests"].values():
                assert outcome["false_positives"] == 0

    def test_campaign_reproducible(self):
        config = CampaignConfig(seed=7, n_maps=2)
        assert run_campaign(config).to_dict() == run_campaign(
            config
        ).to_dict()

    def test_retention_only_seen_by_pausing_test(self):
        config = CampaignConfig(
            seed=1, n_maps=1, n_cell_faults=12, n_line_faults=0
        )
        report = run_campaign(config)
        entry = report.maps[0]
        paused = entry["tests"][MARCH_C_RETENTION.name]
        dry = entry["tests"][MATS_PLUS.name]
        assert paused["predicted_cells"] >= dry["predicted_cells"]

    def test_write_json(self, tmp_path):
        import json

        path = tmp_path / "campaign.json"
        run_campaign(CampaignConfig(n_maps=1)).write_json(path)
        payload = json.loads(path.read_text())
        assert payload["ok"] is True

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(rows=0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(n_maps=0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(rows=2, cols=2, n_cell_faults=5)

    def test_predicted_cells_union(self):
        array = FaultyArray(rows=ROWS, cols=COLS)
        array.inject(Fault(kind=FaultKind.STUCK_AT_0, row=0, col=0))
        array.inject(Fault(kind=FaultKind.WORD_LINE, row=5, col=0))
        predicted = predicted_cells(MATS_PLUS, array, pause_s=0.0)
        assert (0, 0) in predicted
        assert all((5, c) in predicted for c in range(COLS))
