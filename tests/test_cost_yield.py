"""Tests for repro.cost.yield_model: defect yield and repair."""

import pytest

from repro.cost.yield_model import (
    YieldModel,
    negative_binomial_yield,
    poisson_yield,
    redundancy_repair_yield,
)
from repro.errors import ConfigurationError


class TestPoissonYield:
    def test_zero_area_is_perfect(self):
        assert poisson_yield(0.0, 1.0) == 1.0

    def test_zero_defects_is_perfect(self):
        assert poisson_yield(100.0, 0.0) == 1.0

    def test_known_value(self):
        # 100 mm^2 at 1 defect/cm^2 -> lambda = 1 -> e^-1.
        assert poisson_yield(100.0, 1.0) == pytest.approx(0.3679, abs=1e-3)

    def test_monotone_decreasing_in_area(self):
        ys = [poisson_yield(a, 0.8) for a in (10, 50, 100, 200)]
        assert ys == sorted(ys, reverse=True)

    def test_negative_area_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_yield(-1.0, 0.8)


class TestNegativeBinomial:
    def test_clustering_beats_poisson(self):
        # Clustered defects waste fewer dies: NB yield > Poisson yield.
        assert negative_binomial_yield(100.0, 1.0, alpha=2.0) > poisson_yield(
            100.0, 1.0
        )

    def test_large_alpha_approaches_poisson(self):
        nb = negative_binomial_yield(100.0, 1.0, alpha=1e6)
        assert nb == pytest.approx(poisson_yield(100.0, 1.0), rel=1e-3)

    def test_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            negative_binomial_yield(100.0, 1.0, alpha=0.0)


class TestRepairYield:
    def test_zero_spares_equals_poisson(self):
        assert redundancy_repair_yield(100.0, 1.0, 0) == pytest.approx(
            poisson_yield(100.0, 1.0)
        )

    def test_monotone_in_spares(self):
        ys = [redundancy_repair_yield(150.0, 1.0, k) for k in range(6)]
        assert ys == sorted(ys)
        assert all(y <= 1.0 for y in ys)

    def test_many_spares_near_perfect(self):
        assert redundancy_repair_yield(100.0, 1.0, 20) > 0.999

    def test_known_value_two_spares(self):
        # lambda = 1: P(N <= 2) = e^-1 (1 + 1 + 0.5).
        expected = pytest.approx(0.9197, abs=1e-3)
        assert redundancy_repair_yield(100.0, 1.0, 2) == expected

    def test_negative_spares_rejected(self):
        with pytest.raises(ConfigurationError):
            redundancy_repair_yield(100.0, 1.0, -1)


class TestYieldModel:
    def test_die_yield_composes(self):
        model = YieldModel(defect_density_per_cm2=0.8, memory_spares=4)
        composite = model.die_yield(100.0, 50.0)
        assert composite == pytest.approx(
            model.memory_yield(100.0) * model.logic_yield(50.0)
        )

    def test_repair_gain_at_least_one(self):
        model = YieldModel()
        assert model.repair_gain(120.0) >= 1.0

    def test_repair_gain_grows_with_area(self):
        # Bigger arrays collect more defects, so repair buys more.
        model = YieldModel()
        assert model.repair_gain(200.0) > model.repair_gain(20.0)

    def test_section5_redundancy_levels_story(self):
        # "Different redundancy levels, in order to optimize the yield of
        # the memory module to the specific chip": more spares -> higher
        # yield, with diminishing returns.
        area = 130.0
        yields = [
            YieldModel(memory_spares=k).memory_yield(area)
            for k in (0, 2, 4, 8)
        ]
        assert yields == sorted(yields)
        gain_first = yields[1] - yields[0]
        gain_last = yields[3] - yields[2]
        assert gain_first > gain_last

    def test_invalid_model(self):
        with pytest.raises(ConfigurationError):
            YieldModel(memory_spares=-1)
        with pytest.raises(ConfigurationError):
            YieldModel(clustering_alpha=0.0)
