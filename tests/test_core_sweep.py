"""Tests for repro.core.sweep."""

import pytest

from repro.core.sweep import Sweep, SweepResult
from repro.errors import ConfigurationError, InfeasibleError


class TestSweepMechanics:
    def test_cartesian_product(self):
        sweep = Sweep(axes={"a": [1, 2], "b": [10, 20, 30]})
        assert sweep.n_points == 6
        result = sweep.run(lambda a, b: a * b)
        assert len(result) == 6
        results = sorted(point.result for point in result)
        assert results == [10, 20, 20, 30, 40, 60]

    def test_parameters_recorded(self):
        sweep = Sweep(axes={"x": [3]})
        result = sweep.run(lambda x: x + 1)
        point = result.points[0]
        assert point["x"] == 3
        assert point.result == 4

    def test_skip_errors(self):
        sweep = Sweep(axes={"x": [1, 2, 3]})

        def evaluate(x):
            if x == 2:
                raise InfeasibleError("no")
            return x

        result = sweep.run(evaluate, skip_errors=True)
        assert len(result) == 2

    def test_errors_propagate_by_default(self):
        sweep = Sweep(axes={"x": [1]})

        def evaluate(x):
            raise InfeasibleError("no")

        with pytest.raises(InfeasibleError):
            sweep.run(evaluate)

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            Sweep(axes={"x": []})
        with pytest.raises(ConfigurationError):
            Sweep(axes={})


class TestSweepQueries:
    def _result(self):
        sweep = Sweep(axes={"banks": [1, 2, 4], "page": [1024, 2048]})
        return sweep.run(lambda banks, page: banks * page)

    def test_where(self):
        result = self._result()
        filtered = result.where(banks=2)
        assert len(filtered) == 2
        assert all(point["banks"] == 2 for point in filtered)

    def test_best(self):
        result = self._result()
        best = result.best(lambda value: -value)
        assert best["banks"] == 4
        assert best["page"] == 2048

    def test_series_sorted(self):
        result = self._result().where(page=1024)
        series = result.series("banks", lambda value: value)
        assert series == [(1, 1024), (2, 2048), (4, 4096)]

    def test_best_on_empty(self):
        with pytest.raises(ConfigurationError):
            SweepResult().best(lambda value: value)

    def test_unknown_axis(self):
        result = self._result()
        with pytest.raises(ConfigurationError):
            result.points[0]["missing"]

    def test_to_table(self):
        result = self._result()
        table = result.to_table(
            "t",
            {"banks": "banks", "page": "page", "value": lambda v: v},
        )
        text = table.render()
        assert "banks" in text
        assert table.n_rows == 6


class TestSweepWithLibrary:
    def test_macro_sweep_skipping_unconstructible(self):
        from repro.dram.edram import EDRAMMacro
        from repro.units import MBIT

        sweep = Sweep(
            axes={
                "width": [64, 256, 512],
                "page": [256, 2048],  # 256 is not an offered page size
            }
        )
        result = sweep.run(
            lambda width, page: EDRAMMacro.build(
                size_bits=8 * MBIT, width=width, page_bits=page
            ),
            skip_errors=True,
        )
        # Only the 2048-bit pages survive.
        assert len(result) == 3
        assert all(point["page"] == 2048 for point in result)

    def test_evaluator_sweep_series(self):
        from repro.core.evaluator import Evaluator

        sweep = Sweep(axes={"banks": [1, 2, 4, 8]})
        result = sweep.run(
            lambda banks: Evaluator.bandwidth_efficiency(
                hit_rate=0.0,
                burst_cycles=4,
                prep_cycles=6,
                banks=banks,
                refresh_overhead=0.0,
            )
        )
        series = result.series("banks", lambda efficiency: efficiency)
        efficiencies = [value for _, value in series]
        assert efficiencies == sorted(efficiencies)
