"""Tests for repro.dram.tracecheck and repro.power.battery."""

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.organizations import Organization
from repro.dram.timing import PC100_TIMING
from repro.dram.tracecheck import TraceChecker, streaming_read_trace
from repro.errors import ConfigurationError
from repro.power.battery import (
    Battery,
    PortableSystemPower,
    battery_life_gain_hours,
)


def org():
    return Organization(n_banks=4, n_rows=64, page_bits=2048, word_bits=16)


def checker(**kwargs):
    return TraceChecker(organization=org(), timing=PC100_TIMING, **kwargs)


class TestCleanTraces:
    def test_generated_trace_is_clean(self):
        trace = streaming_read_trace(org(), PC100_TIMING, n_pages=4)
        report = checker().check(trace)
        assert report.clean, report.violations
        assert report.data_beats > 0
        assert report.command_counts["ACT"] == 4
        assert report.command_counts["PRE"] == 4

    def test_row_hits_counted(self):
        trace = streaming_read_trace(org(), PC100_TIMING, n_pages=2)
        report = checker().check(trace)
        reads = report.command_counts["RD"]
        # First read per page is the miss-fill; the rest are hits.
        assert report.row_hits == reads - 2

    def test_utilization_reasonable(self):
        trace = streaming_read_trace(org(), PC100_TIMING, n_pages=8)
        report = checker().check(trace)
        assert 0.5 < report.data_bus_utilization <= 1.0

    def test_summary_text(self):
        trace = streaming_read_trace(org(), PC100_TIMING, n_pages=1)
        assert "clean" in checker().check(trace).summary()

    def test_empty_trace(self):
        report = checker().check([])
        assert report.clean
        assert report.span_cycles == 0


class TestViolationDetection:
    def test_read_without_activate(self):
        trace = [
            Command(kind=CommandType.READ, cycle=0, bank=0, column=0)
        ]
        report = checker().check(trace)
        assert not report.clean
        assert report.violations[0].index == 0
        assert "illegal" in report.violations[0].reason

    def test_column_before_trcd(self):
        trace = [
            Command(kind=CommandType.ACTIVATE, cycle=0, bank=0, row=0),
            Command(kind=CommandType.READ, cycle=1, bank=0, column=0),
        ]
        report = checker().check(trace)
        assert len(report.violations) == 1
        assert report.violations[0].index == 1

    def test_time_disorder_flagged(self):
        trace = [
            Command(kind=CommandType.ACTIVATE, cycle=10, bank=0, row=0),
            Command(kind=CommandType.ACTIVATE, cycle=5, bank=1, row=0),
        ]
        report = checker().check(trace)
        assert any(
            "time-ordered" in violation.reason
            for violation in report.violations
        )

    def test_stop_at_first(self):
        trace = [
            Command(kind=CommandType.READ, cycle=0, bank=0, column=0),
            Command(kind=CommandType.WRITE, cycle=1, bank=1, column=0),
        ]
        report = checker(stop_at_first=True).check(trace)
        assert len(report.violations) == 1

    def test_checking_continues_past_violation(self):
        trace = [
            Command(kind=CommandType.READ, cycle=0, bank=0, column=0),
            Command(kind=CommandType.ACTIVATE, cycle=1, bank=0, row=3),
            Command(
                kind=CommandType.READ,
                cycle=1 + PC100_TIMING.t_rcd,
                bank=0,
                column=0,
            ),
        ]
        report = checker().check(trace)
        assert len(report.violations) == 1
        assert report.command_counts["RD"] == 1

    def test_generator_rejects_zero_pages(self):
        with pytest.raises(ConfigurationError):
            streaming_read_trace(org(), PC100_TIMING, n_pages=0)


class TestBattery:
    def test_runtime(self):
        battery = Battery(capacity_wh=40.0, derating=1.0)
        assert battery.runtime_hours(10.0) == pytest.approx(4.0)

    def test_derating(self):
        battery = Battery(capacity_wh=40.0, derating=0.5)
        assert battery.usable_wh == pytest.approx(20.0)

    def test_memory_share(self):
        system = PortableSystemPower(base_power_w=8.0, memory_power_w=2.0)
        assert system.memory_share() == pytest.approx(0.2)

    def test_edram_buys_battery_hours(self):
        # The Section 2 portable argument, quantified: replacing a 2 W
        # discrete memory subsystem with a 0.3 W embedded one on an 8 W
        # laptop buys a measurable fraction of an hour.
        gain = battery_life_gain_hours(
            Battery(capacity_wh=40.0),
            base_power_w=8.0,
            memory_power_before_w=2.0,
            memory_power_after_w=0.3,
        )
        assert gain > 0.5

    def test_no_gain_when_equal(self):
        gain = battery_life_gain_hours(
            Battery(), base_power_w=8.0,
            memory_power_before_w=1.0, memory_power_after_w=1.0,
        )
        assert gain == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Battery(capacity_wh=0.0)
        with pytest.raises(ConfigurationError):
            Battery().runtime_hours(0.0)
        with pytest.raises(ConfigurationError):
            PortableSystemPower(base_power_w=-1.0, memory_power_w=0.0)
