"""Tests for repro.inject.runtime: degradation under injected faults."""

import pytest

from repro.dram.organizations import Organization
from repro.inject import FaultInjector, FaultMap, InjectionConfig
from repro.inject.runtime import build_injected_simulator
from repro.verify.differential import (
    diff_injection_off,
    result_fingerprint,
)

RUN = dict(cycles=3_000, warmup_cycles=200)
ORG = Organization(n_banks=4, n_rows=2048, page_bits=4096, word_bits=16)


def _run(injection=None, injector=None, **kwargs):
    params = dict(RUN)
    params.update(kwargs)
    simulator = build_injected_simulator(
        injection, injector=injector, **params
    )
    result = simulator.run()
    return simulator, result


def _single_bit_map(rows, word_range=(0, 16)):
    """A map with one bad bit in every word of the given rows of bank 0."""
    fault_map = FaultMap()
    for row in rows:
        fault_map.word_errors[(0, row)] = {
            word: 1 for word in range(*word_range)
        }
    return fault_map


class TestBitIdentity:
    def test_disabled_injection_is_bit_identical(self):
        report = diff_injection_off(
            cycles=3_000, warmup_cycles=200, n_cell_faults=50
        )
        assert report.identical, report.describe()

    def test_injected_run_reproducible(self):
        injection = InjectionConfig(
            seed=5,
            n_cell_faults=300,
            refresh_drop_rate=0.2,
            fifo_stall_rate=0.05,
        )
        _, a = _run(injection)
        _, b = _run(injection)
        assert result_fingerprint(a) == result_fingerprint(b)


class TestEccRetry:
    def test_correctable_reads_retried_then_accepted(self):
        injector = FaultInjector(
            InjectionConfig(read_retry_limit=1),
            organization=ORG,
            fault_map=_single_bit_map(range(8)),
        )
        simulator, result = _run(injector=injector)
        counters = injector.counters
        assert counters.get("reads_corrected", 0) > 0
        assert counters.get("retries", 0) > 0
        assert counters.get("reads_uncorrectable", 0) == 0
        assert result.requests_completed > 0

    def test_retry_budget_bounded(self):
        injector = FaultInjector(
            InjectionConfig(read_retry_limit=2),
            organization=ORG,
            fault_map=_single_bit_map(range(4)),
        )
        _run(injector=injector)
        # Every corrected read costs at most `read_retry_limit` retries.
        assert injector.counters.get("retries", 0) <= (
            2 * injector.counters.get("reads_corrected", 0)
        )


class TestRemapAndQuarantine:
    def test_dead_rows_remapped_to_spares(self):
        fault_map = FaultMap(dead_rows={(0, row) for row in range(8)})
        injector = FaultInjector(
            InjectionConfig(quarantine_threshold=1, spare_rows_per_bank=8),
            organization=ORG,
            fault_map=fault_map,
        )
        simulator, _ = _run(injector=injector)
        assert injector.counters.get("rows_remapped", 0) > 0
        assert not injector.banks_quarantined

    def test_exhausted_spares_quarantine_bank(self):
        fault_map = FaultMap(dead_rows={(0, row) for row in range(64)})
        injector = FaultInjector(
            InjectionConfig(quarantine_threshold=1, spare_rows_per_bank=1),
            organization=ORG,
            fault_map=fault_map,
        )
        simulator, result = _run(injector=injector)
        assert 0 in injector.banks_quarantined
        assert 0 in simulator.controller.quarantined_banks
        assert result.requests_completed > 0

    def test_stuck_bank_detected_and_quarantined(self):
        injection = InjectionConfig(
            stuck_bank=0,
            stuck_bank_from_cycle=0,
            stuck_request_cycles=64,
        )
        simulator, result = _run(injection)
        assert simulator.controller.quarantined_banks == {0}
        assert result.requests_completed > 0

    def test_healthy_banks_never_quarantined(self):
        simulator, _ = _run(InjectionConfig(n_cell_faults=100))
        assert not simulator.controller.quarantined_banks


class TestRefreshFates:
    def test_drops_accumulate_deficit_and_are_counted(self):
        injection = InjectionConfig(
            refresh_drop_rate=1.0, retention_margin_refreshes=0
        )
        simulator, result = _run(injection, refresh_retention_s=1e-3)
        injector = simulator.controller.injector
        assert injector.counters.get("refreshes_dropped", 0) > 0
        assert injector.retention_active
        assert result.refreshes == 0

    def test_delays_still_issue(self):
        injection = InjectionConfig(
            refresh_delay_rate=1.0, refresh_delay_cycles=16
        )
        simulator, result = _run(injection, refresh_retention_s=1e-3)
        injector = simulator.controller.injector
        assert injector.counters.get("refreshes_delayed", 0) > 0
        assert result.refreshes > 0

    def test_issue_resets_retention(self):
        injection = InjectionConfig(retention_margin_refreshes=0)
        simulator, _ = _run(injection, refresh_retention_s=1e-3)
        assert not simulator.controller.injector.retention_active


class TestFifoStalls:
    def test_injected_stalls_counted(self):
        injection = InjectionConfig(fifo_stall_rate=0.5)
        simulator, result = _run(injection)
        injector = simulator.controller.injector
        assert injector.counters.get("fifo_stalls_injected", 0) > 0
        assert sum(result.fifo_stall_cycles.values()) > 0

    def test_zero_rate_never_stalls(self):
        simulator, _ = _run(InjectionConfig(fifo_stall_rate=0.0))
        injector = simulator.controller.injector
        assert injector.counters.get("fifo_stalls_injected", 0) == 0


class TestObservability:
    def test_fault_events_hit_metrics_and_trace(self):
        from repro.obs import Observability

        obs = Observability.create(trace=True)
        injection = InjectionConfig(
            seed=1, refresh_drop_rate=1.0, fifo_stall_rate=0.3
        )
        simulator = build_injected_simulator(
            injection, obs=obs, refresh_retention_s=1e-3, **RUN
        )
        simulator.run()
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"].get("inject.refresh_dropped", 0) > 0
        assert snapshot["counters"].get(
            "inject.fifo_stall_injected", 0
        ) > 0
        assert any(
            event.get("name") == "refresh_dropped"
            for event in obs.trace.events
        )
