"""Tests for repro.cost.packaging and repro.cost.economics."""

import pytest

from repro.cost.economics import ChipEconomics, SystemCostModel
from repro.cost.packaging import PackageCostModel
from repro.cost.wafer import WaferSpec
from repro.errors import ConfigurationError


class TestPackageCost:
    def test_pin_scaling(self):
        model = PackageCostModel(base_cost=0.3, cost_per_pin=0.01)
        assert model.cost(100) == pytest.approx(1.3)

    def test_thermal_premium(self):
        model = PackageCostModel(
            cheap_power_limit_w=2.0, thermal_premium=1.8
        )
        cool = model.cost(200, power_w=1.0)
        hot = model.cost(200, power_w=3.0)
        assert hot == pytest.approx(1.8 * cool)

    def test_system_package_cost_sums(self):
        model = PackageCostModel()
        total = model.system_package_cost([(100, 1.0), (50, 0.5)])
        assert total == pytest.approx(
            model.cost(100, 1.0) + model.cost(50, 0.5)
        )

    def test_saved_packages_story(self):
        # Section 1: embedding saves packages and pins.  One 304-pin
        # embedded package vs logic + 16 DRAM packages.
        model = PackageCostModel()
        embedded = model.cost(304, power_w=1.5)
        discrete = model.system_package_cost(
            [(460, 1.5)] + [(50, 0.7)] * 16
        )
        assert embedded < discrete

    def test_negative_pins_rejected(self):
        with pytest.raises(ConfigurationError):
            PackageCostModel().cost(-1)


class TestChipEconomics:
    def test_breakdown_totals(self):
        econ = ChipEconomics(nre=1e6, test_cost_per_unit=0.5)
        breakdown = econ.unit_cost(
            memory_area_mm2=20.0,
            logic_area_mm2=40.0,
            pins=200,
            power_w=1.0,
            volume=1_000_000,
        )
        assert breakdown.total == pytest.approx(
            breakdown.die
            + breakdown.test
            + breakdown.package
            + breakdown.nre_share
        )
        assert breakdown.nre_share == pytest.approx(1.0)

    def test_volume_amortizes_nre(self):
        econ = ChipEconomics(nre=2e6)
        small = econ.unit_cost(20.0, 40.0, 200, 1.0, 10_000)
        large = econ.unit_cost(20.0, 40.0, 200, 1.0, 10_000_000)
        assert small.total > large.total

    def test_zero_volume_rejected(self):
        with pytest.raises(ConfigurationError):
            ChipEconomics().unit_cost(20.0, 40.0, 200, 1.0, 0)


class TestSystemCostModel:
    def _model(self):
        return SystemCostModel(
            embedded=ChipEconomics(
                wafer=WaferSpec(cost_multiplier=1.15), nre=3e6
            ),
            discrete_logic=ChipEconomics(
                wafer=WaferSpec(cost_multiplier=1.0), nre=1.5e6
            ),
        )

    def test_embedded_wins_at_high_volume(self):
        # Section 2: "the product volume and product lifetime are usually
        # high" — embedded needs volume to win.
        model = self._model()
        crossover = model.crossover_volume(
            memory_area_mm2=18.0,
            logic_area_mm2=60.0,
            embedded_pins=160,
            embedded_power_w=1.0,
            discrete_logic_pins=460,
            discrete_logic_power_w=1.2,
            memory_mbit=64.0,
            n_dram_chips=16,
        )
        assert crossover is not None
        low_volume = 20_000
        emb_low = model.embedded_unit_cost(18.0, 60.0, 160, 1.0, low_volume)
        dis_low = model.discrete_unit_cost(
            60.0, 460, 1.2, 64.0, 16, low_volume
        )
        # At very low volume the embedded NRE dominates.
        assert emb_low > dis_low

    def test_granularity_overhead_charged_to_discrete(self):
        # The discrete system must buy the full 64 Mbit even when the
        # application needs 8: charging 64 vs 8 Mbit changes its cost.
        model = self._model()
        heavy = model.discrete_unit_cost(60.0, 460, 1.2, 64.0, 16, 1_000_000)
        light = model.discrete_unit_cost(60.0, 460, 1.2, 8.0, 16, 1_000_000)
        assert heavy - light == pytest.approx(
            56.0 * model.commodity_price_per_mbit
        )

    def test_invalid_memory_rejected(self):
        model = self._model()
        with pytest.raises(ConfigurationError):
            model.discrete_unit_cost(60.0, 460, 1.2, -1.0, 16, 1_000_000)
