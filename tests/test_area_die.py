"""Tests for repro.area.die and repro.area.logic: die composition."""

import pytest

from repro.area.die import DieAreaModel, PadRing
from repro.area.logic import LogicAreaModel
from repro.area.process import DRAM_BASED_025, LOGIC_BASED_025
from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT


class TestLogicAreaModel:
    def test_roundtrip_gates_area(self):
        model = LogicAreaModel(process=DRAM_BASED_025)
        gates = 500e3
        assert model.gates_fitting(model.area_mm2(gates)) == pytest.approx(
            gates
        )

    def test_utilization_inflates_area(self):
        tight = LogicAreaModel(process=DRAM_BASED_025, utilization=1.0)
        loose = LogicAreaModel(process=DRAM_BASED_025, utilization=0.5)
        assert loose.area_mm2(1e6) == pytest.approx(
            2 * tight.area_mm2(1e6)
        )

    def test_dram_process_logic_slower(self):
        model = LogicAreaModel(process=DRAM_BASED_025)
        assert model.max_clock_mhz(200.0) < 200.0

    def test_logic_process_full_speed(self):
        model = LogicAreaModel(process=LOGIC_BASED_025)
        assert model.max_clock_mhz(200.0) == pytest.approx(200.0)

    def test_bad_utilization(self):
        with pytest.raises(ConfigurationError):
            LogicAreaModel(process=DRAM_BASED_025, utilization=0.0)


class TestPadRing:
    def test_min_edge_scales_with_pads(self):
        ring = PadRing()
        assert ring.min_edge_mm(400) > ring.min_edge_mm(100)

    def test_min_die_area(self):
        ring = PadRing(pad_pitch_um=100.0)
        # 400 pads -> 100/side -> 10 mm edge -> 100 mm^2.
        assert ring.min_die_area_mm2(400) == pytest.approx(100.0)

    def test_negative_pads_rejected(self):
        with pytest.raises(ConfigurationError):
            PadRing().min_edge_mm(-1)


class TestDieComposition:
    def test_embedded_removes_pad_limitation(self):
        # Section 1: "pad-limited design may be transformed into non-
        # pad-limited ones by choosing an embedded solution."  A chip
        # with a 256-bit external memory bus (plus control) is pad-
        # limited; embedding the memory removes ~300 pads.
        model = DieAreaModel(process=DRAM_BASED_025)
        discrete_logic = model.compose(
            memory_bits=0, logic_gates=500e3, pad_count=460
        )
        embedded = model.compose(
            memory_bits=16 * MBIT, logic_gates=500e3, pad_count=160
        )
        assert discrete_logic.pad_limited
        assert not embedded.pad_limited

    def test_core_area_sums(self):
        model = DieAreaModel(process=DRAM_BASED_025)
        comp = model.compose(
            memory_bits=8 * MBIT, logic_gates=250e3, pad_count=100
        )
        assert comp.core_mm2 == pytest.approx(
            comp.memory_mm2 + comp.logic_mm2
        )
        assert comp.die_mm2 >= comp.core_mm2


class TestFeasibilityFrontier:
    """Section 1: 128 Mbit + 500 kG or 64 Mbit + 1 MG in quarter-micron."""

    def test_paper_feasibility_points(self):
        from repro.core.tradeoffs import QUARTER_MICRON_DIE_BUDGET_MM2

        model = DieAreaModel(process=DRAM_BASED_025)
        at_500k = model.max_memory_bits(
            QUARTER_MICRON_DIE_BUDGET_MM2, 500e3
        )
        at_1m = model.max_memory_bits(QUARTER_MICRON_DIE_BUDGET_MM2, 1e6)
        assert at_500k == pytest.approx(128 * MBIT, rel=0.03)
        assert at_1m == pytest.approx(64 * MBIT, rel=0.04)

    def test_frontier_monotone(self):
        model = DieAreaModel(process=DRAM_BASED_025)
        points = model.frontier(200.0, [100e3, 300e3, 600e3, 1e6])
        bits = [b for _, b in points]
        assert bits == sorted(bits, reverse=True)

    def test_logic_too_big_raises(self):
        model = DieAreaModel(process=DRAM_BASED_025)
        with pytest.raises(InfeasibleError):
            model.max_memory_bits(10.0, 5e6)

    def test_frontier_handles_infeasible_points(self):
        model = DieAreaModel(process=DRAM_BASED_025)
        points = model.frontier(10.0, [5e6])
        assert points == [(5e6, 0)]

    def test_bad_budget_rejected(self):
        model = DieAreaModel(process=DRAM_BASED_025)
        with pytest.raises(ConfigurationError):
            model.max_memory_bits(0.0, 100e3)
