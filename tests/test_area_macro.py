"""Tests for repro.area.macro: size-dependent macro area efficiency."""

import pytest

from repro.area.macro import MacroArea, MacroAreaModel
from repro.area.process import DRAM_BASED_025
from repro.errors import ConfigurationError
from repro.units import KBIT, MBIT


@pytest.fixture
def model():
    return MacroAreaModel(process=DRAM_BASED_025)


class TestSiemensEfficiencyClaim:
    """Section 5: 'from 8-16 Mbit upwards ... about 1 Mbit/mm^2'."""

    @pytest.mark.parametrize("mbits", [8, 16, 32, 64, 128])
    def test_large_modules_near_one_mbit_per_mm2(self, model, mbits):
        eff = model.efficiency(mbits * MBIT, interface_width=256)
        assert 0.85 <= eff <= 1.05

    def test_small_module_pays_overhead(self, model):
        small = model.efficiency(256 * KBIT, interface_width=16)
        large = model.efficiency(64 * MBIT, interface_width=16)
        assert small < large

    def test_efficiency_monotone_in_size(self, model):
        sizes = [1, 2, 4, 8, 16, 32, 64, 128]
        effs = [model.efficiency(s * MBIT, 64) for s in sizes]
        assert effs == sorted(effs)


class TestAreaBreakdown:
    def test_components_sum(self, model):
        area = model.area(8 * MBIT, interface_width=128)
        assert area.total_mm2 == pytest.approx(
            area.array_mm2 + area.block_overhead_mm2 + area.interface_mm2
        )

    def test_wider_interface_costs_area(self, model):
        narrow = model.total_area_mm2(8 * MBIT, 16)
        wide = model.total_area_mm2(8 * MBIT, 512)
        assert wide > narrow

    def test_rounds_up_to_whole_blocks(self, model):
        # 1.5 Mbit needs 2 one-Mbit blocks.
        assert model.n_blocks(3 * MBIT // 2) == 2
        area_partial = model.total_area_mm2(3 * MBIT // 2, 64)
        area_two = model.total_area_mm2(2 * MBIT, 64)
        assert area_partial == pytest.approx(area_two)

    def test_redundancy_fraction_inflates_array(self):
        lean = MacroAreaModel(
            process=DRAM_BASED_025, redundancy_area_fraction=0.0
        )
        fat = MacroAreaModel(
            process=DRAM_BASED_025, redundancy_area_fraction=0.1
        )
        assert fat.area(8 * MBIT, 64).array_mm2 == pytest.approx(
            1.1 * lean.area(8 * MBIT, 64).array_mm2
        )


class TestValidation:
    def test_zero_size_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.area(0, 64)

    def test_zero_width_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.area(MBIT, 0)

    def test_tiny_block_rejected(self):
        with pytest.raises(ConfigurationError):
            MacroAreaModel(process=DRAM_BASED_025, block_bits=1024)

    def test_huge_redundancy_rejected(self):
        with pytest.raises(ConfigurationError):
            MacroAreaModel(
                process=DRAM_BASED_025, redundancy_area_fraction=0.6
            )

    def test_macro_area_zero_total_rejected(self):
        area = MacroArea(
            array_mm2=0.0, block_overhead_mm2=0.0, interface_mm2=0.0
        )
        with pytest.raises(ConfigurationError):
            area.efficiency_mbit_per_mm2(MBIT)
