"""Concurrency tests against a *real* socket server.

The in-process tests in ``test_serve_cache.py`` pin the coalescing and
cache logic; these pin the whole deployment story: many HTTP clients
hammering one asyncio server backed by one threaded service, with the
bookkeeping invariant that every submitted job is accounted for as
exactly one of executed / cache hit / coalesced follower.
"""

from __future__ import annotations

import json
import threading
import time

from repro.serve.testing import running_server
from repro.serve.workloads import register_workload, unregister_workload
from tests.serve_helpers import gated_workload, open_gate, reset_gate


def _sleepy_workload(x: float = 0.0, delay_s: float = 0.01) -> dict:
    time.sleep(delay_s)
    return {"x": x}

#: Three distinct jobs — threads pick round-robin, so every fingerprint
#: is requested several times concurrently.
JOBS = [
    {
        "kind": "sweep",
        "workload": "edram_tradeoff",
        "axes": {"width": [16, 32], "banks": [2, 4]},
    },
    {
        "kind": "sweep",
        "workload": "edram_tradeoff",
        "axes": {"width": [64], "banks": [2, 4, 8]},
    },
    {
        "kind": "explore",
        "requirements": {
            "name": "tiny",
            "capacity_mbit": 4,
            "bandwidth_gbit_s": 0.5,
        },
        "widths": [16, 32],
        "bank_options": [2, 4],
    },
]


def _worker(client, job, slot, results):
    try:
        results[slot] = client.run(job, timeout_s=120.0)
    except Exception as error:  # noqa: BLE001 - surfaced by the test
        results[slot] = error


class TestManyClients:
    def test_n_clients_hammering_one_server(self):
        n_threads = 9
        with running_server() as (server, client):
            results: list = [None] * n_threads
            threads = [
                threading.Thread(
                    target=_worker,
                    args=(client, JOBS[slot % len(JOBS)], slot, results),
                )
                for slot in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)

            for outcome in results:
                assert isinstance(outcome, dict), outcome

            # Identical jobs → identical responses, byte for byte.
            for offset, job in enumerate(JOBS):
                texts = {
                    json.dumps(results[slot], sort_keys=True)
                    for slot in range(offset, n_threads, len(JOBS))
                }
                assert len(texts) == 1

            stats = server.service.stats
            coalesced = server.service.coalescer.coalesced
            assert stats["submitted"] == n_threads
            # The bookkeeping invariant: every submission is exactly
            # one of cold execution, cache hit, or coalesced follower.
            assert (
                stats["executions"] + stats["cache_hits"] + coalesced
                == stats["submitted"]
            )
            # Three distinct fingerprints → exactly three cold runs.
            assert stats["executions"] == len(JOBS)

    def test_sse_stream_terminates_for_live_job(self):
        register_workload("t_gated", gated_workload, replace=True)
        try:
            with running_server() as (server, client):
                reset_gate("sse")
                submitted = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_gated",
                        "axes": {"x": [1, 2], "gate": ["sse"]},
                    }
                )
                job_id = submitted["job_id"]
                collected: list = []

                def consume() -> None:
                    collected.extend(client.events(job_id, timeout_s=60.0))

                consumer = threading.Thread(target=consume)
                consumer.start()
                open_gate("sse")
                consumer.join(timeout=60.0)
                assert not consumer.is_alive()
                kinds = [event["kind"] for event in collected]
                assert kinds[0] == "run_start"
                assert kinds[-1] == "run_end"
        finally:
            unregister_workload("t_gated")

    def test_sse_events_share_one_trace_id_in_order(self):
        # A traced job's whole event stream carries exactly the trace
        # id minted at submission, with ids strictly increasing — the
        # ordering contract repro trace --merge relies on.
        register_workload("t_gated", gated_workload, replace=True)
        try:
            with running_server() as (server, client):
                reset_gate("sse-trace")
                submitted = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_gated",
                        "axes": {"x": [1, 2], "gate": ["sse-trace"]},
                    }
                )
                job_id = submitted["job_id"]
                collected: list = []

                def consume() -> None:
                    collected.extend(client.events(job_id, timeout_s=60.0))

                consumer = threading.Thread(target=consume)
                consumer.start()
                open_gate("sse-trace")
                consumer.join(timeout=60.0)
                assert not consumer.is_alive()
                kinds = [event["kind"] for event in collected]
                assert kinds[0] == "run_start"
                assert kinds[-1] == "run_end"
                ids = [event["id"] for event in collected]
                assert ids == sorted(ids)
                trace_ids = {
                    event.get("trace_id")
                    for event in collected
                    if event.get("trace_id")
                }
                assert len(trace_ids) == 1
                report = client.report(job_id)
                assert report["trace_id"] == trace_ids.pop()
        finally:
            unregister_workload("t_gated")

    def test_sse_terminates_for_cancelled_traced_job(self):
        # Cancellation mid-fanout must still close every subscriber's
        # stream, with the cancelled event present and ordered after
        # run_start — an SSE consumer must never hang on a dead job.
        register_workload("t_sleepy", _sleepy_workload, replace=True)
        try:
            with running_server() as (server, client):
                submitted = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_sleepy",
                        "axes": {
                            "x": [float(i) for i in range(200)],
                            "delay_s": [0.01],
                        },
                    }
                )
                job_id = submitted["job_id"]
                collected: list = []

                def consume() -> None:
                    collected.extend(client.events(job_id, timeout_s=60.0))

                consumer = threading.Thread(target=consume)
                consumer.start()
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    progress = client.status(job_id).get("progress")
                    if progress and progress.get("done", 0) >= 1:
                        break
                    time.sleep(0.005)
                assert client.cancel(job_id)["cancelled"] is True
                final = client.wait(job_id, timeout_s=30.0)
                assert final["status"] == "cancelled"
                consumer.join(timeout=60.0)
                assert not consumer.is_alive(), (
                    "SSE stream did not terminate after cancellation"
                )
                kinds = [event["kind"] for event in collected]
                assert kinds[0] == "run_start"
                assert "cancelled" in kinds
                assert kinds.index("cancelled") > 0
                trace_ids = {
                    event.get("trace_id")
                    for event in collected
                    if event.get("trace_id")
                }
                assert len(trace_ids) == 1
        finally:
            unregister_workload("t_sleepy")

    def test_sse_client_disconnect_mid_stream_is_reaped(self):
        # A subscriber that vanishes mid-stream must not leak its
        # connection (the keepalive write surfaces the dead peer) and
        # must not disturb the job it was watching.
        import http.client
        import time

        register_workload("t_gated", gated_workload, replace=True)
        try:
            with running_server() as (server, client):
                reset_gate("sse-gone")
                submitted = client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_gated",
                        "axes": {"x": [1, 2], "gate": ["sse-gone"]},
                    }
                )
                job_id = submitted["job_id"]
                connection = http.client.HTTPConnection(
                    client.host, client.port, timeout=10.0
                )
                connection.request("GET", f"/v1/jobs/{job_id}/events")
                response = connection.getresponse()
                assert response.status == 200
                # Read one line to prove the stream is live, then
                # vanish while the job is still gated.
                assert response.readline()
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if server.sse_streams == 1:
                        break
                    time.sleep(0.01)
                assert server.sse_streams == 1
                # Both holders of the socket: the response's makefile
                # keeps the fd alive past connection.close().
                response.close()
                connection.close()
                while time.monotonic() < deadline:
                    if server.sse_streams == 0:
                        break
                    time.sleep(0.02)
                assert server.sse_streams == 0

                open_gate("sse-gone")
                final = client.wait(job_id, timeout_s=30.0)
                assert final["status"] == "done"
                # A fresh subscriber still gets the full history.
                events = list(client.events(job_id, timeout_s=30.0))
                kinds = [event["kind"] for event in events]
                assert kinds[0] == "run_start"
                assert kinds[-1] == "run_end"
        finally:
            unregister_workload("t_gated")

    def test_health_stays_responsive_while_job_runs(self):
        register_workload("t_gated", gated_workload, replace=True)
        try:
            with running_server() as (server, client):
                reset_gate("health")
                client.submit(
                    {
                        "kind": "sweep",
                        "workload": "t_gated",
                        "axes": {"x": [1], "gate": ["health"]},
                    }
                )
                # The event loop must answer instantly even though a
                # worker thread is parked inside the job.
                assert client.healthz()["status"] == "healthy"
                assert client.stats()["in_flight"] == 1
                open_gate("health")
        finally:
            unregister_workload("t_gated")
