"""Tests for repro.controller.fifo and repro.controller.arbiter."""

import pytest

from repro.controller.arbiter import (
    PriorityArbiter,
    RoundRobinArbiter,
    TDMArbiter,
)
from repro.controller.fifo import ClientFifo
from repro.controller.request import Request
from repro.errors import ConfigurationError


def req(rid, client="a", address=0, cycle=0):
    return Request(
        request_id=rid,
        client=client,
        address=address,
        is_read=True,
        created_cycle=cycle,
    )


class TestClientFifo:
    def test_fifo_order(self):
        fifo = ClientFifo(client="a", capacity=4)
        fifo.push(req(0))
        fifo.push(req(1))
        assert fifo.pop().request_id == 0
        assert fifo.pop().request_id == 1

    def test_capacity_enforced(self):
        fifo = ClientFifo(client="a", capacity=2)
        fifo.push(req(0))
        fifo.push(req(1))
        assert fifo.full
        with pytest.raises(ConfigurationError):
            fifo.push(req(2))

    def test_high_water_mark(self):
        fifo = ClientFifo(client="a", capacity=8)
        for i in range(5):
            fifo.push(req(i))
        for _ in range(3):
            fifo.pop()
        assert fifo.high_water_mark == 5

    def test_underflow(self):
        with pytest.raises(ConfigurationError):
            ClientFifo(client="a").pop()

    def test_occupancy_statistics(self):
        fifo = ClientFifo(client="a", capacity=8)
        fifo.push(req(0))
        fifo.observe_cycle()
        fifo.push(req(1))
        fifo.observe_cycle()
        assert fifo.mean_occupancy == pytest.approx(1.5)

    def test_stall_counting(self):
        fifo = ClientFifo(client="a", capacity=1)
        fifo.push(req(0))
        fifo.record_stall()
        fifo.record_stall()
        assert fifo.stall_cycles == 2


class TestRoundRobinArbiter:
    def test_rotates_fairly(self):
        fifos = [ClientFifo(client=name) for name in "abc"]
        for index, fifo in enumerate(fifos):
            fifo.push(req(index, client=fifo.client))
            fifo.push(req(index + 10, client=fifo.client))
        arbiter = RoundRobinArbiter()
        order = [arbiter.select(fifos, cycle).client for cycle in range(6)]
        assert order[:3] == ["a", "b", "c"]
        assert order[3:] == ["a", "b", "c"]

    def test_skips_empty(self):
        fifos = [ClientFifo(client="a"), ClientFifo(client="b")]
        fifos[1].push(req(0, client="b"))
        arbiter = RoundRobinArbiter()
        assert arbiter.select(fifos, 0).client == "b"

    def test_all_empty_returns_none(self):
        fifos = [ClientFifo(client="a")]
        assert RoundRobinArbiter().select(fifos, 0) is None


class TestPriorityArbiter:
    def test_urgent_first(self):
        fifos = [ClientFifo(client="slow"), ClientFifo(client="urgent")]
        for fifo in fifos:
            fifo.push(req(0, client=fifo.client))
        arbiter = PriorityArbiter(priorities={"urgent": 0, "slow": 5})
        assert arbiter.select(fifos, 0).client == "urgent"

    def test_unknown_client_lowest_urgency(self):
        fifos = [ClientFifo(client="known"), ClientFifo(client="unknown")]
        for fifo in fifos:
            fifo.push(req(0, client=fifo.client))
        arbiter = PriorityArbiter(priorities={"known": 3})
        assert arbiter.select(fifos, 0).client == "known"

    def test_negative_priority_rejected(self):
        with pytest.raises(ConfigurationError):
            PriorityArbiter(priorities={"a": -1})


class TestTDMArbiter:
    def test_slot_ownership(self):
        fifos = [ClientFifo(client="a"), ClientFifo(client="b")]
        for fifo in fifos:
            fifo.push(req(0, client=fifo.client))
            fifo.push(req(1, client=fifo.client))
        arbiter = TDMArbiter(schedule=["a", "b"])
        assert arbiter.select(fifos, 0).client == "a"
        assert arbiter.select(fifos, 1).client == "b"
        assert arbiter.select(fifos, 2).client == "a"

    def test_non_work_conserving_wastes_slot(self):
        fifos = [ClientFifo(client="a"), ClientFifo(client="b")]
        fifos[1].push(req(0, client="b"))
        arbiter = TDMArbiter(schedule=["a", "b"], work_conserving=False)
        assert arbiter.select(fifos, 0) is None  # a's slot, a empty

    def test_work_conserving_reassigns_slot(self):
        fifos = [ClientFifo(client="a"), ClientFifo(client="b")]
        fifos[1].push(req(0, client="b"))
        arbiter = TDMArbiter(schedule=["a", "b"], work_conserving=True)
        assert arbiter.select(fifos, 0).client == "b"

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            TDMArbiter(schedule=[])
