"""Tests for repro.power.thermal: junction/retention feedback."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.power.thermal import ThermalModel, retention_time_at


class TestRetentionCurve:
    def test_nominal_point(self):
        assert retention_time_at(85.0) == pytest.approx(64e-3)

    def test_halves_every_ten_degrees(self):
        assert retention_time_at(95.0) == pytest.approx(32e-3)
        assert retention_time_at(105.0) == pytest.approx(16e-3)

    def test_doubles_when_cooler(self):
        assert retention_time_at(75.0) == pytest.approx(128e-3)

    def test_bad_nominal(self):
        with pytest.raises(ConfigurationError):
            retention_time_at(85.0, nominal_retention_s=0.0)


class TestThermalModel:
    def test_junction_linear_in_power(self):
        model = ThermalModel(theta_ja_c_per_w=30.0, ambient_c=45.0)
        assert model.junction_c(2.0) == pytest.approx(105.0)

    def test_paper_feedback_direction(self):
        # Section 1: more chip power -> hotter junction -> shorter
        # retention -> more refresh.
        model = ThermalModel()
        _, retention_low, _ = model.solve(0.5)
        _, retention_high, _ = model.solve(3.0)
        assert retention_high < retention_low

    def test_solve_fixed_point_consistent(self):
        model = ThermalModel()
        tj, retention, total = model.solve(1.0)
        assert tj == pytest.approx(model.junction_c(total))
        assert retention == pytest.approx(
            retention_time_at(
                tj, model.nominal_retention_s, model.nominal_junction_c
            )
        )
        assert total >= 1.0  # refresh power only adds

    def test_runaway_detected(self):
        # Absurd thermal resistance: refresh heating diverges.
        model = ThermalModel(
            theta_ja_c_per_w=500.0, refresh_energy_per_pass_j=0.5
        )
        with pytest.raises(SimulationError):
            model.solve(5.0)

    def test_refresh_power_scales_with_margin(self):
        model = ThermalModel()
        assert model.refresh_power_w(64e-3, margin=4.0) == pytest.approx(
            2 * model.refresh_power_w(64e-3, margin=2.0)
        )

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalModel().junction_c(-1.0)
