"""Tests for resilient sweeps: failure quarantine, journal, timeouts."""

import json
import time

import pytest

from repro.core.parallel import ParallelConfig
from repro.core.sweep import FailedPoint, Sweep, SweepJournal
from repro.errors import ConfigurationError, InfeasibleError


def _eval(x, y=1):
    if x == "bad":
        raise InfeasibleError(f"x={x} infeasible")
    return x * y


def _sleepy(x):
    if x == 3:
        time.sleep(1.5)
    return x * 10


class TestFailureQuarantine:
    def test_skip_errors_quarantines_not_drops(self):
        sweep = Sweep(axes={"x": [1, "bad", 3]})
        result = sweep.run(_eval, skip_errors=True)
        assert [p.result for p in result.points] == [1, 3]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert isinstance(failure, FailedPoint)
        assert failure.parameters == {"x": "bad"}
        assert "InfeasibleError" in failure.error

    def test_without_skip_errors_still_raises(self):
        sweep = Sweep(axes={"x": [1, "bad"]})
        with pytest.raises(InfeasibleError):
            sweep.run(_eval)

    def test_parallel_failures_quarantined(self):
        sweep = Sweep(axes={"x": [1, "bad", 3, 4]})
        result = sweep.run(
            _eval,
            skip_errors=True,
            parallel=ParallelConfig(workers=2, chunk_size=1),
        )
        assert [p.result for p in result.points] == [1, 3, 4]
        assert len(result.failures) == 1
        assert result.failures[0].parameters == {"x": "bad"}

    def test_timeout_quarantines_hung_point(self):
        sweep = Sweep(axes={"x": [1, 2, 3, 4]})
        result = sweep.run(
            _sleepy,
            parallel=ParallelConfig(
                workers=2, chunk_size=1, timeout_s=0.4
            ),
        )
        succeeded = {p.parameters["x"] for p in result.points}
        assert 3 not in succeeded
        hung = [f for f in result.failures if f.parameters == {"x": 3}]
        assert hung and "TimeoutError" in hung[0].error


class TestJournal:
    def test_journal_written_and_resumed(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep = Sweep(axes={"x": [1, 2, 3], "y": [10, 20]})
        calls: list = []

        def evaluate(x, y):
            calls.append((x, y))
            return x * y

        first = sweep.run(evaluate, journal=path)
        assert len(calls) == 6
        resumed = sweep.run(evaluate, journal=path)
        # Every point came from the journal; nothing re-evaluated.
        assert len(calls) == 6
        assert [p.result for p in resumed.points] == [
            p.result for p in first.points
        ]
        assert [p.parameters for p in resumed.points] == [
            p.parameters for p in first.points
        ]

    def test_interrupted_run_resumes_from_checkpoint(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep = Sweep(axes={"x": [0, 1, 2, 3, 4]})
        calls: list = []

        def crashy(x):
            calls.append(x)
            if x == 2:
                raise RuntimeError("simulated crash")
            return x * x

        with pytest.raises(RuntimeError):
            sweep.run(crashy, journal=path)
        assert calls == [0, 1, 2]

        def fixed(x):
            calls.append(x)
            return x * x

        result = sweep.run(fixed, journal=path)
        # Only the unjournaled points (2, 3, 4) were evaluated.
        assert calls == [0, 1, 2, 2, 3, 4]
        assert [p.result for p in result.points] == [0, 1, 4, 9, 16]

    def test_failures_journaled_too(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep = Sweep(axes={"x": [1, "bad", 3]})
        sweep.run(_eval, skip_errors=True, journal=path)
        calls: list = []

        def never(x):
            calls.append(x)
            return x

        resumed = sweep.run(never, skip_errors=True, journal=path)
        assert not calls
        assert len(resumed.failures) == 1
        assert resumed.failures[0].parameters == {"x": "bad"}

    def test_axes_change_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        Sweep(axes={"x": [1, 2]}).run(_eval, journal=path)
        with pytest.raises(ConfigurationError):
            Sweep(axes={"x": [1, 2, 3]}).run(_eval, journal=path)

    def test_torn_tail_line_ignored(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep = Sweep(axes={"x": [1, 2, 3]})
        sweep.run(_eval, journal=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 99, "ok": true, "val')  # torn write
        journal = SweepJournal(path, sweep.signature())
        outcomes = journal.load()
        assert set(outcomes) == {0, 1, 2}

    def test_journal_is_line_oriented_json(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep = Sweep(axes={"x": [1, 2]})
        sweep.run(_eval, journal=path)
        lines = path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["signature"] == sweep.signature()
        assert len(lines) == 3

    def test_parallel_run_with_journal_matches_serial(self, tmp_path):
        sweep = Sweep(axes={"x": [1, 2, 3, 4, 5]})
        serial = sweep.run(_eval)
        parallel = sweep.run(
            _eval,
            parallel=ParallelConfig(workers=2, chunk_size=1),
            journal=tmp_path / "par.jsonl",
        )
        assert [p.result for p in parallel.points] == [
            p.result for p in serial.points
        ]
        resumed = sweep.run(
            _eval,
            parallel=ParallelConfig(workers=2, chunk_size=1),
            journal=tmp_path / "par.jsonl",
        )
        assert [p.result for p in resumed.points] == [
            p.result for p in serial.points
        ]


class TestJournalCrashSafety:
    """Regression: ``SweepJournal.close()`` used to let an fsync error
    mask the sweep's own exception and leak the handle; and a journal
    killed before close must still resume from every appended record
    (each append is flushed)."""

    def test_unclosed_journal_resumes_every_appended_record(
        self, tmp_path
    ):
        # Simulate SIGKILL: append without ever calling close().  The
        # per-append flush means a fresh process sees every record.
        path = tmp_path / "sweep.jsonl"
        sweep = Sweep(axes={"x": [0, 1, 2, 3]})
        journal = SweepJournal(path, sweep.signature())
        from repro.core.parallel import PointOutcome

        journal.append(0, PointOutcome(ok=True, value=0))
        journal.append(1, PointOutcome(ok=False, error="boom"))
        # no close() — the handle dies with the "process"
        calls: list = []

        def spy(x):
            calls.append(x)
            return x * x

        result = sweep.run(spy, skip_errors=True, journal=path)
        assert calls == [2, 3]
        assert [p.result for p in result.points] == [0, 4, 9]
        assert len(result.failures) == 1

    def test_close_survives_fsync_failure(self, tmp_path, monkeypatch):
        path = tmp_path / "sweep.jsonl"
        sweep = Sweep(axes={"x": [0, 1]})
        journal = SweepJournal(path, sweep.signature())
        from repro.core.parallel import PointOutcome

        journal.append(0, PointOutcome(ok=True, value=0))

        def exploding_fsync(fd):
            raise OSError("fsync not supported here")

        monkeypatch.setattr("repro.core.sweep.os.fsync", exploding_fsync)
        journal.close()  # must not raise...
        assert journal._handle is None  # ...and must release the handle
        assert journal.load() == {0: PointOutcome(ok=True, value=0)}

    def test_failing_close_does_not_mask_sweep_error(
        self, tmp_path, monkeypatch
    ):
        # A sweep that dies mid-run must surface ITS error even when
        # the journal's final fsync fails on the way out.
        path = tmp_path / "sweep.jsonl"
        sweep = Sweep(axes={"x": [0, 1, 2]})

        def crashy(x):
            if x == 1:
                raise RuntimeError("simulated crash")
            return x

        def exploding_fsync(fd):
            raise OSError("fsync not supported here")

        monkeypatch.setattr("repro.core.sweep.os.fsync", exploding_fsync)
        with pytest.raises(RuntimeError, match="simulated crash"):
            sweep.run(crashy, journal=path)
        # The flushed prefix is intact for the resume.
        journal = SweepJournal(path, sweep.signature())
        assert 0 in journal.load()


class TestSignature:
    def test_stable_and_axis_sensitive(self):
        a = Sweep(axes={"x": [1, 2], "y": [3]})
        b = Sweep(axes={"y": [3], "x": [1, 2]})
        assert a.signature() == b.signature()  # order-insensitive
        c = Sweep(axes={"x": [1, 2], "y": [4]})
        assert a.signature() != c.signature()
