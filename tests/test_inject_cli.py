"""Tests for the inject CLI and the top-level error handling."""

import json

import pytest

from repro import cli as repro_cli
from repro.errors import ConfigurationError
from repro.inject import cli as inject_cli


class TestInjectCli:
    def test_campaign_ok(self, capsys):
        code = inject_cli.main(["campaign", "--maps", "1"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_campaign_json_and_out(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = inject_cli.main(
            ["campaign", "--maps", "1", "--json", "--out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert '"ok": true' in capsys.readouterr().out

    def test_sim_runs_and_reports(self, capsys):
        code = inject_cli.main(
            ["sim", "--cycles", "2000", "--warmup", "200",
             "--cell-faults", "50"]
        )
        assert code == 0
        assert "fault sites" in capsys.readouterr().out

    def test_sim_check_identity(self, capsys):
        code = inject_cli.main(
            ["sim", "--cycles", "2000", "--warmup", "200",
             "--cell-faults", "20", "--disabled", "--check-identity"]
        )
        assert code == 0
        assert "bit-identical" in capsys.readouterr().out


class TestTopLevelErrorHandling:
    def test_configuration_error_is_one_line_exit_2(self, capsys):
        code = repro_cli.main(["inject", "campaign", "--rows", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: [ConfigurationError]")
        assert err.count("\n") == 1

    def test_debug_reraises(self):
        with pytest.raises(ConfigurationError):
            repro_cli.main(
                ["--debug", "inject", "campaign", "--rows", "0"]
            )

    def test_healthy_command_unaffected(self, capsys):
        assert repro_cli.main(["feasibility"]) == 0
        assert "frontier" in capsys.readouterr().out
