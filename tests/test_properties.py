"""Property-based tests (hypothesis) on core invariants."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.evaluator import Evaluator
from repro.core.pareto import dominates, pareto_frontier
from repro.cost.yield_model import (
    poisson_yield,
    redundancy_repair_yield,
)
from repro.dft.redundancy import allocate_spares
from repro.dram.organizations import (
    AddressMapping,
    MappingScheme,
    Organization,
)
from repro.units import fill_frequency, is_power_of_two


# -- address mapping -------------------------------------------------------

org_strategy = st.builds(
    Organization,
    n_banks=st.sampled_from([1, 2, 4, 8, 16]),
    n_rows=st.integers(min_value=1, max_value=4096),
    page_bits=st.sampled_from([512, 1024, 2048, 4096, 8192]),
    word_bits=st.sampled_from([8, 16, 32, 64, 128]),
).filter(lambda o: o.word_bits <= o.page_bits)


@given(
    org=org_strategy,
    scheme=st.sampled_from(list(MappingScheme)),
    data=st.data(),
)
@settings(max_examples=200, deadline=None)
def test_mapping_roundtrip(org, scheme, data):
    """decode(encode(x)) == x for any organization and scheme."""
    mapping = AddressMapping(org, scheme)
    address = data.draw(
        st.integers(min_value=0, max_value=org.total_words - 1)
    )
    decoded = mapping.decode(address)
    assert 0 <= decoded.bank < org.n_banks
    assert 0 <= decoded.row < org.n_rows
    assert 0 <= decoded.column < org.columns_per_page
    assert mapping.encode(decoded) == address


@given(org=org_strategy, scheme=st.sampled_from(list(MappingScheme)))
@settings(max_examples=50, deadline=None)
def test_mapping_injective_on_prefix(org, scheme):
    """Distinct addresses decode to distinct coordinates."""
    mapping = AddressMapping(org, scheme)
    n = min(org.total_words, 512)
    decoded = {
        (d.bank, d.row, d.column)
        for d in (mapping.decode(a) for a in range(n))
    }
    assert len(decoded) == n


# -- pareto ------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(0, 20), st.integers(0, 20), st.integers(0, 20)
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_pareto_frontier_sound_and_complete(points):
    frontier = pareto_frontier(points, lambda p: p)
    # Sound: no frontier member dominates another.
    for a, b in itertools.permutations(frontier, 2):
        assert not dominates(a, b)
    # Complete: every non-member is dominated by some member.
    frontier_set = set(frontier)
    for point in points:
        if point not in frontier_set:
            assert any(dominates(f, point) for f in frontier)
    # Non-empty for non-empty input.
    assert frontier


# -- redundancy repair -----------------------------------------------------


@given(
    faults=st.sets(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=12
    ),
    spare_rows=st.integers(0, 4),
    spare_cols=st.integers(0, 4),
)
@settings(max_examples=200, deadline=None)
def test_repair_plan_sound(faults, spare_rows, spare_cols):
    """A repaired plan covers everything within budget; an unrepaired
    plan reports genuinely uncovered cells."""
    plan = allocate_spares(faults, spare_rows, spare_cols)
    assert len(plan.spare_rows_used) <= spare_rows
    assert len(plan.spare_cols_used) <= spare_cols
    if plan.repaired:
        assert all(plan.covers(cell) for cell in faults)
        assert not plan.uncovered
    else:
        assert plan.uncovered
        assert all(not plan.covers(cell) for cell in plan.uncovered)


@given(
    faults=st.sets(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=6
    ),
)
@settings(max_examples=100, deadline=None)
def test_repair_monotone_in_budget(faults):
    """More spares never turn a repairable pattern unrepairable."""
    small = allocate_spares(faults, 1, 1)
    large = allocate_spares(faults, 4, 4)
    if small.repaired:
        assert large.repaired


# -- analytic models ---------------------------------------------------------


@given(
    area=st.floats(min_value=0.0, max_value=500.0),
    d0=st.floats(min_value=0.0, max_value=3.0),
    spares=st.integers(0, 10),
)
@settings(max_examples=200, deadline=None)
def test_yield_bounds_and_monotonicity(area, d0, spares):
    base = poisson_yield(area, d0)
    repaired = redundancy_repair_yield(area, d0, spares)
    assert 0.0 <= base <= 1.0
    assert base <= repaired <= 1.0


@given(
    locality=st.floats(min_value=0.0, max_value=1.0),
    page=st.sampled_from([1024, 2048, 4096, 8192]),
    burst=st.sampled_from([64, 128, 256, 512, 1024]),
)
@settings(max_examples=200, deadline=None)
def test_hit_rate_bounded(locality, page, burst):
    hit = Evaluator.row_hit_rate(locality, page, burst)
    assert 0.0 <= hit <= 1.0
    assert hit <= locality + 1e-12


@given(
    hit=st.floats(min_value=0.0, max_value=1.0),
    burst=st.integers(1, 16),
    prep=st.integers(0, 20),
    banks=st.sampled_from([1, 2, 4, 8, 16]),
    refresh=st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=200, deadline=None)
def test_efficiency_bounded_and_monotone_in_banks(
    hit, burst, prep, banks, refresh
):
    eff = Evaluator.bandwidth_efficiency(hit, burst, prep, banks, refresh)
    assert 0.0 <= eff <= 1.0
    if banks > 1:
        fewer = Evaluator.bandwidth_efficiency(
            hit, burst, prep, banks // 2, refresh
        )
        assert eff >= fewer - 1e-12


@given(
    bandwidth=st.floats(min_value=1.0, max_value=1e12),
    size=st.integers(min_value=1, max_value=1 << 40),
)
@settings(max_examples=100, deadline=None)
def test_fill_frequency_positive_and_scales(bandwidth, size):
    ff = fill_frequency(bandwidth, size)
    assert ff > 0
    assert fill_frequency(bandwidth, 2 * size) < ff or ff == 0


# -- macro constructibility -----------------------------------------------


@given(
    blocks=st.integers(min_value=1, max_value=512),
    width=st.sampled_from([16, 32, 64, 128, 256, 512]),
    banks=st.sampled_from([1, 2, 4, 8, 16]),
    page=st.sampled_from([1024, 2048, 4096, 8192]),
)
@settings(max_examples=200, deadline=None)
def test_every_validated_macro_is_usable(blocks, width, banks, page):
    """If the concept rules accept a configuration, the macro, its
    organization, its device and its area model all work."""
    from repro.dram.edram import EDRAMMacro
    from repro.errors import ConfigurationError
    from repro.units import KBIT

    size = blocks * 256 * KBIT
    try:
        macro = EDRAMMacro.build(
            size_bits=size, width=width, banks=banks, page_bits=page
        )
    except ConfigurationError:
        return  # rejected configurations are out of scope
    organization = macro.organization
    assert organization.capacity_bits == size
    assert macro.area_mm2() > 0
    assert macro.peak_bandwidth_bits_per_s > 0
    device = macro.device()
    assert device.capacity_bits == size


@given(required=st.integers(min_value=1, max_value=128 * (1 << 20)))
@settings(max_examples=200, deadline=None)
def test_quantizer_snap_tight_and_constructible(required):
    """snap_size covers the requirement within one building block."""
    from repro.core.quantizer import Quantizer
    from repro.units import KBIT

    quantizer = Quantizer()
    snapped = quantizer.snap_size(required)
    assert snapped >= required
    assert snapped - required < 256 * KBIT or snapped == 256 * KBIT
    assert snapped % (256 * KBIT) == 0
    counts = quantizer.block_decomposition(snapped)
    rebuilt = sum(size * count for size, count in counts.items())
    assert rebuilt == snapped


# -- partitioning -----------------------------------------------------------


@given(
    sizes=st.lists(
        st.floats(min_value=0.01, max_value=32.0), min_size=1, max_size=6
    ),
    bandwidths=st.data(),
    budget=st.floats(min_value=1.0, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_partition_respects_budget_and_constraints(
    sizes, bandwidths, budget
):
    """Any returned plan fits the area budget and every block's own
    constraints; infeasibility raises rather than silently violating."""
    from repro.core.partition import MemoryBlock, Partitioner
    from repro.errors import InfeasibleError
    from repro.units import MBIT

    blocks = []
    for index, size in enumerate(sizes):
        bandwidth = bandwidths.draw(
            st.floats(min_value=1e6, max_value=8e9)
        )
        blocks.append(
            MemoryBlock(
                name=f"b{index}",
                size_bits=int(size * MBIT),
                bandwidth_bits_per_s=bandwidth,
            )
        )
    partitioner = Partitioner(area_budget_mm2=budget)
    try:
        plan = partitioner.partition(blocks)
    except InfeasibleError:
        return
    assert plan.area_mm2 <= budget + 1e-9
    for block in blocks:
        tech = plan.assignment[block.name]
        profile = partitioner.profiles[tech]
        assert (
            block.bandwidth_bits_per_s
            <= profile.max_bandwidth_bits_per_s
        )


# -- bank allocation -----------------------------------------------------


@given(
    n_buffers=st.integers(1, 5),
    banks=st.sampled_from([2, 4, 8]),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_allocation_capacity_and_disjoint_bases(n_buffers, banks, data):
    """Allocations never overfill a bank and bases stay in range."""
    from repro.core.allocation import BankAllocator, BufferSpec
    from repro.dram.edram import EDRAMMacro
    from repro.errors import InfeasibleError
    from repro.units import MBIT

    macro = EDRAMMacro.build(
        size_bits=8 * MBIT, width=64, banks=banks, page_bits=2048
    )
    buffers = []
    for index in range(n_buffers):
        mbit = data.draw(st.floats(min_value=0.05, max_value=3.0))
        traffic = data.draw(st.floats(min_value=0.0, max_value=3e9))
        buffers.append(
            BufferSpec(
                name=f"buf{index}",
                size_bits=int(mbit * MBIT),
                traffic_bits_per_s=traffic,
            )
        )
    try:
        plan = BankAllocator(macro).allocate(buffers)
    except InfeasibleError:
        assert sum(b.size_bits for b in buffers) > 0
        return
    total_words = macro.organization.total_words
    for placement in plan.placements:
        assert 0 <= placement.base_word < total_words
        assert all(0 <= bank < banks for bank in placement.banks)
    bases = [placement.base_word for placement in plan.placements]
    assert len(set(bases)) == len(bases)
    assert plan.interference_estimate() >= 0.0


# -- march tests -------------------------------------------------------------


@given(
    seed=st.integers(0, 1000),
    n_faults=st.integers(0, 10),
)
@settings(max_examples=30, deadline=None)
def test_march_c_no_false_positives_and_full_hard_fault_coverage(
    seed, n_faults
):
    """March C- flags a superset check: every flagged cell is truly
    faulty (no false positives on this fault mix) and every non-
    retention cell fault is flagged."""
    from repro.dft.faults import inject_random_faults
    from repro.dft.march import MARCH_C_MINUS

    array = inject_random_faults(
        16, 16, n_cell_faults=n_faults, seed=seed, include_retention=False
    )
    result = MARCH_C_MINUS.run(array)
    truth = array.faulty_cells()
    assert result.failing_cells <= truth
    assert result.detected(truth) == 1.0
