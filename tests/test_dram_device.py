"""Tests for repro.dram.device: inter-bank constraints and refresh."""

import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.device import DRAMDevice
from repro.dram.organizations import Organization
from repro.dram.timing import PC100_TIMING
from repro.errors import ConfigurationError, ProtocolError


def make_device() -> DRAMDevice:
    org = Organization(n_banks=4, n_rows=128, page_bits=4096, word_bits=16)
    return DRAMDevice(organization=org, timing=PC100_TIMING, name="test")


def act(cycle, bank, row=3):
    return Command(
        kind=CommandType.ACTIVATE, cycle=cycle, bank=bank, row=row
    )


def rd(cycle, bank, col=0):
    return Command(kind=CommandType.READ, cycle=cycle, bank=bank, column=col)


class TestInterBankConstraints:
    def test_trrd_between_bank_activates(self):
        device = make_device()
        device.issue(act(0, bank=0))
        too_soon = act(PC100_TIMING.t_rrd - 1, bank=1)
        assert not device.can_issue(too_soon)
        ok = act(PC100_TIMING.t_rrd, bank=1)
        assert device.can_issue(ok)
        device.issue(ok)

    def test_data_bus_shared_across_banks(self):
        device = make_device()
        device.issue(act(0, bank=0))
        device.issue(act(PC100_TIMING.t_rrd, bank=1))
        first_rd_cycle = PC100_TIMING.t_rrd + PC100_TIMING.t_rcd
        end = device.issue(rd(first_rd_cycle, bank=0))
        # A read on the other bank whose data would overlap is illegal.
        overlapping = rd(first_rd_cycle + 1, bank=1)
        assert not device.can_issue(overlapping)
        clear = rd(end - PC100_TIMING.t_cas + 1, bank=1)
        assert device.can_issue(clear)

    def test_bus_turnaround_between_read_and_write(self):
        device = make_device()
        device.issue(act(0, bank=0))
        device.issue(act(PC100_TIMING.t_rrd, bank=1))
        first_rd_cycle = PC100_TIMING.t_rrd + PC100_TIMING.t_rcd
        end = device.issue(rd(first_rd_cycle, bank=0))
        # A same-direction read may start as soon as the bus is free...
        same_dir_cycle = end - PC100_TIMING.t_cas + 1
        assert device.can_issue(rd(same_dir_cycle, bank=1))
        # ...but a WRITE (data after 1 cycle) needs the turnaround gap.
        write_cycle = end  # data at end+1 == bus free, no gap
        write = Command(
            kind=CommandType.WRITE, cycle=write_cycle, bank=1, column=0
        )
        assert not device.can_issue(write)
        delayed = Command(
            kind=CommandType.WRITE,
            cycle=write_cycle + PC100_TIMING.t_turnaround,
            bank=1,
            column=0,
        )
        assert device.can_issue(delayed)

    def test_illegal_command_raises(self):
        device = make_device()
        with pytest.raises(ProtocolError):
            device.issue(rd(0, bank=0))

    def test_bank_index_bounds(self):
        device = make_device()
        with pytest.raises(ConfigurationError):
            device.bank(4)


class TestRefreshAllBanks:
    def test_refresh_legal_only_when_all_idle(self):
        device = make_device()
        device.issue(act(0, bank=2))
        refresh = Command(kind=CommandType.REFRESH, cycle=2)
        assert not device.can_issue(refresh)

    def test_refresh_blocks_all_banks(self):
        device = make_device()
        refresh = Command(kind=CommandType.REFRESH, cycle=0)
        done = device.issue(refresh)
        assert done == PC100_TIMING.t_rfc
        assert not device.can_issue(act(done - 1, bank=0))
        assert device.can_issue(act(done, bank=0))


class TestDeviceFigures:
    def test_peak_bandwidth(self):
        device = make_device()
        assert device.peak_bandwidth_bits_per_s == pytest.approx(16 * 100e6)

    def test_capacity(self):
        device = make_device()
        assert device.capacity_bits == 4 * 128 * 4096

    def test_statistics_aggregate(self):
        device = make_device()
        device.issue(act(0, bank=0))
        device.issue(act(PC100_TIMING.t_rrd, bank=1))
        assert device.total_activations == 2
        device.bank(0).record_access_outcome(True)
        device.bank(1).record_access_outcome(False)
        assert device.row_hit_rate() == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert make_device().row_hit_rate() == 0.0
