"""Tests for lossless metrics aggregation across process boundaries."""

import json
import random

import pytest

from repro.errors import ConfigurationError
from repro.obs.aggregate import fold_snapshot, merge_snapshots
from repro.obs.metrics import BoundedHistogram, MetricsRegistry


def _histogram_of(samples, **kwargs):
    hist = BoundedHistogram(**kwargs)
    for value in samples:
        hist.record(value)
    return hist


class TestHistogramMerge:
    def test_merge_equals_union_of_samples(self):
        a = _histogram_of([1, 2, 3, 5000])
        b = _histogram_of([2, 7, 9001])
        union = _histogram_of([1, 2, 3, 5000, 2, 7, 9001])
        assert a.merge(b) is a
        assert a == union

    def test_merge_empty_sides(self):
        a = _histogram_of([1, 2])
        assert a.merge(BoundedHistogram()) == _histogram_of([1, 2])
        empty = BoundedHistogram()
        empty.merge(_histogram_of([4, 8]))
        assert empty == _histogram_of([4, 8])
        assert BoundedHistogram().merge(BoundedHistogram()).count == 0

    def test_merge_tracks_min_max_exactly(self):
        a = _histogram_of([10, 20])
        a.merge(_histogram_of([1, 99999]))
        assert a.minimum == 1
        assert a.maximum == 99999

    def test_merge_rejects_mismatched_binning(self):
        a = BoundedHistogram(exact_limit=1024)
        b = BoundedHistogram(exact_limit=4096)
        with pytest.raises(ConfigurationError, match="identical binning"):
            a.merge(b)
        c = BoundedHistogram(bins_per_octave=4)
        with pytest.raises(ConfigurationError, match="identical binning"):
            BoundedHistogram().merge(c)

    def test_merge_rejects_non_histogram(self):
        with pytest.raises(ConfigurationError):
            BoundedHistogram().merge({"count": 3})

    @pytest.mark.parametrize("seed", range(5))
    def test_property_split_merge_equals_whole(self, seed):
        """Any K-way split of a sample stream merges back losslessly."""
        rng = random.Random(seed)
        samples = [
            rng.choice(
                [rng.randrange(0, 4096), rng.randrange(4096, 10**9)]
            )
            for _ in range(200)
        ]
        whole = _histogram_of(samples)
        parts = [[] for _ in range(rng.randrange(2, 6))]
        for value in samples:
            parts[rng.randrange(len(parts))].append(value)
        merged = BoundedHistogram()
        for part in parts:
            merged.merge(_histogram_of(part))
        assert merged == whole
        assert merged.percentile(95) == whole.percentile(95)


class TestHistogramRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        hist = _histogram_of([0, 1, 1, 4095, 4096, 123456, 7.5])
        clone = BoundedHistogram.from_dict(hist.to_dict())
        assert clone == hist

    def test_round_trip_survives_json(self):
        hist = _histogram_of([3, 3, 3, 10**6])
        dumped = json.loads(json.dumps(hist.to_dict()))
        assert BoundedHistogram.from_dict(dumped) == hist

    def test_round_trip_preserves_binning_params(self):
        hist = _histogram_of(
            [5, 500], exact_limit=256, bins_per_octave=4
        )
        clone = BoundedHistogram.from_dict(hist.to_dict())
        assert clone.exact_limit == 256
        assert clone.bins_per_octave == 4
        assert clone == hist

    def test_empty_round_trip(self):
        clone = BoundedHistogram.from_dict(BoundedHistogram().to_dict())
        assert clone == BoundedHistogram()
        assert clone.minimum is None

    def test_legacy_two_element_bins_rejected(self):
        snapshot = _histogram_of([1, 2]).to_dict()
        snapshot["bins"] = [[rep, count] for _, rep, count in snapshot["bins"]]
        with pytest.raises(ConfigurationError, match="triples"):
            BoundedHistogram.from_dict(snapshot)

    @pytest.mark.parametrize("seed", range(3))
    def test_property_merged_snapshots_equal_union_histogram(self, seed):
        """from_dict + merge over snapshots == recording everything."""
        rng = random.Random(1000 + seed)
        streams = [
            [rng.randrange(0, 10**7) for _ in range(rng.randrange(1, 80))]
            for _ in range(4)
        ]
        merged = BoundedHistogram()
        for stream in streams:
            merged.merge(
                BoundedHistogram.from_dict(_histogram_of(stream).to_dict())
            )
        union = _histogram_of([v for stream in streams for v in stream])
        assert merged == union


class TestFoldSnapshot:
    def test_counters_add_gauges_last_write_wins(self):
        registry = MetricsRegistry(enabled=True)
        fold_snapshot(
            registry,
            {"counters": {"c": 2}, "gauges": {"g": 1.0}, "histograms": {}},
        )
        fold_snapshot(
            registry,
            {"counters": {"c": 3}, "gauges": {"g": 7.0}, "histograms": {}},
        )
        assert registry.value("c") == 5
        assert registry.value("g") == 7.0

    def test_histograms_fold_losslessly(self):
        registry = MetricsRegistry(enabled=True)
        fold_snapshot(
            registry,
            {"histograms": {"h": _histogram_of([1, 2]).to_dict()}},
        )
        fold_snapshot(
            registry,
            {"histograms": {"h": _histogram_of([2, 9000]).to_dict()}},
        )
        assert registry.histogram("h") == _histogram_of([1, 2, 2, 9000])

    def test_disabled_registry_absorbs_nothing(self):
        registry = MetricsRegistry(enabled=False)
        fold_snapshot(registry, {"counters": {"c": 5}})
        registry.enabled = True
        assert registry.value("c") is None

    def test_non_dict_snapshot_rejected(self):
        with pytest.raises(ConfigurationError, match="dict"):
            fold_snapshot(MetricsRegistry(enabled=True), [1, 2])

    def test_merge_snapshots_matches_single_registry(self):
        solo = MetricsRegistry(enabled=True)
        workers = [MetricsRegistry(enabled=True) for _ in range(3)]
        for index, worker in enumerate(workers):
            for value in range(index + 2):
                solo.counter("points").inc()
                worker.counter("points").inc()
                solo.histogram("lat_us").record(value * 100)
                worker.histogram("lat_us").record(value * 100)
        merged = merge_snapshots(*(w.snapshot() for w in workers))
        assert merged == solo.snapshot()

    def test_merge_snapshots_empty(self):
        assert merge_snapshots() == MetricsRegistry(enabled=True).snapshot()
