"""Integration tests: arbiters and page policies inside the full
simulator (beyond the unit tests on each piece)."""

import pytest

from repro.controller import (
    ControllerConfig,
    MemoryController,
    PriorityArbiter,
    TDMArbiter,
)
from repro.controller.page_policy import AdaptivePagePolicy
from repro.dram import AddressMapping, EDRAMMacro, MappingScheme
from repro.sim import MemorySystemSimulator, SimulationConfig
from repro.traffic import MemoryClient, RandomPattern, SequentialPattern
from repro.units import MBIT


def build(arbiter=None, page_policy=None, rates=(0.3, 0.3)):
    macro = EDRAMMacro.build(
        size_bits=4 * MBIT, width=64, banks=4, page_bits=2048
    )
    device = macro.device()
    kwargs = {}
    if arbiter is not None:
        kwargs["arbiter"] = arbiter
    if page_policy is not None:
        kwargs["page_policy"] = page_policy
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(
            device.organization, MappingScheme.ROW_BANK_COL
        ),
        config=ControllerConfig(fifo_capacity=16),
        **kwargs,
    )
    words = device.organization.total_words
    clients = [
        MemoryClient(
            name="urgent",
            pattern=SequentialPattern(base=0, length=words // 2),
            rate=rates[0],
            priority=0,
        ),
        MemoryClient(
            name="bulk",
            pattern=RandomPattern(base=0, length=words, seed=2),
            rate=rates[1],
            priority=5,
        ),
    ]
    simulator = MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(cycles=6000, warmup_cycles=500),
    )
    return simulator


class TestPriorityArbitration:
    def test_priority_protects_urgent_client_under_overload(self):
        fair = build().run()
        prioritized = build(
            arbiter=PriorityArbiter(priorities={"urgent": 0, "bulk": 5})
        ).run()
        assert (
            prioritized.latency_by_client["urgent"].mean
            <= fair.latency_by_client["urgent"].mean + 1e-9
        )

    def test_priority_starves_bulk_under_overload(self):
        # Static priority under 200% offered load: the urgent client is
        # fully served while the bulk client starves completely — the
        # textbook hazard of strict priority.
        prioritized = build(
            arbiter=PriorityArbiter(priorities={"urgent": 0, "bulk": 5}),
            rates=(0.5, 0.5),
        ).run()
        urgent = prioritized.latency_by_client["urgent"]
        bulk = prioritized.latency_by_client["bulk"]
        assert urgent.count > 10 * max(1, bulk.count)
        assert prioritized.fifo_stall_cycles["bulk"] > 1000

    def test_rr_protects_light_client(self):
        # Round-robin admission: the light streaming client keeps a far
        # lower latency than the flooding random client.
        fair = build(rates=(0.1, 0.9)).run()
        assert (
            fair.latency_by_client["urgent"].mean
            < fair.latency_by_client["bulk"].mean
        )


class TestTDMArbitration:
    def test_fifo_level_tdm_cannot_isolate_shared_window(self):
        """A measured *negative* result worth pinning: TDM applied only
        at the FIFO-to-window boundary does NOT isolate the light
        client, because the flooding client's requests occupy the shared
        scheduling window and the light client's slots go to waste
        whenever the window is full.  Real TDM guarantees need slot-
        coupled reservation of the downstream resource too — which is
        why the paper's 'access schemes' are a system-level problem,
        not an arbiter checkbox."""
        fair = build(rates=(0.1, 0.9)).run()
        tdm = build(
            arbiter=TDMArbiter(
                schedule=["urgent", "bulk"], work_conserving=False
            ),
            rates=(0.1, 0.9),
        ).run()
        assert (
            tdm.latency_by_client["urgent"].mean
            > fair.latency_by_client["urgent"].mean
        )

    def test_work_conserving_tdm_serves_more_bulk(self):
        wasted = build(
            arbiter=TDMArbiter(
                schedule=["urgent", "bulk"], work_conserving=False
            ),
            rates=(0.1, 0.9),
        ).run()
        conserving = build(
            arbiter=TDMArbiter(
                schedule=["urgent", "bulk"], work_conserving=True
            ),
            rates=(0.1, 0.9),
        ).run()
        assert (
            conserving.latency_by_client["bulk"].count
            > wasted.latency_by_client["bulk"].count
        )


class TestAdaptivePolicyIntegration:
    def test_adaptive_between_open_and_closed(self):
        from repro.controller.page_policy import (
            ClosedPagePolicy,
            OpenPagePolicy,
        )

        def mean_latency(policy):
            return build(
                page_policy=policy, rates=(0.15, 0.15)
            ).run().latency.mean

        open_latency = mean_latency(OpenPagePolicy())
        closed_latency = mean_latency(ClosedPagePolicy())
        adaptive_latency = mean_latency(AdaptivePagePolicy())
        assert adaptive_latency <= max(open_latency, closed_latency)


class TestEconomicsEdges:
    def test_crossover_never_reached(self):
        from repro.cost.economics import ChipEconomics, SystemCostModel
        from repro.cost.wafer import WaferSpec

        # An absurdly expensive embedded die never beats the discrete
        # path: crossover_volume reports None instead of looping.
        model = SystemCostModel(
            embedded=ChipEconomics(
                wafer=WaferSpec(base_cost=3000.0, cost_multiplier=10.0),
                nre=50e6,
            ),
            discrete_logic=ChipEconomics(),
            commodity_price_per_mbit=0.01,
        )
        crossover = model.crossover_volume(
            memory_area_mm2=200.0,
            logic_area_mm2=60.0,
            embedded_pins=300,
            embedded_power_w=3.0,
            discrete_logic_pins=300,
            discrete_logic_power_w=1.0,
            memory_mbit=8.0,
            n_dram_chips=2,
            max_volume=10_000_000,
        )
        assert crossover is None
