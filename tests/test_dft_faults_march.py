"""Tests for repro.dft.faults and repro.dft.march: observed detection."""

import pytest

from repro.dft.faults import (
    Fault,
    FaultKind,
    FaultyArray,
    inject_random_faults,
)
from repro.dft.march import (
    MARCH_B,
    MARCH_C_MINUS,
    MARCH_C_RETENTION,
    MATS_PLUS,
    MarchElement,
    MarchTest,
    Direction,
    retention_test_time_s,
)
from repro.errors import ConfigurationError


class TestFaultyArray:
    def test_clean_array_reads_zero(self):
        array = FaultyArray(rows=8, cols=8)
        assert array.read(0, 0) is False

    def test_write_read(self):
        array = FaultyArray(rows=8, cols=8)
        array.write(3, 4, True)
        assert array.read(3, 4) is True

    def test_stuck_at_zero(self):
        array = FaultyArray(rows=8, cols=8)
        array.inject(Fault(kind=FaultKind.STUCK_AT_0, row=1, col=1))
        array.write(1, 1, True)
        assert array.read(1, 1) is False

    def test_stuck_at_one(self):
        array = FaultyArray(rows=8, cols=8)
        array.inject(Fault(kind=FaultKind.STUCK_AT_1, row=2, col=2))
        assert array.read(2, 2) is True

    def test_transition_fault(self):
        array = FaultyArray(rows=8, cols=8)
        array.inject(Fault(kind=FaultKind.TRANSITION, row=0, col=5))
        array.write(0, 5, True)  # 0 -> 1 fails
        assert array.read(0, 5) is False
        # But the cell can be driven back to 0 from a 1 it never reached.
        array.write(0, 5, False)
        assert array.read(0, 5) is False

    def test_word_line_kills_row(self):
        array = FaultyArray(rows=4, cols=4)
        array.inject(Fault(kind=FaultKind.WORD_LINE, row=2, col=0))
        for col in range(4):
            array.write(2, col, True)
            assert array.read(2, col) is False

    def test_coupling_inverts_victim(self):
        array = FaultyArray(rows=8, cols=8)
        array.inject(
            Fault(
                kind=FaultKind.COUPLING_INV,
                row=1,
                col=1,
                aggressor=(0, 0),
            )
        )
        array.write(1, 1, False)
        array.write(0, 0, True)  # aggressor write flips victim
        assert array.read(1, 1) is True

    def test_retention_decay_on_pause(self):
        array = FaultyArray(rows=8, cols=8)
        array.inject(Fault(kind=FaultKind.RETENTION, row=0, col=0))
        array.write(0, 0, True)
        assert array.read(0, 0) is True
        array.pause(0.2)
        assert array.read(0, 0) is False

    def test_short_pause_no_decay(self):
        array = FaultyArray(rows=8, cols=8)
        array.inject(Fault(kind=FaultKind.RETENTION, row=0, col=0))
        array.write(0, 0, True)
        array.pause(0.01)
        assert array.read(0, 0) is True

    def test_ground_truth(self):
        array = FaultyArray(rows=4, cols=4)
        array.inject(Fault(kind=FaultKind.STUCK_AT_0, row=1, col=1))
        array.inject(Fault(kind=FaultKind.WORD_LINE, row=3, col=0))
        cells = array.faulty_cells()
        assert (1, 1) in cells
        assert all((3, c) in cells for c in range(4))

    def test_out_of_bounds(self):
        array = FaultyArray(rows=4, cols=4)
        with pytest.raises(ConfigurationError):
            array.read(4, 0)

    def test_coupling_needs_aggressor(self):
        with pytest.raises(ConfigurationError):
            Fault(kind=FaultKind.COUPLING_INV, row=0, col=0)


class TestMarchComplexity:
    def test_complexities(self):
        assert MATS_PLUS.ops_per_cell == 5
        assert MARCH_C_MINUS.ops_per_cell == 10
        assert MARCH_B.ops_per_cell == 17

    def test_operation_count(self):
        assert MARCH_C_MINUS.operation_count(1024) == 10240

    def test_bad_operation(self):
        with pytest.raises(ConfigurationError):
            MarchElement(Direction.UP, ("r2",))


class TestObservedDetection:
    def test_clean_array_passes(self):
        array = FaultyArray(rows=16, cols=16)
        assert MARCH_C_MINUS.run(array).passed

    def test_march_c_detects_stuck_at(self):
        array = FaultyArray(rows=16, cols=16)
        array.inject(Fault(kind=FaultKind.STUCK_AT_0, row=3, col=3))
        array.inject(Fault(kind=FaultKind.STUCK_AT_1, row=5, col=7))
        result = MARCH_C_MINUS.run(array)
        assert {(3, 3), (5, 7)} <= result.failing_cells

    def test_march_c_detects_transition(self):
        array = FaultyArray(rows=16, cols=16)
        array.inject(Fault(kind=FaultKind.TRANSITION, row=2, col=9))
        assert (2, 9) in MARCH_C_MINUS.run(array).failing_cells

    def test_march_c_detects_coupling(self):
        array = FaultyArray(rows=16, cols=16)
        array.inject(
            Fault(
                kind=FaultKind.COUPLING_INV,
                row=4,
                col=4,
                aggressor=(10, 10),
            )
        )
        result = MARCH_C_MINUS.run(array)
        assert (4, 4) in result.failing_cells

    def test_mats_plus_detects_stuck_at(self):
        array = FaultyArray(rows=16, cols=16)
        array.inject(Fault(kind=FaultKind.STUCK_AT_0, row=3, col=3))
        assert (3, 3) in MATS_PLUS.run(array).failing_cells

    def test_retention_needs_pause(self):
        array = FaultyArray(rows=16, cols=16)
        array.inject(Fault(kind=FaultKind.RETENTION, row=6, col=6))
        dry = MARCH_C_MINUS.run(array)
        assert (6, 6) not in dry.failing_cells
        array2 = FaultyArray(rows=16, cols=16)
        array2.inject(Fault(kind=FaultKind.RETENTION, row=6, col=6))
        wet = MARCH_C_RETENTION.run(array2, pause_s=0.2)
        assert (6, 6) in wet.failing_cells

    def test_coverage_metric(self):
        array = inject_random_faults(
            32, 32, n_cell_faults=8, seed=5, include_retention=False
        )
        result = MARCH_C_MINUS.run(array)
        assert result.detected(array.faulty_cells()) == 1.0

    def test_coverage_empty_truth(self):
        array = FaultyArray(rows=4, cols=4)
        assert MARCH_C_MINUS.run(array).detected(set()) == 1.0


class TestFaultModelRegressions:
    """Seed-determinism and edge cases from the injection audit."""

    def test_pause_exactly_at_threshold_retains(self):
        # The boundary case: a pause of exactly the retention threshold
        # is the last surviving interval, not a failure.
        array = FaultyArray(rows=8, cols=8)
        array.inject(Fault(kind=FaultKind.RETENTION, row=0, col=0))
        array.write(0, 0, True)
        array.pause(0.1, retention_threshold_s=0.1)
        assert array.read(0, 0) is True
        array.pause(0.1000001, retention_threshold_s=0.1)
        assert array.read(0, 0) is False

    def test_pause_threshold_must_be_positive(self):
        array = FaultyArray(rows=4, cols=4)
        with pytest.raises(ConfigurationError):
            array.pause(0.1, retention_threshold_s=0.0)

    def test_duplicate_coupling_fault_still_inverts(self):
        # Injecting the same coupling twice used to register the victim
        # twice, so one aggressor write inverted it twice (a no-op) and
        # the fault vanished from every march test.
        array = FaultyArray(rows=8, cols=8)
        fault = Fault(
            kind=FaultKind.COUPLING_INV, row=1, col=1, aggressor=(0, 0)
        )
        array.inject(fault)
        array.inject(fault)
        array.write(1, 1, False)
        array.write(0, 0, True)
        assert array.read(1, 1) is True

    def test_random_faults_deterministic(self):
        a = inject_random_faults(16, 16, n_cell_faults=10, n_line_faults=3,
                                 seed=42)
        b = inject_random_faults(16, 16, n_cell_faults=10, n_line_faults=3,
                                 seed=42)
        assert a.faults == b.faults
        c = inject_random_faults(16, 16, n_cell_faults=10, n_line_faults=3,
                                 seed=43)
        assert a.faults != c.faults

    def test_cell_fault_overflow_rejected(self):
        # Used to spin forever once every cell was already faulty.
        with pytest.raises(ConfigurationError):
            inject_random_faults(4, 4, n_cell_faults=17)

    def test_full_array_exactly_fills(self):
        array = inject_random_faults(4, 4, n_cell_faults=16, seed=1)
        assert len({(f.row, f.col) for f in array.faults}) == 16

    def test_line_faults_deduped(self):
        # Many line faults on a tiny array: every drawn word line must
        # be a distinct row, every bit line a distinct column.
        array = inject_random_faults(
            4, 4, n_cell_faults=0, n_line_faults=8, seed=0
        )
        wl = [f.row for f in array.faults if f.kind is FaultKind.WORD_LINE]
        bl = [f.col for f in array.faults if f.kind is FaultKind.BIT_LINE]
        assert len(wl) == len(set(wl)) == 4
        assert len(bl) == len(set(bl)) == 4

    def test_line_fault_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            inject_random_faults(4, 4, n_cell_faults=0, n_line_faults=9)


class TestRetentionTime:
    def test_waiting_time(self):
        assert retention_test_time_s(2, 0.2) == pytest.approx(0.4)

    def test_no_pauses(self):
        assert retention_test_time_s(0, 0.2) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            retention_test_time_s(-1, 0.2)
