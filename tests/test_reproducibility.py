"""Determinism: identical configurations produce identical results.

Every stochastic element in the library is seeded (numpy Generator per
pattern/client/flow); these tests pin that down, because irreproducible
simulations would make the benchmark tables meaningless.
"""

import pytest

from repro.controller import MemoryController
from repro.dft.flow import TestFlow
from repro.dram import AddressMapping, EDRAMMacro, MappingScheme
from repro.sim import MemorySystemSimulator, SimulationConfig
from repro.traffic import MemoryClient, RandomPattern
from repro.units import MBIT


def run_simulation(seed: int):
    macro = EDRAMMacro.build(
        size_bits=4 * MBIT, width=64, banks=4, page_bits=2048
    )
    device = macro.device()
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(
            device.organization, MappingScheme.ROW_BANK_COL
        ),
    )
    clients = [
        MemoryClient(
            name="a",
            pattern=RandomPattern(
                base=0,
                length=device.organization.total_words,
                seed=seed,
            ),
            rate=0.3,
            read_fraction=0.6,
            seed=seed,
        )
    ]
    simulator = MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(cycles=4000, warmup_cycles=400),
    )
    return simulator.run()


class TestSimulationDeterminism:
    def test_identical_runs_identical_results(self):
        a = run_simulation(seed=5)
        b = run_simulation(seed=5)
        assert a.requests_completed == b.requests_completed
        assert a.data_bits_transferred == b.data_bits_transferred
        assert a.row_hit_rate == b.row_hit_rate
        assert a.latency.mean == b.latency.mean
        assert a.commands == b.commands

    def test_different_seeds_differ(self):
        a = run_simulation(seed=5)
        b = run_simulation(seed=6)
        assert (
            a.latency.mean != b.latency.mean
            or a.commands != b.commands
        )


class TestFlowDeterminism:
    def test_lot_reproducible(self):
        flow = TestFlow(mean_faults_per_die=1.5)
        a = flow.run_lot(100, seed=3)
        b = flow.run_lot(100, seed=3)
        assert a == b

    def test_lot_seed_sensitivity(self):
        flow = TestFlow(mean_faults_per_die=1.5)
        a = flow.run_lot(100, seed=3)
        b = flow.run_lot(100, seed=4)
        assert a != b


class TestExperimentDeterminism:
    def test_e05_reproducible(self):
        from repro.experiments.e05_sustainable_bw import simulate_org

        a = simulate_org(banks=4, page_bits=2048, cycles=3000)
        b = simulate_org(banks=4, page_bits=2048, cycles=3000)
        assert a == b
