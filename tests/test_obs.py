"""Tests for the observability layer (metrics, tracing, streaming stats).

Covers the three contracts the layer makes:

* **bit-identity** — attaching metrics/tracing never changes what the
  simulator computes (pinned with the differential fingerprint);
* **bounded memory** — histograms and :class:`LatencyStats` hold a
  fixed number of bins regardless of sample count, with percentiles
  exact below the unit-bin limit and within the documented relative
  error above (checked against ``np.percentile``);
* **valid exports** — metrics snapshots and Chrome trace-event JSON
  survive a ``json`` round-trip and carry the required schema fields.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.obs.metrics import (
    BoundedHistogram,
    Counter,
    Gauge,
    MetricsRegistry,
    NULL_METRIC,
)
from repro.obs.trace import TraceRecorder
from repro.obs.workloads import mpeg2_decoder_simulator
from repro.sim.stats import LatencyStats, SimulationResult
from repro.verify.differential import result_fingerprint


class TestMetricsPrimitives:
    def test_counter_and_gauge(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = Gauge("g")
        gauge.set(2.5)
        assert gauge.value == 2.5

    def test_registry_creates_and_reuses(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        registry.counter("a").inc(3)
        assert registry.value("a") == 3
        registry.gauge("b").set(7)
        assert registry.value("b") == 7
        registry.histogram("h").record(1)
        assert registry.value("h") == 1
        assert registry.value("missing") is None

    def test_disabled_registry_returns_null_metric(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_METRIC
        assert registry.gauge("b") is NULL_METRIC
        assert registry.histogram("c") is NULL_METRIC
        NULL_METRIC.inc()
        NULL_METRIC.set(1)
        NULL_METRIC.record(1)
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_snapshot_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(12)
        registry.gauge("depth").set(3.5)
        hist = registry.histogram("latency")
        for value in (1, 2, 2, 3, 10_000):
            hist.record(value)
        restored = json.loads(json.dumps(registry.snapshot()))
        assert restored["counters"]["requests"] == 12
        assert restored["gauges"]["depth"] == 3.5
        assert restored["histograms"]["latency"]["count"] == 5
        assert restored["histograms"]["latency"]["max"] == 10_000


class TestBoundedHistogram:
    def test_exact_region_matches_numpy_percentile(self):
        rng = np.random.default_rng(7)
        samples = rng.integers(0, 4096, size=5_000)
        hist = BoundedHistogram()
        for value in samples:
            hist.record(int(value))
        for q in (0, 10, 50, 90, 95, 99, 100):
            assert hist.percentile(q) == pytest.approx(
                float(np.percentile(samples, q)), rel=1e-12
            )

    def test_geometric_region_within_documented_error(self):
        rng = np.random.default_rng(11)
        samples = rng.integers(4096, 5_000_000, size=5_000)
        hist = BoundedHistogram()
        for value in samples:
            hist.record(int(value))
        # Representative error is <= 1/(2*8) = 6.25%; interpolation
        # between adjacent bins keeps the result within ~7%.
        for q in (1, 25, 50, 75, 99):
            expected = float(np.percentile(samples, q))
            assert hist.percentile(q) == pytest.approx(expected, rel=0.07)

    def test_memory_stays_bounded(self):
        hist = BoundedHistogram()
        rng = np.random.default_rng(3)
        for value in rng.integers(0, 1 << 40, size=20_000):
            hist.record(int(value))
        assert len(hist._bins) <= hist.max_bins
        assert hist.count == 20_000

    def test_exact_aggregates(self):
        hist = BoundedHistogram()
        for value in (5, 1, 9, 9):
            hist.record(value)
        assert (hist.count, hist.total) == (4, 24)
        assert (hist.minimum, hist.maximum) == (1, 9)
        assert hist.mean == 6.0

    def test_binning_is_monotone_across_the_boundary(self):
        hist = BoundedHistogram()
        values = [4090, 4095, 4096, 4097, 5000, 8191, 8192, 1 << 20]
        keys = [hist._bin_key(v) for v in values]
        assert keys == sorted(keys)
        assert len(set(keys)) >= 6  # distinct magnitudes stay distinct

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BoundedHistogram(exact_limit=0)
        with pytest.raises(ConfigurationError):
            BoundedHistogram(exact_limit=4000)  # not a power of two
        with pytest.raises(ConfigurationError):
            BoundedHistogram(bins_per_octave=0)
        hist = BoundedHistogram()
        with pytest.raises(ConfigurationError):
            hist.record(-1)
        with pytest.raises(ConfigurationError):
            hist.percentile(101)

    def test_empty_percentile_and_to_dict(self):
        hist = BoundedHistogram()
        assert hist.percentile(50) == 0.0
        dumped = hist.to_dict()
        assert dumped["count"] == 0
        assert dumped["bins"] == []

    def test_equality_tracks_content(self):
        a, b = BoundedHistogram(), BoundedHistogram()
        assert a == b
        a.record(5)
        assert a != b
        b.record(5)
        assert a == b


class TestLatencyStats:
    """Regression tests for the streaming LatencyStats rewrite (the
    seed kept every sample in an unbounded list)."""

    def test_streaming_matches_reference_aggregates(self):
        rng = np.random.default_rng(5)
        samples = [int(v) for v in rng.integers(0, 3000, size=2_000)]
        stats = LatencyStats()
        for value in samples:
            stats.record(value)
        assert stats.count == len(samples)
        assert stats.mean == pytest.approx(np.mean(samples), rel=1e-12)
        assert stats.minimum == min(samples)
        assert stats.maximum == max(samples)
        for q in (50, 95, 99):
            assert stats.percentile(q) == pytest.approx(
                float(np.percentile(samples, q)), rel=1e-12
            )

    def test_memory_is_bounded_not_per_sample(self):
        stats = LatencyStats()
        for value in range(50_000):
            stats.record(value % 700)
        assert len(stats._hist._bins) <= 700
        assert not hasattr(stats, "_samples")

    def test_digest_is_order_sensitive(self):
        forward, backward, same = (
            LatencyStats(), LatencyStats(), LatencyStats()
        )
        for value in (1, 2, 3):
            forward.record(value)
            same.record(value)
        for value in (3, 2, 1):
            backward.record(value)
        assert forward.digest() == same.digest()
        assert forward.digest() != backward.digest()

    def test_zero_latency_changes_the_digest(self):
        empty, one_zero = LatencyStats(), LatencyStats()
        one_zero.record(0)
        assert empty.digest() != one_zero.digest()

    def test_empty_stats_degenerates_to_zero(self):
        stats = LatencyStats()
        assert (stats.count, stats.mean) == (0, 0.0)
        assert (stats.minimum, stats.maximum) == (0, 0)
        assert stats.percentile(99) == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyStats().record(-1)


def make_result(**overrides) -> SimulationResult:
    fields = dict(
        cycles=100,
        clock_hz=1e8,
        word_bits=16,
        requests_completed=10,
        data_bits_transferred=160,
        peak_bandwidth_bits_per_s=1.6e9,
        latency=LatencyStats(),
        latency_by_client={},
        row_hit_rate=0.5,
        fifo_high_water={},
        fifo_stall_cycles={},
        commands={},
        refreshes=0,
    )
    fields.update(overrides)
    return SimulationResult(**fields)


class TestSimulationResultValidation:
    """Regression tests: degenerate configs are rejected at
    construction instead of surfacing as ZeroDivisionError later."""

    def test_zero_clock_rejected(self):
        with pytest.raises(ConfigurationError, match="clock_hz"):
            make_result(clock_hz=0.0)
        with pytest.raises(ConfigurationError, match="clock_hz"):
            make_result(clock_hz=-1e8)

    def test_negative_cycles_and_peak_rejected(self):
        with pytest.raises(ConfigurationError):
            make_result(cycles=-1)
        with pytest.raises(ConfigurationError):
            make_result(peak_bandwidth_bits_per_s=-1.0)

    def test_degenerate_values_stay_finite(self):
        result = make_result(cycles=0, peak_bandwidth_bits_per_s=0.0)
        assert result.sustained_bandwidth_bits_per_s == 0.0
        assert result.bandwidth_efficiency == 0.0
        assert result.mean_latency_ns == 0.0
        assert result.bank_imbalance() == 1.0


class TestTraceRecorder:
    def test_events_have_required_schema_fields(self):
        trace = TraceRecorder(clock_hz=1e8)
        trace.instant("bus", "ACT", cycle=10, bank=2)
        trace.complete("bus", "RD", start_cycle=10, end_cycle=14)
        trace.counter("fifo", "depth", cycle=12, depth=3)
        dumped = json.loads(json.dumps(trace.to_dict()))
        events = dumped["traceEvents"]
        assert events[0] == {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro memory system"},
        }
        phases = [e["ph"] for e in events[1:]]
        assert phases == ["M", "i", "X", "M", "C"]
        for event in events[1:]:
            assert {"name", "ph", "pid"} <= set(event)
            if event["ph"] != "M":
                assert "ts" in event and "tid" in event
        complete = next(e for e in events if e["ph"] == "X")
        # 4 cycles at 100 MHz = 40 ns = 0.04 us.
        assert complete["dur"] == pytest.approx(0.04)

    def test_event_cap_counts_drops(self):
        trace = TraceRecorder(clock_hz=1e9, max_events=3)
        for cycle in range(10):
            trace.instant("t", "e", cycle)
        assert len(trace.events) == 3  # thread metadata + 2 instants
        assert trace.dropped_events == 8
        assert trace.to_dict()["otherData"]["dropped_events"] == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(clock_hz=0)
        with pytest.raises(ConfigurationError):
            TraceRecorder(max_events=0)
        trace = TraceRecorder()
        with pytest.raises(ConfigurationError):
            trace.instant("t", "e", 0)  # no clock set yet
        trace.set_clock(1e8)
        with pytest.raises(ConfigurationError):
            trace.complete("t", "e", start_cycle=5, end_cycle=4)

    def test_write_round_trips(self, tmp_path):
        trace = TraceRecorder(clock_hz=1e8)
        trace.instant("bus", "ACT", cycle=1)
        path = tmp_path / "out.trace.json"
        trace.write(path)
        restored = json.loads(path.read_text())
        assert restored["otherData"]["clock_hz"] == 1e8
        assert any(
            e["name"] == "ACT" for e in restored["traceEvents"]
        )


class TestObservabilityIntegration:
    def test_obs_off_and_on_are_bit_identical(self):
        baseline = mpeg2_decoder_simulator(
            cycles=2_500, warmup_cycles=300
        ).run()
        obs = Observability.create(trace=True)
        observed = mpeg2_decoder_simulator(
            cycles=2_500, warmup_cycles=300, obs=obs
        ).run()
        assert result_fingerprint(baseline) == result_fingerprint(observed)

    def test_metrics_agree_with_simulation_result(self):
        # Zero warm-up: the measurement reset clears the result-side
        # statistics but not the cumulative metrics counters, so only a
        # warmup-free run makes the two views directly comparable.
        obs = Observability.create()
        result = mpeg2_decoder_simulator(
            cycles=2_500, warmup_cycles=0, obs=obs
        ).run()
        metrics = obs.metrics
        commands = sum(
            metrics.value(f"sim.commands.{name}") or 0
            for name in ("ACT", "PRE", "RD", "WR", "REF")
        )
        assert commands == sum(result.commands.values())
        assert (
            metrics.value("sim.latency_cycles") == result.latency.count
        )
        hits = metrics.value("sim.row_hits") or 0
        misses = metrics.value("sim.row_misses") or 0
        assert hits / (hits + misses) == pytest.approx(
            result.row_hit_rate
        )

    def test_trace_is_loadable_chrome_json(self, tmp_path):
        obs = Observability.create(trace=True)
        mpeg2_decoder_simulator(
            cycles=2_000, warmup_cycles=200, obs=obs
        ).run()
        path = tmp_path / "mpeg2.trace.json"
        obs.trace.write(path)
        dumped = json.loads(path.read_text())
        events = dumped["traceEvents"]
        assert dumped["otherData"]["dropped_events"] == 0
        phases = {e["ph"] for e in events}
        assert {"M", "i", "X", "C"} <= phases
        track_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "commands" in track_names
        assert any(name.startswith("bank ") for name in track_names)
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_fast_forward_windows_traced(self):
        obs = Observability.create(trace=True)
        simulator = mpeg2_decoder_simulator(
            cycles=2_000, warmup_cycles=200, load=0.02, obs=obs
        )
        simulator.run()
        assert simulator.cycles_fast_forwarded > 0
        assert (
            obs.metrics.value("sim.cycles_fast_forwarded")
            == simulator.cycles_fast_forwarded
        )
        spans = [
            e
            for e in obs.trace.events
            if e["ph"] == "X" and e["name"] == "skip"
        ]
        assert spans

    def test_metrics_only_mode_has_no_trace(self):
        obs = Observability.create(trace=False)
        mpeg2_decoder_simulator(
            cycles=1_200, warmup_cycles=100, obs=obs
        ).run()
        assert obs.trace is None
        assert obs.metrics.snapshot()["counters"]


class TestObsCLI:
    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.trace.json"
        code = main(
            [
                "trace",
                "--cycles", "1500",
                "--warmup-cycles", "200",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert "trace events" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]

    def test_metrics_subcommand_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "m.json"
        code = main(
            [
                "metrics",
                "--cycles", "1500",
                "--warmup-cycles", "200",
                "--json",
                "--out", str(out),
            ]
        )
        assert code == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["counters"]["sim.requests_completed"] > 0

    def test_fuzz_trace_dir_writes_failure_traces(self, tmp_path):
        import random

        from repro.verify import fuzz

        rng = random.Random("obs-trace-dir")
        params = fuzz.gen_sim_case(rng)
        failure = fuzz.FuzzFailure(
            check="sim_invariants",
            seed=0,
            index=0,
            params=params,
            messages=("synthetic",),
        )
        path = fuzz.write_failure_trace(failure, tmp_path)
        assert path is not None
        assert json.loads(open(path).read())["traceEvents"]
        non_sim = fuzz.FuzzFailure(
            check="pacing_plan",
            seed=0,
            index=1,
            params={},
            messages=("synthetic",),
        )
        assert fuzz.write_failure_trace(non_sim, tmp_path) is None
