"""Tests for repro.dram.edram: the Siemens flexible concept (E8)."""

import pytest

from repro.dram.edram import (
    EDRAMMacro,
    SIEMENS_CONCEPT,
    SiemensConceptRules,
)
from repro.errors import ConfigurationError
from repro.units import KBIT, MBIT


class TestConceptHeadlines:
    """Section 5's bullet list, as assertions."""

    def test_building_blocks(self):
        assert set(SIEMENS_CONCEPT.block_sizes_bits) == {256 * KBIT, MBIT}

    def test_max_module(self):
        assert SIEMENS_CONCEPT.max_module_bits == 128 * MBIT

    def test_width_range(self):
        assert SIEMENS_CONCEPT.min_width == 16
        assert SIEMENS_CONCEPT.max_width == 512

    def test_clock_better_than_143mhz(self):
        assert SIEMENS_CONCEPT.max_clock_hz >= 142.8e6

    def test_nine_gbyte_per_s(self):
        # 512 bits x 143 MHz / 8 = "about 9 Gbyte/s".
        gbs = SIEMENS_CONCEPT.max_module_bandwidth_bits_per_s / 8e9
        assert gbs == pytest.approx(9.14, abs=0.1)

    def test_constructible_granularity(self):
        sizes = SIEMENS_CONCEPT.constructible_sizes(up_to_bits=2 * MBIT)
        assert sizes[0] == 256 * KBIT
        diffs = {b - a for a, b in zip(sizes, sizes[1:])}
        assert diffs == {256 * KBIT}


class TestMacroConstruction:
    def test_valid_macro(self):
        macro = EDRAMMacro.build(size_bits=16 * MBIT, width=256)
        assert macro.organization.capacity_bits == 16 * MBIT
        assert macro.peak_bandwidth_bits_per_s / 8e9 == pytest.approx(
            4.57, abs=0.05
        )

    def test_frame_sized_module(self):
        # A module snapped to a PAL frame (4.75 Mbit) at 256-Kbit
        # granularity: 19 blocks of 256 Kbit = exactly 4.75 Mbit.
        size = 19 * 256 * KBIT
        macro = EDRAMMacro.build(
            size_bits=size, width=64, banks=1, page_bits=2048
        )
        assert macro.size_bits / MBIT == pytest.approx(4.75)

    def test_fill_frequency_example(self):
        # Section 1: a 4-Mbit eDRAM with a 256-bit interface.
        macro = EDRAMMacro.build(size_bits=4 * MBIT, width=256)
        assert macro.fill_frequency_hz == pytest.approx(8726.8, rel=1e-3)

    def test_area_efficiency_about_one(self):
        macro = EDRAMMacro.build(size_bits=16 * MBIT, width=256)
        assert 0.85 <= macro.area_efficiency_mbit_per_mm2() <= 1.05

    def test_device_instantiation(self):
        macro = EDRAMMacro.build(size_bits=8 * MBIT, width=128, banks=8)
        device = macro.device()
        assert device.organization.n_banks == 8
        assert device.timing.clock_period_ns == pytest.approx(7.0)

    def test_more_redundancy_more_area(self):
        lean = EDRAMMacro.build(
            size_bits=16 * MBIT, width=128, redundancy_spares=0
        )
        fat = EDRAMMacro.build(
            size_bits=16 * MBIT, width=128, redundancy_spares=8
        )
        assert fat.area_mm2() > lean.area_mm2()


class TestConceptValidation:
    def test_size_not_block_multiple(self):
        with pytest.raises(ConfigurationError):
            EDRAMMacro.build(size_bits=MBIT + 1, width=64)

    def test_size_too_large(self):
        with pytest.raises(ConfigurationError):
            EDRAMMacro.build(size_bits=256 * MBIT, width=64)

    def test_width_out_of_range(self):
        with pytest.raises(ConfigurationError):
            EDRAMMacro.build(size_bits=8 * MBIT, width=8)
        with pytest.raises(ConfigurationError):
            EDRAMMacro.build(size_bits=8 * MBIT, width=1024)

    def test_width_not_power_of_two(self):
        with pytest.raises(ConfigurationError):
            EDRAMMacro.build(size_bits=8 * MBIT, width=96)

    def test_too_many_banks(self):
        with pytest.raises(ConfigurationError):
            EDRAMMacro.build(size_bits=8 * MBIT, width=64, banks=32)

    def test_bad_page_length(self):
        with pytest.raises(ConfigurationError):
            EDRAMMacro.build(
                size_bits=8 * MBIT, width=64, page_bits=3000
            )

    def test_width_exceeding_page(self):
        with pytest.raises(ConfigurationError):
            EDRAMMacro.build(
                size_bits=8 * MBIT, width=512, banks=4, page_bits=256
            )

    def test_odd_sizes_bank_cleanly(self):
        # Any block-multiple size divides into the offered bank/page
        # combinations: 4.75 Mbit at 16 banks of 8192-bit pages gives
        # 38 rows per bank.
        macro = EDRAMMacro.build(
            size_bits=19 * 256 * KBIT, width=16, banks=16, page_bits=8192
        )
        assert macro.organization.n_rows == 38

    def test_unoffered_redundancy_level(self):
        with pytest.raises(ConfigurationError):
            EDRAMMacro.build(
                size_bits=8 * MBIT, width=64, redundancy_spares=3
            )

    def test_rules_sanity(self):
        with pytest.raises(ConfigurationError):
            SiemensConceptRules(min_width=512, max_width=16)
