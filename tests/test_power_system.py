"""Tests for repro.power.system and repro.power.energy."""

import pytest

from repro.errors import ConfigurationError
from repro.power.energy import AccessEnergyModel
from repro.power.idd import EDRAM_IDD, PC100_IDD
from repro.power.interface import (
    InterfacePowerModel,
    OFF_CHIP_BUS,
    ON_CHIP_BUS,
)
from repro.power.system import (
    SystemPowerModel,
    discrete_vs_embedded_power,
)


class TestPaperPowerClaim:
    """E1: 'about ten times the power' (Section 1)."""

    def test_ratio_about_ten(self):
        discrete, embedded, ratio = discrete_vs_embedded_power()
        assert 8.0 <= ratio <= 13.0

    def test_discrete_needs_sixteen_chips(self):
        discrete, _, _ = discrete_vs_embedded_power()
        assert discrete.n_chips == 16

    def test_embedded_single_macro(self):
        _, embedded, _ = discrete_vs_embedded_power()
        assert embedded.n_chips == 1

    def test_io_dominates_discrete(self):
        discrete, _, _ = discrete_vs_embedded_power()
        assert discrete.interface_w > 0.3 * discrete.total_w

    def test_io_small_in_embedded(self):
        _, embedded, _ = discrete_vs_embedded_power()
        assert embedded.interface_w < 0.5 * embedded.total_w

    def test_totals_compose(self):
        discrete, embedded, ratio = discrete_vs_embedded_power()
        assert discrete.total_w == pytest.approx(
            discrete.core_w + discrete.interface_w
        )
        assert ratio == pytest.approx(discrete.total_w / embedded.total_w)

    def test_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            discrete_vs_embedded_power(bandwidth_bytes_per_s=0.0)


class TestSystemPowerModel:
    def test_chips_for_bus(self):
        model = SystemPowerModel(
            interface=OFF_CHIP_BUS,
            idd=PC100_IDD,
            device_width_bits=16,
            frequency_hz=100e6,
        )
        assert model.chips_for_bus(256) == 16
        assert model.chips_for_bus(17) == 2

    def test_power_monotone_in_width(self):
        model = SystemPowerModel(
            interface=OFF_CHIP_BUS,
            idd=PC100_IDD,
            device_width_bits=16,
            frequency_hz=100e6,
        )
        assert model.power(256).total_w > model.power(64).total_w

    def test_idle_utilization_cheaper(self):
        model = SystemPowerModel(
            interface=OFF_CHIP_BUS,
            idd=PC100_IDD,
            device_width_bits=16,
            frequency_hz=100e6,
        )
        assert (
            model.power(64, utilization=0.2).total_w
            < model.power(64, utilization=1.0).total_w
        )

    def test_peak_bandwidth(self):
        model = SystemPowerModel(
            interface=ON_CHIP_BUS,
            idd=EDRAM_IDD,
            device_width_bits=256,
            frequency_hz=143e6,
        )
        assert model.peak_bandwidth_bits_per_s(256) == pytest.approx(
            256 * 143e6
        )


class TestAccessEnergy:
    def _model(self):
        return AccessEnergyModel(
            idd=EDRAM_IDD,
            interface=InterfacePowerModel(ON_CHIP_BUS, 256, 143e6),
            row_cycle_time_s=70e-9,
            transfer_clock_hz=143e6,
        )

    def test_row_hit_cheaper(self):
        model = self._model()
        hit = model.access(1024, row_hit=True)
        miss = model.access(1024, row_hit=False)
        assert hit.total < miss.total
        assert hit.activation == 0.0

    def test_breakdown_sums(self):
        model = self._model()
        access = model.access(1024)
        assert access.total == pytest.approx(
            access.activation + access.core_transfer + access.interface
        )

    def test_per_bit(self):
        model = self._model()
        access = model.access(1024)
        assert access.per_bit(1024) == pytest.approx(access.total / 1024)

    def test_energy_per_useful_bit_punishes_overfetch(self):
        model = self._model()
        tight = model.energy_per_useful_bit(1024, 1024, row_hit_rate=0.8)
        wasteful = model.energy_per_useful_bit(1024, 256, row_hit_rate=0.8)
        assert wasteful == pytest.approx(4 * tight)

    def test_hit_rate_lowers_energy(self):
        model = self._model()
        cold = model.energy_per_useful_bit(1024, 1024, row_hit_rate=0.0)
        warm = model.energy_per_useful_bit(1024, 1024, row_hit_rate=0.9)
        assert warm < cold

    def test_bad_hit_rate(self):
        with pytest.raises(ConfigurationError):
            self._model().energy_per_useful_bit(1024, 1024, row_hit_rate=1.5)
