"""Round-trip: record a live controller trace, replay it offline.

Closes the loop between the two verification layers: a simulation run
with ``record_commands=True`` produces the exact command sequence the
controller issued; replaying it from scratch through
:class:`~repro.dram.tracecheck.TraceChecker` must find zero violations,
and the replay's derived statistics (command mix, data beats, refresh
count) must agree with the statistics the live run reported.  Warm-up
is zero throughout so the recorded log and the measured counters cover
the same cycles.
"""

import random

import pytest

from repro.dram.tracecheck import TraceChecker, check_controller_log
from repro.verify.fuzz import build_simulator, gen_sim_case


def run_recorded(params, fast_forward=True):
    params = {**params, "sim": {**params["sim"], "warmup_cycles": 0}}
    simulator = build_simulator(
        params, fast_forward=fast_forward, record_commands=True
    )
    result = simulator.run()
    return simulator, result


SEEDS = [f"roundtrip:{i}" for i in range(8)]


class TestTraceRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recorded_trace_replays_clean(self, seed):
        params = gen_sim_case(random.Random(seed))
        simulator, _ = run_recorded(params)
        report = check_controller_log(simulator.controller)
        assert report.clean, report.summary()

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_replay_statistics_match_live_statistics(self, seed):
        params = gen_sim_case(random.Random(seed))
        simulator, result = run_recorded(params)
        report = check_controller_log(simulator.controller)

        # Command mix: the replay counts exactly what the live run
        # counted (zero warm-up, so the log covers the measured window).
        assert report.command_counts == result.commands
        assert report.command_counts["REF"] == result.refreshes
        assert report.commands == len(simulator.controller.command_log)

        # Data movement: every column command moves one burst; requests
        # still in flight at simulation end were issued but not retired,
        # so the live payload figure never exceeds the replay's.
        burst = simulator.device.timing.burst_length
        word_bits = simulator.device.organization.word_bits
        columns = report.command_counts["RD"] + report.command_counts["WR"]
        assert report.data_beats == columns * burst
        assert result.data_bits_transferred <= report.data_beats * word_bits
        assert (
            result.data_bits_transferred
            == result.requests_completed * burst * word_bits
        )

    def test_naive_and_fast_logs_are_the_same_trace(self):
        params = gen_sim_case(random.Random("roundtrip:paths"))
        fast_sim, _ = run_recorded(params, fast_forward=True)
        naive_sim, _ = run_recorded(params, fast_forward=False)
        assert (
            fast_sim.controller.command_log
            == naive_sim.controller.command_log
        )

    def test_checker_flags_a_tampered_trace(self):
        # Sanity that the replay is a real referee: re-issuing the first
        # ACTIVATE immediately after itself is a tRC violation.
        from dataclasses import replace

        from repro.dram.commands import CommandType

        params = gen_sim_case(random.Random("roundtrip:tamper"))
        simulator, _ = run_recorded(params)
        log = list(simulator.controller.command_log)
        acts = [c for c in log if c.kind is CommandType.ACTIVATE]
        if not acts:
            pytest.skip("trace has no ACTIVATE to duplicate")
        first = acts[0]
        index = log.index(first)
        log.insert(index + 1, replace(first, cycle=first.cycle + 1))
        report = TraceChecker(
            organization=simulator.device.organization,
            timing=simulator.device.timing,
        ).check(log)
        assert not report.clean
