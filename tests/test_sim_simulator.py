"""Tests for repro.sim: the end-to-end cycle simulator."""

import pytest

from repro.controller.controller import ControllerConfig, MemoryController
from repro.controller.page_policy import ClosedPagePolicy
from repro.controller.scheduler import FCFSScheduler
from repro.dram.edram import EDRAMMacro
from repro.dram.organizations import AddressMapping, MappingScheme
from repro.errors import ConfigurationError
from repro.sim.simulator import MemorySystemSimulator, SimulationConfig
from repro.sim.stats import LatencyStats
from repro.traffic.client import MemoryClient
from repro.traffic.patterns import RandomPattern, SequentialPattern
from repro.units import MBIT


def build_sim(clients, cycles=6000, warmup=500, **controller_kwargs):
    macro = EDRAMMacro.build(
        size_bits=4 * MBIT, width=64, banks=4, page_bits=2048
    )
    device = macro.device()
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(
            device.organization, MappingScheme.ROW_BANK_COL
        ),
        **controller_kwargs,
    )
    return MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(cycles=cycles, warmup_cycles=warmup),
    )


def stream_client(name="stream", rate=0.1, seed=0, base=0, length=32768):
    return MemoryClient(
        name=name,
        pattern=SequentialPattern(base=base, length=length),
        rate=rate,
        seed=seed,
    )


def random_client(name="rand", rate=0.1, seed=1, length=262144):
    return MemoryClient(
        name=name,
        pattern=RandomPattern(base=0, length=length, seed=seed),
        rate=rate,
        seed=seed,
    )


class TestLatencyStats:
    def test_basic_stats(self):
        stats = LatencyStats()
        for value in [10, 20, 30]:
            stats.record(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(20.0)
        assert stats.minimum == 10
        assert stats.maximum == 30
        assert stats.percentile(50) == pytest.approx(20.0)

    def test_empty_stats(self):
        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.percentile(99) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyStats().record(-1)


class TestSimulatorBasics:
    def test_light_load_fully_served(self):
        sim = build_sim([stream_client(rate=0.05)])
        result = sim.run()
        # Offered: 0.05 req/cyc x 4 beats = 20% of peak.
        assert result.bandwidth_efficiency == pytest.approx(0.20, abs=0.03)
        assert result.requests_completed > 0

    def test_sustained_never_exceeds_peak(self):
        sim = build_sim(
            [stream_client(rate=0.3), random_client(rate=0.3)]
        )
        result = sim.run()
        assert (
            result.sustained_bandwidth_bits_per_s
            <= result.peak_bandwidth_bits_per_s * (1 + 1e-9)
        )

    def test_stream_traffic_high_hit_rate(self):
        sim = build_sim([stream_client(rate=0.2)])
        result = sim.run()
        assert result.row_hit_rate > 0.85

    def test_random_traffic_low_hit_rate(self):
        sim = build_sim([random_client(rate=0.2)])
        result = sim.run()
        assert result.row_hit_rate < 0.3

    def test_random_slower_than_stream(self):
        stream = build_sim([stream_client(rate=0.25)]).run()
        random_ = build_sim([random_client(rate=0.25)]).run()
        assert (
            random_.sustained_bandwidth_bits_per_s
            <= stream.sustained_bandwidth_bits_per_s
        )
        assert random_.latency.mean > stream.latency.mean

    def test_per_client_stats_present(self):
        sim = build_sim([stream_client(), random_client()])
        result = sim.run()
        assert set(result.latency_by_client) == {"stream", "rand"}
        assert result.fifo_high_water["stream"] >= 1

    def test_summary_readable(self):
        result = build_sim([stream_client()]).run()
        text = result.summary()
        assert "GB/s" in text and "row-hit" in text

    def test_bank_activations_recorded(self):
        result = build_sim([random_client(rate=0.3)]).run()
        assert len(result.bank_activations) == 4
        assert sum(result.bank_activations) > 0

    def test_interleaved_mapping_balances_banks(self):
        # Random traffic under ROW_BANK_COL spreads activations evenly.
        result = build_sim([random_client(rate=0.3)]).run()
        assert result.bank_imbalance() < 1.3

    def test_bank_imbalance_degenerate_cases(self):
        from repro.sim.stats import LatencyStats, SimulationResult

        empty = SimulationResult(
            cycles=1,
            clock_hz=1e8,
            word_bits=16,
            requests_completed=0,
            data_bits_transferred=0,
            peak_bandwidth_bits_per_s=1.6e9,
            latency=LatencyStats(),
            latency_by_client={},
            row_hit_rate=0.0,
            fifo_high_water={},
            fifo_stall_cycles={},
            commands={},
            refreshes=0,
        )
        assert empty.bank_imbalance() == 1.0


class TestSaturation:
    def test_overload_saturates_below_peak(self):
        # Two random clients offering 160% of peak on a single-bank
        # organization: with no bank parallelism to hide row misses the
        # sustained rate saturates far below peak (Section 4's point —
        # and why the number of banks is a first-class design parameter).
        macro = EDRAMMacro.build(
            size_bits=4 * MBIT, width=64, banks=1, page_bits=2048
        )
        device = macro.device()
        controller = MemoryController(
            device=device,
            mapping=AddressMapping(
                device.organization, MappingScheme.ROW_BANK_COL
            ),
        )
        sim = MemorySystemSimulator(
            controller=controller,
            clients=[
                random_client(name="r1", rate=0.8, seed=1),
                random_client(name="r2", rate=0.8, seed=2),
            ],
            config=SimulationConfig(cycles=6000, warmup_cycles=500),
        )
        result = sim.run()
        assert result.bandwidth_efficiency < 0.6
        assert result.fifo_stall_cycles["r1"] > 0

    def test_more_banks_higher_sustained(self):
        def efficiency(banks):
            macro = EDRAMMacro.build(
                size_bits=4 * MBIT, width=64, banks=banks, page_bits=2048
            )
            device = macro.device()
            controller = MemoryController(
                device=device,
                mapping=AddressMapping(
                    device.organization, MappingScheme.ROW_BANK_COL
                ),
            )
            sim = MemorySystemSimulator(
                controller=controller,
                clients=[
                    random_client(name="r1", rate=0.8, seed=1),
                    random_client(name="r2", rate=0.8, seed=2),
                ],
                config=SimulationConfig(cycles=6000, warmup_cycles=500),
            )
            return sim.run().bandwidth_efficiency

        assert efficiency(8) > efficiency(1)


class TestPolicyAblation:
    def test_closed_page_hurts_streams(self):
        open_result = build_sim([stream_client(rate=0.5)]).run()
        closed_result = build_sim(
            [stream_client(rate=0.5)], page_policy=ClosedPagePolicy()
        ).run()
        assert (
            closed_result.row_hit_rate < open_result.row_hit_rate
        )

    def test_fcfs_vs_frfcfs_on_mixed_traffic(self):
        clients = lambda: [  # noqa: E731 - small test factory
            stream_client(rate=0.3, seed=3),
            random_client(rate=0.3, seed=4),
        ]
        frfcfs = build_sim(clients()).run()
        fcfs = build_sim(clients(), scheduler=FCFSScheduler()).run()
        assert (
            frfcfs.sustained_bandwidth_bits_per_s
            >= fcfs.sustained_bandwidth_bits_per_s - 1e-9
        )


class TestValidation:
    def test_no_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            build_sim([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            build_sim([stream_client(), stream_client()])

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(cycles=0)
