"""Tests for repro.core.evaluator, requirements and metrics."""

import pytest

from repro.core.evaluator import Evaluator
from repro.core.metrics import SolutionMetrics
from repro.core.requirements import ApplicationRequirements
from repro.dram.catalog import smallest_system
from repro.dram.edram import EDRAMMacro
from repro.errors import ConfigurationError
from repro.units import MBIT


def requirements(locality=0.7, bandwidth=1e9, capacity=8 * MBIT):
    return ApplicationRequirements(
        name="test",
        capacity_bits=capacity,
        sustained_bandwidth_bits_per_s=bandwidth,
        locality=locality,
    )


class TestRequirements:
    def test_properties(self):
        req = requirements(bandwidth=8e9, capacity=16 * MBIT)
        assert req.capacity_mbit == pytest.approx(16.0)
        assert req.bandwidth_gbyte_per_s == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            requirements(capacity=0)
        with pytest.raises(ConfigurationError):
            requirements(locality=1.5)


class TestAnalyticKernels:
    def test_hit_rate_stream_vs_random(self):
        hit_stream = Evaluator.row_hit_rate(1.0, 2048, 256)
        hit_random = Evaluator.row_hit_rate(0.0, 2048, 256)
        assert hit_stream == pytest.approx(1 - 256 / 2048)
        assert hit_random == 0.0

    def test_hit_rate_longer_pages_help(self):
        assert Evaluator.row_hit_rate(0.8, 8192, 256) > Evaluator.row_hit_rate(
            0.8, 1024, 256
        )

    def test_burst_spanning_page_always_misses(self):
        assert Evaluator.row_hit_rate(1.0, 1024, 2048) == 0.0

    def test_efficiency_banks_recover_bandwidth(self):
        kwargs = dict(
            hit_rate=0.0, burst_cycles=4, prep_cycles=6, refresh_overhead=0.0
        )
        one = Evaluator.bandwidth_efficiency(banks=1, **kwargs)
        four = Evaluator.bandwidth_efficiency(banks=4, **kwargs)
        assert one == pytest.approx(0.4)
        assert four == pytest.approx(1.0)

    def test_efficiency_hits_recover_bandwidth(self):
        cold = Evaluator.bandwidth_efficiency(0.0, 4, 6, 1, 0.0)
        warm = Evaluator.bandwidth_efficiency(0.9, 4, 6, 1, 0.0)
        assert warm > cold

    def test_refresh_taxes_bandwidth(self):
        clean = Evaluator.bandwidth_efficiency(0.5, 4, 6, 4, 0.0)
        taxed = Evaluator.bandwidth_efficiency(0.5, 4, 6, 4, 0.05)
        assert taxed == pytest.approx(0.95 * clean)

    def test_efficiency_never_above_one(self):
        assert Evaluator.bandwidth_efficiency(1.0, 4, 0, 16, 0.0) <= 1.0


class TestMacroEvaluation:
    def test_metrics_complete(self):
        macro = EDRAMMacro.build(size_bits=8 * MBIT, width=128)
        metrics = Evaluator().evaluate_macro(macro, requirements())
        assert metrics.embedded
        assert metrics.capacity_bits == 8 * MBIT
        assert 0 < metrics.sustained_bandwidth_bits_per_s <= (
            metrics.peak_bandwidth_bits_per_s
        )
        assert metrics.power_w > 0
        assert metrics.area_mm2 > 0
        assert metrics.unit_cost > 0

    def test_wider_interface_more_bandwidth(self):
        req = requirements()
        narrow = Evaluator().evaluate_macro(
            EDRAMMacro.build(size_bits=8 * MBIT, width=64), req
        )
        wide = Evaluator().evaluate_macro(
            EDRAMMacro.build(size_bits=8 * MBIT, width=512), req
        )
        assert (
            wide.sustained_bandwidth_bits_per_s
            > narrow.sustained_bandwidth_bits_per_s
        )

    def test_random_traffic_lowers_sustained(self):
        # Single bank so there is no parallelism to hide the misses.
        macro = EDRAMMacro.build(size_bits=8 * MBIT, width=128, banks=1)
        local = Evaluator().evaluate_macro(macro, requirements(locality=0.9))
        random_ = Evaluator().evaluate_macro(macro, requirements(locality=0.1))
        assert (
            random_.sustained_bandwidth_bits_per_s
            < local.sustained_bandwidth_bits_per_s
        )

    def test_load_inflates_latency(self):
        macro = EDRAMMacro.build(size_bits=8 * MBIT, width=128)
        light = Evaluator().evaluate_macro(
            macro, requirements(bandwidth=1e8)
        )
        heavy = Evaluator().evaluate_macro(
            macro, requirements(bandwidth=5e9)
        )
        assert heavy.mean_latency_ns > light.mean_latency_ns


class TestDiscreteEvaluation:
    def test_discrete_metrics(self):
        system = smallest_system(8 * MBIT, 256)
        metrics = Evaluator().evaluate_discrete(system, requirements())
        assert not metrics.embedded
        assert metrics.n_chips == 16
        assert metrics.area_mm2 == 0.0
        assert metrics.capacity_bits == 64 * MBIT

    def test_embedded_beats_discrete_on_power(self):
        # The E1 structure holds through the evaluator too.
        req = requirements(bandwidth=4e9)
        system = smallest_system(8 * MBIT, 256)
        discrete = Evaluator().evaluate_discrete(system, req)
        macro = EDRAMMacro.build(size_bits=8 * MBIT, width=256)
        embedded = Evaluator().evaluate_macro(macro, req)
        assert discrete.power_w > 4 * embedded.power_w


class TestRequirementChecks:
    def test_meets_all(self):
        req = requirements(bandwidth=5e8)
        macro = EDRAMMacro.build(size_bits=8 * MBIT, width=128)
        metrics = Evaluator().evaluate_macro(macro, req)
        assert Evaluator().meets(metrics, req)

    def test_capacity_shortfall_fails(self):
        req = requirements(capacity=32 * MBIT, bandwidth=5e8)
        macro = EDRAMMacro.build(size_bits=8 * MBIT, width=128)
        metrics = Evaluator().evaluate_macro(macro, req)
        assert not Evaluator().meets(metrics, req)

    def test_power_budget_enforced(self):
        req = ApplicationRequirements(
            name="tight",
            capacity_bits=8 * MBIT,
            sustained_bandwidth_bits_per_s=5e8,
            power_budget_w=1e-6,
        )
        macro = EDRAMMacro.build(size_bits=8 * MBIT, width=128)
        metrics = Evaluator().evaluate_macro(macro, req)
        assert not Evaluator().meets(metrics, req)


class TestSolutionMetrics:
    def _metrics(self, **overrides):
        base = dict(
            label="x",
            capacity_bits=8 * MBIT,
            peak_bandwidth_bits_per_s=1e9,
            sustained_bandwidth_bits_per_s=5e8,
            mean_latency_ns=50.0,
            power_w=0.5,
            area_mm2=10.0,
            n_chips=1,
            unit_cost=3.0,
            embedded=True,
        )
        base.update(overrides)
        return SolutionMetrics(**base)

    def test_derived_figures(self):
        metrics = self._metrics()
        assert metrics.bandwidth_efficiency == pytest.approx(0.5)
        assert metrics.capacity_mbit == pytest.approx(8.0)
        assert metrics.fill_frequency_hz == pytest.approx(5e8 / (8 * MBIT))
        assert metrics.overhead_bits(6 * MBIT) == 2 * MBIT

    def test_objective_tuple_signs(self):
        metrics = self._metrics()
        objectives = metrics.objective_tuple()
        assert objectives[0] == metrics.power_w
        assert objectives[3] == -metrics.sustained_bandwidth_bits_per_s

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._metrics(capacity_bits=0)
        with pytest.raises(ConfigurationError):
            self._metrics(n_chips=0)
