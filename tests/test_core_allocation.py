"""Tests for repro.core.allocation: buffer-to-bank placement."""

import pytest

from repro.core.allocation import BankAllocator, BufferSpec
from repro.dram.edram import EDRAMMacro
from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT


def macro(banks=8, size_mbit=8):
    return EDRAMMacro.build(
        size_bits=size_mbit * MBIT, width=64, banks=banks, page_bits=2048
    )


def buffer(name, mbit, traffic_gbit=0.5):
    return BufferSpec(
        name=name,
        size_bits=int(mbit * MBIT),
        traffic_bits_per_s=traffic_gbit * 1e9,
    )


class TestBasicAllocation:
    def test_two_small_buffers_get_private_banks(self):
        allocator = BankAllocator(macro())
        plan = allocator.allocate(
            [buffer("a", 0.5, 1.0), buffer("b", 0.5, 1.0)]
        )
        assert plan.banks_shared("a", "b") == 0
        assert plan.interference_estimate() == 0.0

    def test_placements_within_capacity(self):
        allocator = BankAllocator(macro())
        plan = allocator.allocate(
            [buffer("a", 2.0), buffer("b", 3.0), buffer("c", 1.0)]
        )
        total_words = macro().organization.total_words
        for placement in plan.placements:
            assert 0 <= placement.base_word < total_words
            assert placement.banks

    def test_large_buffer_spans_banks(self):
        allocator = BankAllocator(macro(banks=8, size_mbit=8))
        plan = allocator.allocate([buffer("big", 4.0)])
        assert len(plan.placement_of("big").banks) == 4

    def test_overcommit_raises(self):
        allocator = BankAllocator(macro(size_mbit=2))
        with pytest.raises(InfeasibleError):
            allocator.allocate([buffer("too-big", 4.0)])

    def test_full_capacity_fits(self):
        allocator = BankAllocator(macro(banks=4, size_mbit=4))
        plan = allocator.allocate(
            [buffer(f"b{i}", 1.0) for i in range(4)]
        )
        assert len(plan.placements) == 4


class TestTrafficAwareness:
    def test_hot_buffers_isolated_first(self):
        # Three buffers, two banks each; the two hottest must not share.
        allocator = BankAllocator(macro(banks=4, size_mbit=8))
        plan = allocator.allocate(
            [
                buffer("hot1", 2.0, traffic_gbit=3.0),
                buffer("hot2", 2.0, traffic_gbit=2.5),
                buffer("cold", 2.0, traffic_gbit=0.1),
            ]
        )
        assert plan.banks_shared("hot1", "hot2") == 0

    def test_interference_reflects_sharing(self):
        # Force sharing by filling the banks.
        tight = BankAllocator(macro(banks=2, size_mbit=4))
        plan = tight.allocate(
            [
                buffer("a", 2.0, traffic_gbit=1.0),
                buffer("b", 2.0, traffic_gbit=1.0),
            ]
        )
        if plan.banks_shared("a", "b") > 0:
            assert plan.interference_estimate() > 0

    def test_more_banks_less_interference(self):
        buffers = [
            buffer("a", 1.0, 2.0),
            buffer("b", 1.0, 1.5),
            buffer("c", 1.0, 1.0),
            buffer("d", 1.0, 0.5),
        ]
        few = BankAllocator(macro(banks=2, size_mbit=4)).allocate(buffers)
        many = BankAllocator(macro(banks=8, size_mbit=8)).allocate(buffers)
        assert (
            many.interference_estimate() <= few.interference_estimate()
        )


class TestAddressing:
    def test_base_words_disjoint(self):
        allocator = BankAllocator(macro(banks=8, size_mbit=8))
        plan = allocator.allocate(
            [buffer("a", 1.0), buffer("b", 1.0), buffer("c", 1.0)]
        )
        bases = [placement.base_word for placement in plan.placements]
        assert len(set(bases)) == len(bases)

    def test_base_word_decodes_to_first_bank(self):
        allocator = BankAllocator(macro(banks=8, size_mbit=8))
        plan = allocator.allocate([buffer("a", 1.0), buffer("b", 2.0)])
        mapping = plan.address_mapping()
        for placement in plan.placements:
            decoded = mapping.decode(placement.base_word)
            assert decoded.bank == placement.banks[0]


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            BankAllocator(macro()).allocate([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            BankAllocator(macro()).allocate(
                [buffer("x", 1.0), buffer("x", 1.0)]
            )

    def test_unknown_buffer_query(self):
        plan = BankAllocator(macro()).allocate([buffer("a", 1.0)])
        with pytest.raises(ConfigurationError):
            plan.placement_of("missing")
