"""Why eDRAM does NOT capture PC main memory (paper Section 2).

"However, it is unlikely that edram will capture the PC market for main
memory, as the need for flexibility and an upgrade path is too strong."

This example runs the paper's own reasoning through the library: the
advisability rules veto the project despite enormous volume, and the
PC-granularity analysis shows the commodity path's actual pain (devices
outgrowing systems) — a pain an embedded solution cannot fix, because
it would freeze the memory size entirely.

Run:  python examples/pc_main_memory.py
"""

from repro.apps import (
    PC_GENERATIONS,
    device_growth_rate,
    forced_overprovision_mbit,
    system_growth_rate,
)
from repro.core import Advisor, ApplicationRequirements
from repro.reporting import Table
from repro.units import MBIT


def main() -> None:
    # The project, as its enormous volume would argue for it:
    requirements = ApplicationRequirements(
        name="PC main memory",
        capacity_bits=64 * MBIT,
        sustained_bandwidth_bits_per_s=0.8e9 * 8,
        volume_per_year=100_000_000,
        portable=False,
    )
    # ...and as its upgrade requirement actually decides it:
    advisor = Advisor(
        product_lifetime_years=4.0,
        needs_upgrade_path=True,  # the decisive fact
    )
    advice = advisor.advise(requirements)
    print(
        f"advisability of eDRAM PC main memory: {advice.score:.2f} "
        f"({'recommended' if advice.recommended else 'vetoed'})"
    )
    for reason in advice.reasons:
        print(f"  - {reason}")

    # The commodity path's own structural problem, quantified:
    print(
        f"\ndevice capacity grows {device_growth_rate():.0%}/yr but "
        f"systems only {system_growth_rate():.0%}/yr "
        f"(the paper's 'half the rate'):"
    )
    table = Table(
        title="PC memory granularity by platform generation",
        columns=["year", "device", "rank increment", "typical system",
                 "increment/system"],
    )
    for generation in PC_GENERATIONS:
        table.add_row(
            generation.year,
            f"{generation.device_capacity_mbit:g} Mbit "
            f"x{generation.device_width_bits}",
            f"{generation.increment_mbit} Mbit",
            f"{generation.typical_system_mbyte} MB",
            f"{generation.increment_fraction_of_system:.1f}x",
        )
    print(table.render())

    pc98 = PC_GENERATIONS[-1]
    wanted = 320  # Mbit: a 40-MB working set
    extra = forced_overprovision_mbit(wanted, pc98)
    print(
        f"\nwanting {wanted} Mbit in {pc98.year} forces buying "
        f"{wanted + extra:.0f} Mbit ({extra:.0f} Mbit over) — yet the "
        f"upgrade path that causes this waste is exactly what eDRAM "
        f"cannot offer, so the commodity DIMM keeps the socket."
    )


if __name__ == "__main__":
    main()
