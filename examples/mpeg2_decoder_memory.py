"""The paper's MPEG2 case study (Section 4.1), end to end.

Computes the decoder's memory budget for both output-buffer variants,
verifies the 16-Mbit fit and the 3-Mbit-for-2x-bandwidth trade, then
asks the design-space explorer for an embedded memory that serves the
decoder — and simulates the winning organization under decoder-like
traffic (display stream + motion-compensation blocks + bitstream).

Run:  python examples/mpeg2_decoder_memory.py
"""

from repro.apps import MPEG2MemoryBudget, DecoderVariant, PAL, NTSC
from repro.controller import MemoryController
from repro.core import ApplicationRequirements, DesignSpaceExplorer, Quantizer
from repro.dram import AddressMapping, EDRAMMacro, MappingScheme
from repro.sim import MemorySystemSimulator, SimulationConfig
from repro.traffic import (
    MemoryClient,
    MotionCompensationPattern,
    SequentialPattern,
)
from repro.units import MBIT


def print_budget(budget: MPEG2MemoryBudget, label: str) -> None:
    print(f"{label}:")
    print(f"  input (VBV) buffer : {budget.input_buffer_bits / MBIT:6.2f} Mbit")
    print(f"  reference frames   : {budget.reference_frames_bits / MBIT:6.2f} Mbit")
    print(f"  output buffer      : {budget.output_buffer_bits / MBIT:6.2f} Mbit")
    print(f"  total              : {budget.total_mbit:6.2f} Mbit "
          f"(fits 16 Mbit: {budget.fits_16_mbit})")
    print(f"  total bandwidth    : "
          f"{budget.total_bandwidth_bits_per_s() / 1e6:6.0f} Mbit/s "
          f"(pipeline {budget.pipeline_throughput_factor():.0f}x)")


def main() -> None:
    print(f"PAL frame:  {PAL.frame_mbit:.3f} Mbit (paper: 4.75)")
    print(f"NTSC frame: {NTSC.frame_mbit:.3f} Mbit (paper: 3.96)\n")

    standard = MPEG2MemoryBudget()
    reduced = MPEG2MemoryBudget(variant=DecoderVariant.REDUCED_OUTPUT)
    print_budget(standard, "standard decoder")
    print_budget(reduced, "reduced-output decoder")
    print(
        f"\nmemory saved: "
        f"{(standard.total_bits - reduced.total_bits) / MBIT:.2f} Mbit "
        f"(paper: ~3 Mbit) at 2x pipeline throughput"
    )

    # Design-space exploration for the standard decoder.
    requirements = ApplicationRequirements(
        name="MPEG2 decoder",
        capacity_bits=standard.total_bits,
        sustained_bandwidth_bits_per_s=standard.total_bandwidth_bits_per_s(),
        max_latency_ns=400.0,
        volume_per_year=10_000_000,
        locality=0.6,
    )
    result = DesignSpaceExplorer().explore(requirements)
    print(
        f"\nexplored {result.n_explored} organizations, "
        f"{len(result.feasible)} feasible, frontier of "
        f"{len(result.frontier)}"
    )
    for solution in Quantizer().named_solutions(result):
        metrics = solution.metrics
        print(
            f"  {solution.name:14s} {metrics.label:42s} "
            f"{metrics.power_w * 1e3:5.0f} mW  {metrics.area_mm2:5.1f} mm^2"
        )

    # Simulate a decoder-like client mix on the balanced solution's
    # organization family.
    macro = EDRAMMacro.build(
        size_bits=16 * MBIT, width=64, banks=4, page_bits=4096
    )
    device = macro.device()
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(device.organization, MappingScheme.ROW_BANK_COL),
    )
    words = device.organization.total_words
    frame_words = PAL.frame_bits // 64
    clients = [
        MemoryClient(
            name="display",
            pattern=SequentialPattern(base=0, length=frame_words),
            rate=0.05,
        ),
        MemoryClient(
            name="motion-comp",
            pattern=MotionCompensationPattern(
                base=frame_words,
                width=720 * 8 // 64,  # 720-pixel lines in 64-bit words
                height=576,
                block_w=2,
                block_h=16,
                max_displacement=8,
                seed=5,
            ),
            rate=0.12,
        ),
        MemoryClient(
            name="bitstream",
            pattern=SequentialPattern(
                base=3 * frame_words, length=words - 3 * frame_words
            ),
            rate=0.01,
            read_fraction=0.5,
        ),
    ]
    simulator = MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(cycles=15_000, warmup_cycles=1_500),
    )
    result = simulator.run()
    print(f"\ndecoder traffic simulation: {result.summary()}")


if __name__ == "__main__":
    main()
