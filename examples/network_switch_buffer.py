"""Network switch packet buffering: the high-end eDRAM market.

Paper Section 2: "memory sizes of up to 128 Mbit and interface widths up
to 512 [bits] are required for reading and writing data packets out of
large buffers."  This example sizes the shared buffer of a 16-port
switch, builds the matching eDRAM module, simulates ingress/egress
traffic, and compares test economics for the big module.

Run:  python examples/network_switch_buffer.py
"""

from repro.apps import SwitchBuffer
from repro.controller import MemoryController, TDMArbiter
from repro.core import Quantizer
from repro.dft import BISTController, MARCH_C_MINUS, TestCostModel, LOGIC_TESTER
from repro.dram import AddressMapping, EDRAMMacro, MappingScheme
from repro.sim import MemorySystemSimulator, SimulationConfig
from repro.traffic import MemoryClient, SequentialPattern
from repro.units import MBIT


def main() -> None:
    switch = SwitchBuffer(
        n_ports=16,
        line_rate_bits_per_s=1.25e9,
        buffering_s=2e-3,
    )
    print(
        f"switch: {switch.n_ports} ports x "
        f"{switch.line_rate_bits_per_s / 1e9:.2f} Gbit/s"
    )
    print(
        f"  buffer {switch.buffer_mbit:.1f} Mbit "
        f"({switch.cells_buffered()} cells), memory bandwidth "
        f"{switch.memory_bandwidth_bits_per_s() / 1e9:.1f} Gbit/s"
    )
    width = switch.interface_width_bits(143e6)
    print(f"  interface width at 143 MHz: {width} bits (paper: up to 512)")

    quantizer = Quantizer()
    size = quantizer.snap_size(switch.buffer_bits)
    print(
        f"  module snapped to {size / MBIT:.2f} Mbit "
        f"({quantizer.quantization_overhead(switch.buffer_bits):.1%} "
        f"overhead)"
    )
    macro = EDRAMMacro.build(
        size_bits=size, width=width, banks=16, page_bits=8192
    )
    print(
        f"  macro area {macro.area_mm2():.0f} mm^2, peak "
        f"{macro.peak_bandwidth_bits_per_s / 8e9:.2f} GB/s"
    )

    # Ingress writes + egress reads under a TDM arbiter: switches need
    # hard per-port guarantees, not work conservation.
    device = macro.device()
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(device.organization, MappingScheme.ROW_BANK_COL),
        arbiter=TDMArbiter(
            schedule=["ingress", "egress"], work_conserving=False
        ),
    )
    words = device.organization.total_words
    clients = [
        MemoryClient(
            name="ingress",
            pattern=SequentialPattern(base=0, length=words),
            rate=0.45,
            read_fraction=0.0,
        ),
        MemoryClient(
            name="egress",
            pattern=SequentialPattern(base=words // 2, length=words),
            rate=0.45,
            read_fraction=1.0,
        ),
    ]
    simulator = MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(cycles=12_000, warmup_cycles=1_000),
    )
    result = simulator.run()
    print(f"\npacket traffic simulation: {result.summary()}")
    for name in ("ingress", "egress"):
        stats = result.latency_by_client[name]
        print(
            f"  {name}: mean {stats.mean:.1f} cyc, "
            f"worst {stats.maximum} cyc (TDM bounds it)"
        )

    # Test economics for the big module (Section 6).
    with_bist = TestCostModel(
        tester=LOGIC_TESTER,
        bist=BISTController(internal_width_bits=width),
    )
    without = TestCostModel(tester=LOGIC_TESTER)
    print(
        f"\nMarch C- on {size / MBIT:.0f} Mbit: "
        f"{without.total_time_s(MARCH_C_MINUS, size):.1f} s/die external "
        f"vs {with_bist.total_time_s(MARCH_C_MINUS, size):.2f} s/die with "
        f"{width}-bit BIST"
    )


if __name__ == "__main__":
    main()
