"""Production test flow for an embedded DRAM module (Section 6).

Simulates a lot of dies through pre-fuse march testing, redundancy
repair allocation, fuse blowing and post-fuse verification — for two
quality targets (program storage vs. graphics) and several redundancy
levels — and rolls the results into per-die economics.

Run:  python examples/production_test_flow.py
"""

from repro.cost import WaferSpec, die_cost_before_test
from repro.dft import (
    BISTController,
    MARCH_C_MINUS,
    TestCostModel,
    TestFlow,
    LOGIC_TESTER,
)
from repro.dram import EDRAMMacro
from repro.reporting import Table
from repro.units import MBIT


def main() -> None:
    macro = EDRAMMacro.build(size_bits=32 * MBIT, width=256)
    print(
        f"module under test: {macro.size_bits / MBIT:.0f} Mbit, "
        f"{macro.area_mm2():.0f} mm^2"
    )

    # Test time: external vs. BIST.
    external = TestCostModel(tester=LOGIC_TESTER)
    bist = TestCostModel(
        tester=LOGIC_TESTER,
        bist=BISTController(internal_width_bits=macro.width),
    )
    print(
        f"March C- time/die: {external.total_time_s(MARCH_C_MINUS, macro.size_bits):.2f} s "
        f"external vs {bist.total_time_s(MARCH_C_MINUS, macro.size_bits):.2f} s with BIST "
        f"({bist.waiting_fraction(MARCH_C_MINUS, macro.size_bits):.0%} of it retention waiting)"
    )

    # Redundancy level x quality target over a simulated lot.
    table = Table(
        title="\nlot of 400 dies through pre-fuse -> repair -> post-fuse",
        columns=[
            "spares r+c",
            "quality",
            "pre-repair yield",
            "post-repair yield",
            "waived",
            "cost/good die",
        ],
    )
    wafer = WaferSpec(cost_multiplier=1.15)
    for spares in (0, 1, 2, 4):
        for waive, quality in ((False, "program"), (True, "graphics")):
            flow = TestFlow(
                spare_rows=spares,
                spare_cols=spares,
                mean_faults_per_die=1.5,
                waive_retention_only=waive,
            )
            lot = flow.run_lot(400, seed=20)
            cost = die_cost_before_test(
                wafer,
                macro.area_mm2(),
                max(lot.yield_post_repair, 1e-3),
            )
            table.add_row(
                f"{spares}+{spares}",
                quality,
                f"{lot.yield_pre_repair:.0%}",
                f"{lot.yield_post_repair:.0%}",
                lot.waived,
                f"{cost:.2f}",
            )
    print(table.render())
    print(
        "\nreading: redundancy buys most of the yield; the graphics "
        "quality target (waiving retention-only fallout) buys a little "
        "more on top — the Section 6 cost-reduction potential."
    )


if __name__ == "__main__":
    main()
