"""Full design-space exploration for a graphics controller.

Walks the complete paper workflow: advisability check (Section 2),
requirement capture, exhaustive organization sweep (Section 3), Pareto
frontier, quantized named solutions (Section 5), the logic<->memory die
trade (Section 1), and the embedded-vs-discrete verdict.

Run:  python examples/design_space_exploration.py
"""

from repro.apps import GraphicsFrameStore
from repro.core import (
    Advisor,
    ApplicationRequirements,
    DesignSpaceExplorer,
    LogicMemoryTrade,
    Quantizer,
)
from repro.core.tradeoffs import QUARTER_MICRON_DIE_BUDGET_MM2
from repro.units import MBIT


def main() -> None:
    # The application: a laptop 3D graphics controller (Section 2's
    # first conquered market).
    store = GraphicsFrameStore(width=800, height=600)
    print(
        f"graphics frame store: {store.total_mbit:.1f} Mbit, "
        f"{store.total_bandwidth_bits_per_s() / 8e9:.2f} GB/s"
    )
    requirements = ApplicationRequirements(
        name="laptop 3D graphics",
        capacity_bits=store.total_bits,
        sustained_bandwidth_bits_per_s=store.total_bandwidth_bits_per_s(),
        max_latency_ns=300.0,
        volume_per_year=5_000_000,
        portable=True,
        locality=0.75,
    )

    # Step 1: should this project use eDRAM at all?
    advice = Advisor(product_lifetime_years=2.0).advise(requirements)
    print(f"\nadvisability: {advice.score:.2f} "
          f"({'recommended' if advice.recommended else 'not recommended'})")
    for reason in advice.reasons:
        print(f"  - {reason}")

    # Step 2: sweep the organization space.
    explorer = DesignSpaceExplorer()
    result = explorer.explore(requirements)
    print(
        f"\nswept {result.n_explored} organizations -> "
        f"{len(result.feasible)} feasible -> frontier of "
        f"{len(result.frontier)}"
    )

    # Step 3: quantize to an understandable catalog.
    print("\nquantized solution set:")
    for solution in Quantizer().named_solutions(result):
        metrics = solution.metrics
        print(
            f"  {solution.name:14s} {metrics.label:44s} "
            f"{metrics.power_w * 1e3:5.0f} mW {metrics.area_mm2:5.1f} mm^2 "
            f"{metrics.sustained_bandwidth_bits_per_s / 8e9:5.2f} GB/s "
            f"{metrics.unit_cost:6.2f}"
        )

    # Step 4: what does the memory cost in logic on the same die?
    trade = LogicMemoryTrade(die_budget_mm2=QUARTER_MICRON_DIE_BUDGET_MM2)
    best = result.min_area
    gates_left = trade.max_logic_for_memory(best.capacity_bits)
    print(
        f"\non a {QUARTER_MICRON_DIE_BUDGET_MM2:.0f} mm^2 die, "
        f"{best.capacity_mbit:.0f} Mbit leaves room for "
        f"{gates_left / 1e3:.0f} kgates of rendering logic"
    )
    print(
        f"exchange rate: {trade.exchange_rate_gates_per_mbit():.0f} "
        f"gates per Mbit"
    )

    # Step 5: the verdict vs. commodity parts.
    baseline = result.discrete_baseline
    if baseline is not None:
        best_power = result.min_power
        print(
            f"\nembedded {best_power.power_w:.2f} W / "
            f"{best_power.capacity_mbit:.0f} Mbit vs discrete "
            f"{baseline.power_w:.2f} W / {baseline.capacity_mbit:.0f} Mbit "
            f"({baseline.n_chips} chips): "
            f"{baseline.power_w / best_power.power_w:.1f}x power, "
            f"{baseline.capacity_bits / best_power.capacity_bits:.1f}x "
            f"over-provisioning avoided"
        )


if __name__ == "__main__":
    main()
