"""Memory architecture of a set-top decoder chip: partition, allocate,
prefetch.

The paper's Section 3 system-level problems, solved in order for one
chip: decide which memory blocks become SRAM / eDRAM / off-chip
(partitioning), place the eDRAM buffers into banks so hot clients do not
thrash each other's pages (allocation), and enable the controller's
stream prefetcher for the display path (access-scheme optimization) —
then simulate before/after to see what each decision bought.

Run:  python examples/memory_architecture.py
"""

from repro.controller import MemoryController, PrefetchingMemoryController
from repro.core import (
    BankAllocator,
    BufferSpec,
    MemoryBlock,
    Partitioner,
)
from repro.dram import EDRAMMacro
from repro.sim import MemorySystemSimulator, SimulationConfig
from repro.traffic import (
    MemoryClient,
    MotionCompensationPattern,
    SequentialPattern,
)
from repro.units import MBIT


def main() -> None:
    # 1. Partition: which blocks live in which technology?
    blocks = [
        MemoryBlock("bitstream buffer", int(1.75 * MBIT), 0.03e9),
        MemoryBlock("frame stores", int(9.5 * MBIT), 0.45e9, 60.0),
        MemoryBlock("display buffer", int(4.75 * MBIT), 0.25e9, 60.0),
        MemoryBlock("mb line buffer", int(0.04 * MBIT), 1.5e9, 12.0),
    ]
    plan = Partitioner(area_budget_mm2=25.0).partition(blocks)
    print("partition (Section 3: SRAM/DRAM and on/off-chip):")
    for block in blocks:
        print(
            f"  {block.name:18s} {block.size_mbit:6.2f} Mbit -> "
            f"{plan.assignment[block.name].value}"
        )
    print(
        f"  on-chip area {plan.area_mm2:.1f} mm^2, access power "
        f"{plan.power_w * 1e3:.0f} mW, memory cost {plan.unit_cost:.2f}"
    )

    # 2. Allocate the eDRAM-resident buffers into banks.  The buffers
    #    total 16 Mbit; an 18-Mbit module leaves banking slack so every
    #    buffer can get whole-bank-aligned space (eDRAM's 256-Kbit
    #    granularity makes that slack cheap — 12.5% vs the 4x jump a
    #    commodity part would force).
    macro = EDRAMMacro.build(
        size_bits=18 * MBIT, width=64, banks=8, page_bits=2048
    )
    buffers = [
        BufferSpec("frame stores", int(9.5 * MBIT), 0.45e9),
        BufferSpec("display buffer", int(4.75 * MBIT), 0.25e9),
        BufferSpec("bitstream buffer", int(1.75 * MBIT), 0.03e9),
    ]
    allocation = BankAllocator(macro).allocate(buffers)
    print("\nbank allocation (Section 3: memory allocation/mapping):")
    for placement in allocation.placements:
        print(
            f"  {placement.buffer.name:18s} banks {placement.banks} "
            f"@ word {placement.base_word}"
        )
    print(
        f"  interference estimate: "
        f"{allocation.interference_estimate():.3g} (0 = fully isolated)"
    )

    # 3. Access scheme: simulate with and without the stream prefetcher.
    def simulate(controller_cls):
        device = macro.device()
        controller = controller_cls(
            device=device,
            mapping=allocation.address_mapping(),
        )
        frame = allocation.placement_of("frame stores")
        display = allocation.placement_of("display buffer")
        frame_words = frame.buffer.size_bits // 64
        display_words = display.buffer.size_bits // 64
        clients = [
            MemoryClient(
                name="display",
                pattern=SequentialPattern(
                    base=display.base_word, length=display_words
                ),
                rate=0.08,
            ),
            MemoryClient(
                name="motion-comp",
                pattern=MotionCompensationPattern(
                    base=frame.base_word,
                    width=90,  # 720 pixels / 8 pixels-per-64-bit-word
                    height=576,
                    block_w=2,
                    block_h=16,
                    max_displacement=8,
                    seed=4,
                ),
                rate=0.12,
            ),
        ]
        simulator = MemorySystemSimulator(
            controller=controller,
            clients=clients,
            config=SimulationConfig(cycles=12_000, warmup_cycles=1_000),
        )
        return controller, simulator.run()

    _, baseline = simulate(MemoryController)
    prefetch_controller, prefetched = simulate(PrefetchingMemoryController)
    print("\naccess scheme (Section 4: prefetching):")
    print(f"  baseline : {baseline.summary()}")
    print(f"  prefetch : {prefetched.summary()}")
    display_before = baseline.latency_by_client["display"].mean
    display_after = prefetched.latency_by_client["display"].mean
    print(
        f"  display client latency {display_before:.1f} -> "
        f"{display_after:.1f} cycles "
        f"(prefetch accuracy "
        f"{prefetch_controller.prefetch_accuracy():.0%})"
    )


if __name__ == "__main__":
    main()
