"""Quickstart: the library in sixty seconds.

Builds an embedded DRAM macro, checks the paper's headline power claim,
and runs a short cycle-accurate simulation of two clients sharing it.

Run:  python examples/quickstart.py
"""

from repro.controller import MemoryController
from repro.dram import EDRAMMacro, MappingScheme, AddressMapping
from repro.power import discrete_vs_embedded_power
from repro.sim import MemorySystemSimulator, SimulationConfig
from repro.traffic import MemoryClient, RandomPattern, SequentialPattern
from repro.units import MBIT


def main() -> None:
    # 1. Memory size, width, banks and page length are design
    #    parameters (paper Section 3): build a 8-Mbit, 128-bit macro.
    macro = EDRAMMacro.build(
        size_bits=8 * MBIT, width=128, banks=4, page_bits=2048
    )
    print(f"macro: {macro.organization}")
    print(
        f"  peak {macro.peak_bandwidth_bits_per_s / 8e9:.2f} GB/s, "
        f"area {macro.area_mm2():.1f} mm^2 "
        f"({macro.area_efficiency_mbit_per_mm2():.2f} Mbit/mm^2), "
        f"fill frequency {macro.fill_frequency_hz:.0f}/s"
    )

    # 2. The Section 1 power example: a 4 GB/s, 256-bit memory system.
    discrete, embedded, ratio = discrete_vs_embedded_power()
    print(
        f"\n4 GB/s system power: discrete {discrete.total_w:.1f} W "
        f"({discrete.n_chips} chips) vs embedded {embedded.total_w:.1f} W "
        f"-> {ratio:.1f}x (paper: 'about ten times')"
    )

    # 3. Cycle-accurate simulation: a display stream plus a CPU-like
    #    random client sharing the macro.
    device = macro.device()
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(
            device.organization, MappingScheme.ROW_BANK_COL
        ),
    )
    words = device.organization.total_words
    clients = [
        MemoryClient(
            name="display",
            pattern=SequentialPattern(base=0, length=words // 2),
            rate=0.12,
        ),
        MemoryClient(
            name="cpu",
            pattern=RandomPattern(base=0, length=words, seed=7),
            rate=0.08,
        ),
    ]
    simulator = MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(cycles=10_000, warmup_cycles=1_000),
    )
    result = simulator.run()
    print(f"\nsimulation: {result.summary()}")
    for name, stats in result.latency_by_client.items():
        print(
            f"  {name}: mean {stats.mean:.1f} cyc, "
            f"p99 {stats.percentile(99):.0f} cyc, FIFO high-water "
            f"{result.fifo_high_water[name]}"
        )


if __name__ == "__main__":
    main()
