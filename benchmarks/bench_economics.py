"""Economics bench: the embedded-vs-discrete crossover volume.

Section 2's first rule of thumb — "the product volume and product
lifetime are usually high" — is a statement about NRE amortization:
the merged die carries higher NRE (extra masks, eDRAM quali) and a
costlier process, so it needs volume before its saved packages, pins,
board space and commodity-memory over-provisioning pay it back.  This
bench sweeps volume and locates the crossover for a graphics-class
project, and shows how the crossover moves with memory content.
"""

from repro.cost.economics import ChipEconomics, SystemCostModel
from repro.cost.wafer import WaferSpec
from repro.reporting.tables import Table
from repro.units import MBIT


def build_model() -> SystemCostModel:
    return SystemCostModel(
        embedded=ChipEconomics(
            wafer=WaferSpec(cost_multiplier=1.15), nre=3.0e6
        ),
        discrete_logic=ChipEconomics(
            wafer=WaferSpec(cost_multiplier=1.0), nre=1.5e6
        ),
    )


def crossover_for_memory(memory_mbit: float) -> tuple:
    """(crossover volume, embedded cost @1M, discrete cost @1M)."""
    model = build_model()
    memory_area = memory_mbit * 1.07
    kwargs = dict(
        memory_area_mm2=memory_area,
        logic_area_mm2=60.0,
        embedded_pins=160,
        embedded_power_w=1.0,
        discrete_logic_pins=460,
        discrete_logic_power_w=1.2,
        # Commodity granularity: buy the next 16-Mbit multiple wide
        # enough for the bus (simplified to 4x over-provisioning for
        # small needs, 1.5x for large).
        memory_mbit=max(4 * memory_mbit, 64.0)
        if memory_mbit <= 16
        else 1.5 * memory_mbit,
        n_dram_chips=16,
    )
    crossover = model.crossover_volume(**kwargs)
    embedded = model.embedded_unit_cost(
        memory_area, 60.0, 160, 1.0, 1_000_000
    )
    discrete = model.discrete_unit_cost(
        60.0, 460, 1.2, kwargs["memory_mbit"], 16, 1_000_000
    )
    return crossover, embedded, discrete


def run_sweep():
    rows = []
    for memory_mbit in (4.0, 8.0, 16.0, 32.0, 64.0):
        crossover, embedded, discrete = crossover_for_memory(memory_mbit)
        rows.append((memory_mbit, crossover, embedded, discrete))
    return rows


def test_crossover_volume(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table(
        title="Embedded-vs-discrete crossover volume by memory content",
        columns=[
            "memory",
            "crossover volume",
            "embedded @1M",
            "discrete @1M",
        ],
    )
    for memory_mbit, crossover, embedded, discrete in rows:
        table.add_row(
            f"{memory_mbit:.0f} Mbit",
            f"{crossover:,}" if crossover else "never",
            f"{embedded:.2f}",
            f"{discrete:.2f}",
        )
    print()
    print(table.render())
    # Every configuration crosses over at some finite volume...
    assert all(crossover is not None for _, crossover, _, _ in rows)
    # ...and by 1M units/yr the embedded solution is already cheaper for
    # high memory content (Section 2: "either the memory content is high
    # enough to justify the higher DRAM process costs...").
    high = rows[-1]
    assert high[2] < high[3]
    # Low volume favors discrete: the crossover is well above small-run
    # territory for at least the small-memory case.
    assert rows[0][1] > 10_000
