"""Benchmark harness for experiment E10 (design_space).

Runs the experiment end to end, prints the paper-vs-measured report and
the regenerated table, and asserts every claim's shape holds.
"""

from repro.experiments import e10_design_space

from conftest import run_report


def test_e10_design_space(benchmark):
    report = run_report(benchmark, e10_design_space)
    assert report.all_hold, report.render()
