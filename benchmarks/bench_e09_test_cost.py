"""Benchmark harness for experiment E9 (test_cost).

Runs the experiment end to end, prints the paper-vs-measured report and
the regenerated table, and asserts every claim's shape holds.
"""

from repro.experiments import e09_test_cost

from conftest import run_report


def test_e09_test_cost(benchmark):
    report = run_report(benchmark, e09_test_cost)
    assert report.all_hold, report.render()
