"""Shared helpers for the benchmark harness."""

import pytest


def run_report(benchmark, module):
    """Benchmark an experiment module's run() once and print its report.

    Cycle-level experiments take seconds; one round keeps the harness
    usable while still timing the full pipeline.
    """
    report = benchmark.pedantic(module.run, rounds=1, iterations=1)
    print()
    print(report.render())
    if hasattr(module, "render_table"):
        print()
        print(module.render_table())
    return report


@pytest.fixture
def report_runner():
    return run_report
