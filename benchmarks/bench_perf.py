"""Performance benchmark: simulator fast path + design-space sweeps.

Measures the two optimized hot paths against their reference
implementations and writes ``BENCH_perf.json``:

* **sim_fast_forward** — an E5-style low-load sustainable-bandwidth run
  (three clients, rate <= 0.1 each) through the naive per-cycle loop and
  the event-skipping fast path.  The two results must be bit-identical;
  the section reports cycles/sec for both and the speedup.
* **event_engine** — a high-load (client rate 0.6) row-hit-heavy
  eight-client system through the naive per-cycle loop and the
  event-driven backend.  The two results must be bit-identical on
  ``result_fingerprint``; the section reports the speedup (the
  documented target is >= 5x at client_rate >= 0.5, where fast-forward
  never wins).
* **design_space** — the E10 MPEG2 exploration with the reference
  configuration (python pareto engine, cold caches) vs the optimized one
  (vectorized pareto, enumeration precheck, memoized evaluator), plus
  the warm re-explore hit rate.
* **batched_design_space** — the same 240-point grid evaluated by the
  scalar reference loop (macro construction + ``evaluate_macro`` +
  ``meets`` + ``objective_tuple`` per point) vs the numpy array-lane
  kernel (``evaluate_macro_grid`` + ``feasible_mask`` +
  ``objective_matrix``).  Every lane must match the scalar result to
  exact float equality; the documented target is >= 50x.
* **parallel_sweep** — a macro-evaluation sweep run serially and through
  the process pool (falls back to serial on single-CPU machines; the
  worker count used is recorded either way).
* **observability** — the MPEG2-decoder workload with observability
  off, metrics-only and metrics+tracing.  Results must be bit-identical
  across all three; the section reports the overhead ratios (the
  documented budget is < 2x with full tracing on).
* **injection** — the canonical injected workload on the plain
  controller, on the resilient controller with a disabled injector
  (must be bit-identical to the plain run) and with injection enabled.
  The section reports the overhead ratios (documented budget: the
  disabled injector stays under 2x; see docs/RESILIENCE.md).
* **sweep_telemetry** — the macro-evaluation sweep with the run
  ledger + progress reporter on vs fully off.  The point results must
  be identical; the section reports the telemetry overhead ratio (the
  documented budget is < 5% — telemetry is per-chunk/per-event, never
  per-simulated-cycle).
* **obs_tracing** — the same ledgered sweep with a trace context bound
  vs without one.  The point results must be bit-identical (tracing is
  identity metadata, never data); the section reports the tracing
  overhead ratio (documented budget: < 5% over the untraced ledgered
  run).
* **serve_cache** — the E10 MPEG2 exploration submitted twice to an
  in-process exploration service: cold (full execution) vs warm (a
  content-addressed cache hit).  The responses must be byte-identical
  and the warm request must trigger zero new executions; the documented
  target is a >= 10x warm-over-cold speedup.

Every run also appends one entry (mode, commit, the numeric metrics of
every section) to ``BENCH_history.jsonl`` so
``repro report --check-regression`` can gate future runs against the
rolling baseline; ``--no-history`` skips the append, ``--history``
points it elsewhere.

Run directly::

    python benchmarks/bench_perf.py [--smoke] [--out BENCH_perf.json]

``--smoke`` shrinks the cycle budget so CI can exercise the whole
harness in seconds; also usable under pytest (collects as two tests).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.evaluator import Evaluator
from repro.core.explorer import DesignSpaceExplorer
from repro.core.parallel import ParallelConfig
from repro.core.sweep import Sweep
from repro.controller.controller import ControllerConfig, MemoryController
from repro.dram.device import DRAMDevice
from repro.dram.edram import EDRAMMacro
from repro.dram.organizations import (
    AddressMapping,
    MappingScheme,
    Organization,
)
from repro.dram.timing import PC100_TIMING
from repro.experiments.e10_design_space import mpeg2_requirements
from repro.reporting.profiling import PerfReport, measure
from repro.sim.simulator import MemorySystemSimulator, SimulationConfig
from repro.traffic.client import ClientKind, MemoryClient
from repro.traffic.patterns import RandomPattern, SequentialPattern
from repro.units import MBIT
from repro.verify.differential import result_fingerprint

#: Per-client request rate of the low-load scenario (well under the
#: rate <= 0.1 bound; display-refresh-style duty cycle where idle-cycle
#: skipping matters most).
LOW_LOAD_RATE = 0.001

_REQUIREMENTS = mpeg2_requirements()


def build_simulator(
    cycles: int, warmup: int, fast_forward: bool, seed: int = 0
) -> MemorySystemSimulator:
    """E5-style system: stream + block + random clients on 4 banks.

    ``seed`` deterministically offsets every RNG in the workload (the
    random pattern and each client's read/write draw), so one benchmark
    configuration is pinned by ``(cycles, warmup, seed)`` alone and
    re-runs are bit-identical.
    """
    org = Organization(n_banks=4, n_rows=2048, page_bits=4096, word_bits=16)
    device = DRAMDevice(organization=org, timing=PC100_TIMING)
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(organization=org),
        config=ControllerConfig(),
    )
    quarter = org.total_words // 4
    clients = [
        MemoryClient(
            name="display",
            pattern=SequentialPattern(base=0, length=quarter),
            rate=LOW_LOAD_RATE,
            kind=ClientKind.STREAM,
        ),
        MemoryClient(
            name="video",
            pattern=SequentialPattern(base=quarter, length=quarter),
            rate=LOW_LOAD_RATE,
            read_fraction=0.7,
            kind=ClientKind.BLOCK,
            seed=seed + 7,
        ),
        MemoryClient(
            name="cpu",
            pattern=RandomPattern(
                base=0, length=org.total_words, seed=seed + 3
            ),
            rate=LOW_LOAD_RATE,
            read_fraction=0.6,
            kind=ClientKind.RANDOM,
            seed=seed + 11,
        ),
    ]
    return MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(
            cycles=cycles, warmup_cycles=warmup, fast_forward=fast_forward
        ),
    )


def bench_sim(
    report: PerfReport, cycles: int, warmup: int, seed: int = 0
) -> None:
    total = cycles + warmup
    naive_s, naive_result = measure(
        lambda: build_simulator(
            cycles, warmup, fast_forward=False, seed=seed
        ).run()
    )
    fast_sim = build_simulator(cycles, warmup, fast_forward=True, seed=seed)
    fast_s, fast_result = measure(fast_sim.run)
    identical = result_fingerprint(naive_result) == result_fingerprint(
        fast_result
    )
    if not identical:
        raise AssertionError(
            "fast-forward result diverged from the naive loop"
        )
    report.add(
        "sim_fast_forward",
        cycles=total,
        seed=seed,
        client_rate=LOW_LOAD_RATE,
        naive_seconds=naive_s,
        fast_seconds=fast_s,
        naive_cycles_per_sec=total / naive_s,
        fast_cycles_per_sec=total / fast_s,
        speedup=naive_s / fast_s,
        cycles_fast_forwarded=fast_sim.cycles_fast_forwarded,
        bit_identical=identical,
    )


#: Per-client request rate of the high-load event-engine scenario
#: (client_rate >= 0.5: the regime where fast-forward never wins and
#: only the event backend's command-scan skipping pays off).
HIGH_LOAD_RATE = 0.6


def build_highload_simulator(
    cycles: int, warmup: int, backend: str
) -> MemorySystemSimulator:
    """Row-hit-heavy eight-client system for the event-engine bench.

    Bank-high address mapping plus one private sequential stream per
    bank keeps every client inside its own open row, so the system is
    data-bus-limited: almost every cycle issues or waits on a column
    command, fast-forward finds nothing to skip, and the naive loop's
    full-window scheduler scan *is* the cost being measured.
    """
    macro = EDRAMMacro.build(
        size_bits=4 * MBIT, width=64, banks=8, page_bits=2048
    )
    device = macro.device()
    org = device.organization
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(org, MappingScheme.BANK_ROW_COL),
        config=ControllerConfig(fifo_capacity=8, window_size=64),
    )
    words_per_bank = org.total_words // org.n_banks
    clients = [
        MemoryClient(
            name=f"stream{index}",
            pattern=SequentialPattern(
                base=index * words_per_bank,
                length=org.columns_per_page,
            ),
            rate=HIGH_LOAD_RATE,
            read_fraction=0.7,
            kind=ClientKind.BLOCK,
            seed=13 + index,
        )
        for index in range(org.n_banks)
    ]
    return MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(
            cycles=cycles,
            warmup_cycles=warmup,
            fast_forward=False,
            backend=backend,
        ),
    )


def bench_event_engine(
    report: PerfReport, cycles: int, warmup: int
) -> None:
    total = cycles + warmup
    naive_s, naive_result = measure(
        lambda: build_highload_simulator(cycles, warmup, "cycle").run(),
        repeat=3,
    )
    event_sim = build_highload_simulator(cycles, warmup, "event")
    event_s, event_result = measure(event_sim.run, repeat=1)
    # measure() reuses the simulator only for the first run; re-build
    # for the remaining repeats so every run starts cold.
    for _ in range(2):
        fresh = build_highload_simulator(cycles, warmup, "event")
        event_s = min(event_s, measure(fresh.run)[0])
    if event_sim.backend_used != "event":
        raise AssertionError(
            "event backend fell back to cycle: "
            f"{event_sim.backend_fallback_reason}"
        )
    identical = result_fingerprint(naive_result) == result_fingerprint(
        event_result
    )
    if not identical:
        raise AssertionError(
            "event backend result diverged from the naive loop"
        )
    report.add(
        "event_engine",
        cycles=total,
        client_rate=HIGH_LOAD_RATE,
        clients=8,
        naive_seconds=naive_s,
        event_seconds=event_s,
        naive_cycles_per_sec=total / naive_s,
        event_cycles_per_sec=total / event_s,
        speedup=naive_s / event_s,
        requests_completed=event_result.requests_completed,
        identical=identical,
    )


def bench_design_space(report: PerfReport) -> None:
    def reference() -> int:
        explorer = DesignSpaceExplorer(
            evaluator=Evaluator(), pareto_engine="python"
        )
        return explorer.explore(_REQUIREMENTS).n_explored

    def optimized():
        explorer = DesignSpaceExplorer(evaluator=Evaluator())
        result = explorer.explore(_REQUIREMENTS)
        return explorer, result.n_explored

    reference_s, n_points = measure(reference)
    optimized_s, (explorer, _) = measure(optimized)
    # Warm re-explore: every evaluation served from the memo.
    warm_s, _ = measure(lambda: explorer.explore(_REQUIREMENTS).n_explored)
    info = explorer.evaluator.macro_cache_info()
    report.add(
        "design_space",
        points=n_points,
        reference_seconds=reference_s,
        optimized_seconds=optimized_s,
        warm_seconds=warm_s,
        reference_evals_per_sec=n_points / reference_s,
        optimized_evals_per_sec=n_points / optimized_s,
        speedup=reference_s / optimized_s,
        warm_speedup=reference_s / warm_s,
        cache_hits=info["hits"],
        cache_misses=info["misses"],
    )


def bench_batched_design_space(report: PerfReport) -> None:
    """Scalar reference loop vs the numpy array-lane kernel, 240 points.

    Both sides start from the same enumerated (size, width, banks,
    page) combinations and produce the feasibility mask plus the
    objective matrix; the batched side must match the scalar side to
    exact float equality on every lane before any timing is reported.
    """
    import numpy as np

    from repro.core.batch import evaluate_macro_grid

    combos = [
        (m.size_bits, m.width, m.banks, m.page_bits)
        for m in DesignSpaceExplorer().enumerate(_REQUIREMENTS)
    ]
    size, width, banks, page = (
        np.array(lane, dtype=np.int64) for lane in zip(*combos)
    )
    params = [
        dict(size_bits=s, width=w, banks=b, page_bits=p)
        for s, w, b, p in combos
    ]

    def reference():
        evaluator = Evaluator()
        rows = []
        for point in params:
            metrics = evaluator.evaluate_macro(
                EDRAMMacro(**point), _REQUIREMENTS
            )
            rows.append(
                (evaluator.meets(metrics, _REQUIREMENTS), metrics)
            )
        return rows

    def batched():
        evaluator = Evaluator()
        batch = evaluate_macro_grid(
            evaluator, _REQUIREMENTS, size, width, banks, page
        )
        return batch, batch.feasible_mask(), batch.objective_matrix()

    # Exactness first: every materialized lane equals the scalar
    # metrics bit for bit, and mask/objectives agree.
    scalar_rows = reference()
    batch, mask, matrix = batched()
    exact = all(
        metrics == batch.metrics(index)
        and feasible == bool(mask[index])
        and metrics.objective_tuple() == tuple(matrix[index])
        for index, (feasible, metrics) in enumerate(scalar_rows)
    )
    if not exact:
        raise AssertionError(
            "batched evaluation diverged from the scalar evaluator"
        )
    reference_s, _ = measure(reference, repeat=5)
    batched_s, _ = measure(batched, repeat=5)
    n = len(combos)
    report.add(
        "batched_design_space",
        points=n,
        reference_seconds=reference_s,
        batched_seconds=batched_s,
        reference_evals_per_sec=n / reference_s,
        batched_evals_per_sec=n / batched_s,
        speedup=reference_s / batched_s,
        identical=exact,
    )


def evaluate_sweep_point(width: int, page_bits: int) -> float:
    """Module-level (picklable) sweep evaluation for the pool bench."""
    evaluator = Evaluator()
    macro = EDRAMMacro(
        size_bits=16 * MBIT, width=width, banks=4, page_bits=page_bits
    )
    metrics = evaluator.evaluate_macro(macro, _REQUIREMENTS)
    return metrics.sustained_bandwidth_bits_per_s


def bench_parallel_sweep(report: PerfReport) -> None:
    import warnings

    from repro.core.parallel import ParallelFallbackWarning

    sweep = Sweep(
        axes={
            "width": [16, 32, 64, 128, 256],
            "page_bits": [1024, 2048, 4096, 8192],
        }
    )
    serial_s, serial_result = measure(
        lambda: sweep.run(evaluate_sweep_point, skip_errors=True)
    )
    # Don't over-subscribe small CI boxes: cap the pool at 4 workers.
    workers = min(4, os.cpu_count() or 1)
    config = ParallelConfig(workers=workers)
    fallback_reason = None
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", ParallelFallbackWarning)
        parallel_s, parallel_result = measure(
            lambda: sweep.run(
                evaluate_sweep_point, skip_errors=True, parallel=config
            )
        )
        for warning in caught:
            if issubclass(warning.category, ParallelFallbackWarning):
                fallback_reason = str(warning.message)
    matches = [
        (p.parameters, p.result) for p in serial_result.points
    ] == [(p.parameters, p.result) for p in parallel_result.points]
    if not matches:
        raise AssertionError("parallel sweep diverged from serial sweep")
    n = len(serial_result.points)
    report.add(
        "parallel_sweep",
        points=n,
        workers=workers,
        fallback_reason=fallback_reason,
        serial_seconds=serial_s,
        parallel_seconds=parallel_s,
        serial_evals_per_sec=n / serial_s,
        parallel_evals_per_sec=n / parallel_s,
        # A one-worker pool (or a fallback to serial) measures pool
        # overhead, not parallelism — no speedup claim is made then.
        speedup_expected=workers > 1 and fallback_reason is None,
        speedup=serial_s / parallel_s,
        identical=matches,
    )


def evaluate_telemetry_point(seed: int, cycles: int) -> tuple:
    """One sweep point of the telemetry bench: a short simulation,
    reduced to its :func:`result_fingerprint` so the on/off comparison
    is literally a bit-identity check."""
    result = build_simulator(
        cycles, cycles // 8, fast_forward=False, seed=seed
    ).run()
    return result_fingerprint(result)


def bench_sweep_telemetry(
    report: PerfReport,
    cycles: int = 400,
    ledger_out: str | None = None,
) -> None:
    """Ledger + progress on vs off over a simulation-backed sweep.

    The points are short naive-loop simulations (milliseconds each) so
    the ledger's fixed open cost — provenance, git subprocess — is
    amortized the way a real sweep amortizes it, and the ratio measures
    the per-point/per-event steady state.
    """
    import io
    import itertools
    import shutil
    import tempfile

    from repro.obs.progress import ProgressReporter

    sweep = Sweep(axes={"seed": list(range(24)), "cycles": [cycles]})
    n = sweep.n_points
    off_s, off_result = measure(
        lambda: sweep.run(evaluate_telemetry_point, skip_errors=True),
        repeat=3,
    )
    tmpdir = tempfile.mkdtemp(prefix="bench-ledger-")
    counter = itertools.count()
    last_ledger: list = []

    def run_with_telemetry():
        # A fresh ledger file per repeat: each run pays the full
        # open-and-provenance cost, like a real sweep would.
        path = os.path.join(tmpdir, f"sweep-{next(counter)}.ledger.jsonl")
        last_ledger[:] = [path]
        progress = ProgressReporter(
            total=n,
            stream=io.StringIO(),
            enabled=True,
            min_interval_s=0.0,
        )
        return sweep.run(
            evaluate_telemetry_point,
            skip_errors=True,
            ledger=path,
            progress=progress,
        )

    on_s, on_result = measure(run_with_telemetry, repeat=3)
    identical = [
        (p.parameters, p.result) for p in off_result.points
    ] == [(p.parameters, p.result) for p in on_result.points]
    if not identical:
        raise AssertionError("telemetry changed the sweep fingerprints")
    with open(last_ledger[0], "r", encoding="utf-8") as handle:
        ledger_events = sum(1 for line in handle if line.strip())
    if ledger_out is not None:
        shutil.copyfile(last_ledger[0], ledger_out)
    shutil.rmtree(tmpdir, ignore_errors=True)
    report.add(
        "sweep_telemetry",
        points=n,
        cycles_per_point=cycles,
        off_seconds=off_s,
        telemetry_seconds=on_s,
        telemetry_overhead_ratio=on_s / off_s,
        ledger_events=ledger_events,
        identical=identical,
    )


def bench_obs_tracing(report: PerfReport, cycles: int = 400) -> None:
    """Trace-context propagation on vs off over a ledgered sweep.

    Both runs carry a full ledger — the delta isolates what the trace
    context itself costs: minting child contexts per span/chunk and
    stamping three id fields onto every event.  Budget: < 5% over the
    untraced ledgered run, and the sweep results (reduced to
    ``result_fingerprint`` by the evaluation function) must be
    bit-identical — tracing is identity metadata, never data.
    """
    import itertools
    import os as _os
    import shutil
    import tempfile

    from repro.obs.ledger import RunLedger
    from repro.obs.tracectx import TraceContext

    sweep = Sweep(axes={"seed": list(range(24)), "cycles": [cycles]})
    tmpdir = tempfile.mkdtemp(prefix="bench-tracing-")
    counter = itertools.count()

    def run_with_ledger(trace):
        path = _os.path.join(
            tmpdir, f"sweep-{next(counter)}.ledger.jsonl"
        )
        ledger = RunLedger(path, trace=trace)
        try:
            return sweep.run(
                evaluate_telemetry_point, skip_errors=True, ledger=ledger
            )
        finally:
            ledger.close()

    off_s, off_result = measure(lambda: run_with_ledger(None), repeat=3)
    on_s, on_result = measure(
        lambda: run_with_ledger(TraceContext.root()), repeat=3
    )
    shutil.rmtree(tmpdir, ignore_errors=True)
    identical = [
        (p.parameters, p.result) for p in off_result.points
    ] == [(p.parameters, p.result) for p in on_result.points]
    if not identical:
        raise AssertionError("trace context changed the sweep results")
    report.add(
        "obs_tracing",
        points=sweep.n_points,
        cycles_per_point=cycles,
        untraced_seconds=off_s,
        traced_seconds=on_s,
        tracing_overhead_ratio=on_s / off_s,
        identical=identical,
    )


def bench_distributed(report: PerfReport, smoke: bool = False) -> None:
    """Work-queue executor vs the serial reference, plus kill/resume.

    Three gates, in order:

    1. **Identity** — a 2-worker (and, with the CPUs for it, 4-worker)
       work-queue sweep over the simulation workload must match the
       serial reference point for point on ``result_fingerprint``
       values, every time, before any timing is reported.
    2. **Scaling** — the documented targets are >= 1.7x at 2 workers
       and >= 3x at 4 workers.  Like ``bench_parallel_sweep``, the
       claims are only *asserted* when the machine has the cores to
       back them (``scaling_expected_*``): a 1-CPU CI box measures
       coordination overhead, not parallelism.
    3. **Resume** — a run with a durable result store has one worker
       ``SIGKILL``-ed mid-sweep; lease expiry reassigns its chunks and
       the merged result must still be bit-identical to serial.  A
       second run against the same store must evaluate zero fresh
       points (the no-fingerprint-evaluated-twice probe).
    """
    import shutil
    import tempfile
    import threading
    import time as _time

    from repro.core.executor import WorkQueueExecutor
    from repro.core.store import ResultStore
    # Spawned workers unpickle the task function by reference, so the
    # workload must come from an importable module — this script is
    # ``__main__`` (or pytest's ``bench_perf``), which workers can't
    # import.
    from repro.serve.workloads import sim_fingerprint

    n_seeds = 8 if smoke else 24
    cycles = 200 if smoke else 1_000
    sweep = Sweep(axes={"seed": list(range(n_seeds)), "cycles": [cycles]})
    serial_s, serial_result = measure(
        lambda: sweep.run(sim_fingerprint, skip_errors=True)
    )
    reference = [
        (p.parameters, p.result) for p in serial_result.points
    ]
    cpu = os.cpu_count() or 1
    tmpdir = tempfile.mkdtemp(prefix="bench-dist-")
    section: dict = {
        "points": n_seeds,
        "cycles_per_point": cycles,
        "cpus": cpu,
        "serial_seconds": serial_s,
    }
    try:
        worker_counts = [2] if (smoke or cpu < 4) else [2, 4]
        for workers in worker_counts:
            executor = WorkQueueExecutor(
                os.path.join(tmpdir, f"queue-{workers}w"),
                workers=workers,
                lease_timeout_s=30.0,
                timeout_s=600.0,
            )
            try:
                dist_s, dist_result = measure(
                    lambda: sweep.run(
                        sim_fingerprint,
                        skip_errors=True,
                        executor=executor,
                    ),
                    repeat=1,
                )
            finally:
                executor.close()
            if [
                (p.parameters, p.result) for p in dist_result.points
            ] != reference:
                raise AssertionError(
                    f"{workers}-worker work-queue sweep diverged from "
                    "the serial reference"
                )
            expected = cpu >= workers
            speedup = serial_s / dist_s
            section[f"seconds_{workers}w"] = dist_s
            section[f"speedup_{workers}w"] = speedup
            section[f"scaling_expected_{workers}w"] = expected
            target = {2: 1.7, 4: 3.0}[workers]
            if expected and not smoke and speedup < target:
                raise AssertionError(
                    f"{workers}-worker work-queue speedup {speedup:.2f}x "
                    f"is below the documented {target}x target"
                )
        # -- kill/resume cycle ------------------------------------------------
        store = ResultStore(
            path=os.path.join(tmpdir, "results.store.jsonl")
        )
        executor = WorkQueueExecutor(
            os.path.join(tmpdir, "queue-chaos"),
            workers=2,
            lease_timeout_s=2.0,
            timeout_s=600.0,
        )
        holder: dict = {}

        def chaos_run() -> None:
            holder["result"] = sweep.run(
                sim_fingerprint,
                skip_errors=True,
                executor=executor,
                store=store,
            )

        thread = threading.Thread(target=chaos_run)
        thread.start()
        # SIGKILL the first spawned worker as soon as it exists: its
        # leases must expire and its chunks be stolen by the survivor.
        deadline = _time.monotonic() + 30.0
        while _time.monotonic() < deadline and not executor._procs:
            _time.sleep(0.01)
        if executor._procs:
            executor._procs[0].kill()
        thread.join(timeout=600.0)
        executor.close()
        resumed = holder.get("result")
        if resumed is None:
            raise AssertionError(
                "work-queue sweep did not recover from the killed worker"
            )
        resume_identical = [
            (p.parameters, p.result) for p in resumed.points
        ] == reference
        if not resume_identical:
            raise AssertionError(
                "post-kill work-queue result diverged from serial"
            )
        # Warm re-run against the same store: every point served from
        # the store, zero fresh evaluations.
        warm = sweep.run(
            sim_fingerprint, skip_errors=True, store=store
        )
        warm_identical = [
            (p.parameters, p.result) for p in warm.points
        ] == reference
        if not warm_identical:
            raise AssertionError(
                "store-served re-run diverged from serial"
            )
        store_stats = store.stats()
        if store_stats["hits"] < n_seeds:
            raise AssertionError(
                "warm re-run was not fully served from the store: "
                f"{store_stats}"
            )
        store.close()
        section.update(
            identical=True,
            resume_identical=resume_identical,
            warm_identical=warm_identical,
            requeued_chunks=executor.stats["requeued"],
            store_entries=store_stats["entries"],
            store_hits=store_stats["hits"],
        )
        report.add("distributed", **section)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def bench_observability(
    report: PerfReport, cycles: int, warmup: int, trace_out: str | None = None
) -> None:
    from repro.obs import Observability
    from repro.obs.workloads import mpeg2_decoder_simulator

    def run_workload(obs):
        return mpeg2_decoder_simulator(
            cycles=cycles, warmup_cycles=warmup, obs=obs
        ).run()

    off_s, off_result = measure(lambda: run_workload(None))
    metrics_obs = Observability.create(trace=False)
    metrics_s, metrics_result = measure(lambda: run_workload(metrics_obs))
    trace_obs = Observability.create(trace=True)
    trace_s, trace_result = measure(lambda: run_workload(trace_obs))
    baseline = result_fingerprint(off_result)
    if baseline != result_fingerprint(metrics_result) or (
        baseline != result_fingerprint(trace_result)
    ):
        raise AssertionError(
            "observability changed the simulation result"
        )
    if trace_out is not None:
        trace_obs.trace.write(trace_out)
    report.add(
        "observability",
        cycles=cycles + warmup,
        off_seconds=off_s,
        metrics_seconds=metrics_s,
        trace_seconds=trace_s,
        metrics_overhead_ratio=metrics_s / off_s,
        trace_overhead_ratio=trace_s / off_s,
        trace_events=len(trace_obs.trace.events),
        bit_identical=True,
    )


def bench_injection(report: PerfReport, cycles: int, warmup: int) -> None:
    from repro.inject import InjectionConfig
    from repro.inject.runtime import build_injected_simulator

    def run_injected(injection):
        return build_injected_simulator(
            injection, cycles=cycles, warmup_cycles=warmup
        ).run()

    plain_s, plain_result = measure(lambda: run_injected(None))
    disabled_s, disabled_result = measure(
        lambda: run_injected(
            InjectionConfig(enabled=False, n_cell_faults=200)
        )
    )
    enabled_s, enabled_result = measure(
        lambda: run_injected(
            InjectionConfig(
                n_cell_faults=200,
                refresh_drop_rate=0.05,
                fifo_stall_rate=0.02,
            )
        )
    )
    if result_fingerprint(plain_result) != result_fingerprint(
        disabled_result
    ):
        raise AssertionError(
            "disabled injection diverged from the plain controller"
        )
    report.add(
        "injection",
        cycles=cycles + warmup,
        plain_seconds=plain_s,
        disabled_seconds=disabled_s,
        enabled_seconds=enabled_s,
        disabled_overhead_ratio=disabled_s / plain_s,
        enabled_overhead_ratio=enabled_s / plain_s,
        requests_completed=enabled_result.requests_completed,
        bit_identical=True,
    )


def bench_serve(report: PerfReport) -> None:
    """Exploration service: cold execute vs warm content-addressed hit.

    One in-process service runs the E10 MPEG2 exploration cold (a full
    ``DesignSpaceExplorer`` pass behind the job executor), then the
    byte-identical job again warm — the second response must come
    straight out of the result cache, with zero new executions.  The
    documented target is a >= 10x warm-over-cold speedup (the warm path
    is a dict lookup plus JSON decode, so in practice it is orders of
    magnitude beyond that).
    """
    from repro.serve.client import InProcessClient
    from repro.serve.handlers import ExplorationService
    from repro.serve.protocol import canonical_json

    job = {"kind": "explore", "requirements": "mpeg2"}
    service = ExplorationService(max_workers=2)
    client = InProcessClient(service)
    try:
        # repeat=1: a second cold run would hit the cache and measure
        # the warm path twice instead.
        cold_s, cold_envelope = measure(
            lambda: client.run(job, timeout_s=300.0), repeat=1
        )
        warm_s, warm_envelope = measure(
            lambda: client.run(job, timeout_s=300.0), repeat=5
        )
        identical = canonical_json(cold_envelope) == canonical_json(
            warm_envelope
        )
        if not identical:
            raise AssertionError(
                "warm service response diverged from the cold one"
            )
        if service.stats["executions"] != 1:
            raise AssertionError(
                "warm requests re-executed the job: "
                f"{service.stats['executions']} executions"
            )
        report.add(
            "serve_cache",
            points=cold_envelope["result"]["n_explored"],
            cold_seconds=cold_s,
            # Deliberately not *_seconds: warm latency is microseconds
            # of dict lookup, so the +30% regression gate on timing
            # metrics would trip on pure scheduler noise.
            warm_latency_s=warm_s,
            speedup=cold_s / warm_s,
            cache_hits=service.stats["cache_hits"],
            executions=service.stats["executions"],
            identical=identical,
        )
    finally:
        service.close()


def overload_point(x: float = 0.0, delay_s: float = 0.0) -> dict:
    if delay_s:
        time.sleep(delay_s)
    return {"x": x}


def bench_serve_overload(report: PerfReport) -> None:
    """Resilience layer under load: warm-path tax and shed latency.

    Two budgets from docs/SERVICE.md.  First, admission control and
    circuit breakers must cost the happy path almost nothing: the same
    warm cache-hit job is timed with resilience off and on, and the
    ratio must stay under 1.10 (a 10% tax on a dict lookup is already
    generous; the check retries to absorb scheduler noise on a
    microsecond-scale path).  Second, shedding must be *fast*: against
    a ``max_depth=1`` service saturated by a slow sweep, every flood
    submission is answered 429 and the p99 shed-response latency must
    stay under 250 ms — an overloaded service that answers slowly is
    just a different kind of outage.
    """
    from repro.serve.client import InProcessClient
    from repro.serve.handlers import ExplorationService
    from repro.serve.resilience import ResilienceConfig
    from repro.serve.workloads import register_workload, unregister_workload

    register_workload("bench_overload", overload_point, replace=True)
    try:
        warm_job = {
            "kind": "sweep",
            "workload": "bench_overload",
            "axes": {"x": [float(i) for i in range(32)]},
        }

        def warm_latency(resilience) -> float:
            service = ExplorationService(
                max_workers=2, resilience=resilience
            )
            client = InProcessClient(service)
            try:
                client.run(warm_job, timeout_s=60.0)  # cold fill
                seconds, _ = measure(
                    lambda: client.run(warm_job, timeout_s=60.0),
                    repeat=50,
                )
                return seconds
            finally:
                service.close()

        ratio = float("inf")
        baseline_s = resilient_s = 0.0
        for _ in range(3):  # sub-ms path: retry through noise spikes
            baseline_s = warm_latency(False)
            resilient_s = warm_latency(ResilienceConfig())
            ratio = resilient_s / baseline_s
            if ratio < 1.10:
                break
        if ratio >= 1.10:
            raise AssertionError(
                "resilience layer taxes the warm path "
                f"{ratio:.2f}x (budget: < 1.10x)"
            )

        service = ExplorationService(
            max_workers=2,
            resilience=ResilienceConfig(
                max_depth=1, shed_retry_after_s=0.05
            ),
        )
        client = InProcessClient(service)
        try:
            slow = client.submit(
                {
                    "kind": "sweep",
                    "workload": "bench_overload",
                    "axes": {
                        "x": [float(i) for i in range(8)],
                        "delay_s": [0.1],
                    },
                }
            )
            shed_latencies = []
            for index in range(200):
                # Distinct fingerprints: an identical job would join
                # the in-flight one as a coalesced follower, not shed.
                flood = {
                    "kind": "sweep",
                    "workload": "bench_overload",
                    "axes": {"x": [float(index)], "delay_s": [0.2]},
                }
                start = time.perf_counter()
                status, _ = client.request("POST", "/v1/jobs", flood)
                elapsed = time.perf_counter() - start
                if status == 429:
                    shed_latencies.append(elapsed)
            if not shed_latencies:
                raise AssertionError(
                    "saturated service shed none of the flood"
                )
            shed_latencies.sort()
            p99_index = max(
                0, int(len(shed_latencies) * 0.99 + 0.5) - 1
            )
            shed_p99 = shed_latencies[p99_index]
            if shed_p99 >= 0.25:
                raise AssertionError(
                    f"shed responses too slow: p99 {shed_p99:.3f}s "
                    "(budget: < 0.25s)"
                )
            final = client.wait(slow["job_id"], timeout_s=60.0)
            if final["status"] != "done":
                raise AssertionError(
                    "the accepted job did not survive the flood: "
                    f"{final['status']}"
                )
            report.add(
                "serve_overload",
                # Deliberately not *_seconds: both paths are micro-
                # second scale, so the +30% history gate on timing
                # metrics would trip on pure scheduler noise.
                warm_off_latency_s=baseline_s,
                warm_on_latency_s=resilient_s,
                warm_overhead_ratio=ratio,
                flood_requests=200,
                shed=len(shed_latencies),
                shed_p99_s=shed_p99,
                shed_worst_s=shed_latencies[-1],
                accepted_job_done=final["status"] == "done",
            )
        finally:
            service.close()
    finally:
        unregister_workload("bench_overload")


def run(
    smoke: bool = False,
    seed: int = 0,
    trace_out: str | None = None,
    ledger_out: str | None = None,
) -> PerfReport:
    report = PerfReport(title="Performance benchmark (fast paths)")
    if smoke:
        bench_sim(report, cycles=2_000, warmup=200, seed=seed)
        bench_event_engine(report, cycles=4_000, warmup=500)
        bench_observability(
            report, cycles=4_000, warmup=500, trace_out=trace_out
        )
        bench_injection(report, cycles=2_000, warmup=200)
    else:
        bench_sim(report, cycles=20_000, warmup=1_000, seed=seed)
        bench_event_engine(report, cycles=16_000, warmup=1_000)
        bench_observability(
            report, cycles=16_000, warmup=1_000, trace_out=trace_out
        )
        bench_injection(report, cycles=8_000, warmup=500)
    bench_design_space(report)
    bench_batched_design_space(report)
    bench_parallel_sweep(report)
    bench_sweep_telemetry(
        report,
        cycles=400 if smoke else 4_000,
        ledger_out=ledger_out,
    )
    bench_obs_tracing(report, cycles=400 if smoke else 4_000)
    bench_serve(report)
    bench_serve_overload(report)
    bench_distributed(report, smoke=smoke)
    return report


# -- pytest entry points ----------------------------------------------------


def test_perf_smoke() -> None:
    """The whole harness runs and the fast path stays bit-identical."""
    report = run(smoke=True)
    sim = report.sections["sim_fast_forward"]
    assert sim["bit_identical"]
    event = report.sections["event_engine"]
    assert event["identical"]
    assert event["speedup"] > 1.0, event
    batched = report.sections["batched_design_space"]
    assert batched["identical"]
    assert batched["speedup"] > 1.0, batched
    assert report.sections["parallel_sweep"]["identical"]
    obs = report.sections["observability"]
    assert obs["bit_identical"]
    # The documented observability budget: full tracing stays under 2x.
    assert obs["trace_overhead_ratio"] < 2.0, obs
    inject = report.sections["injection"]
    assert inject["bit_identical"]
    # The documented injection budget: a disabled injector stays under
    # 2x of the plain controller.
    assert inject["disabled_overhead_ratio"] < 2.0, inject
    telemetry = report.sections["sweep_telemetry"]
    assert telemetry["identical"]
    assert telemetry["ledger_events"] > 0
    # The documented budget is < 5% sweep overhead with ledger +
    # progress on; the smoke assertion is looser to absorb CI noise on
    # a sub-second sweep.
    assert telemetry["telemetry_overhead_ratio"] < 1.5, telemetry
    tracing = report.sections["obs_tracing"]
    assert tracing["identical"]
    # The documented budget is < 5% over an untraced ledgered sweep;
    # the smoke bound is looser for the same sub-second-noise reason.
    assert tracing["tracing_overhead_ratio"] < 1.5, tracing
    serve = report.sections["serve_cache"]
    assert serve["identical"]
    assert serve["executions"] == 1
    # The documented service budget: a warm content-addressed hit is at
    # least 10x faster than the cold exploration it replays.
    assert serve["speedup"] >= 10.0, serve
    overload = report.sections["serve_overload"]
    assert overload["shed"] > 0
    assert overload["warm_overhead_ratio"] < 1.10, overload
    assert overload["shed_p99_s"] < 0.25, overload
    assert overload["accepted_job_done"]
    dist = report.sections["distributed"]
    assert dist["identical"]
    assert dist["resume_identical"]
    assert dist["warm_identical"]
    # Scaling targets only hold where the CPUs exist to back them; a
    # 1-CPU CI box measures coordination overhead, not parallelism.
    if dist.get("scaling_expected_2w"):
        assert dist["speedup_2w"] > 1.0, dist
    if dist.get("scaling_expected_4w"):
        assert dist["speedup_4w"] > 1.0, dist


def test_perf_deterministic() -> None:
    """Same seed -> bit-identical benchmark workload, twice over."""
    first = build_simulator(500, 50, fast_forward=True, seed=42).run()
    second = build_simulator(500, 50, fast_forward=True, seed=42).run()
    assert result_fingerprint(first) == result_fingerprint(second)
    # The seed visibly reaches the workload RNGs.
    sim = build_simulator(500, 50, fast_forward=True, seed=42)
    assert [client.seed for client in sim.clients[1:]] == [49, 53]


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny cycle budget (CI smoke run)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload RNG seed (same seed -> bit-identical workload)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_perf.json"),
        help="JSON report path (default: repo-root BENCH_perf.json)",
    )
    parser.add_argument(
        "--trace-out",
        help="also write the observability bench's Chrome trace here",
    )
    parser.add_argument(
        "--ledger-out",
        help="also keep the sweep-telemetry bench's run ledger here "
        "(CI feeds it to `repro report`)",
    )
    parser.add_argument(
        "--history",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"
        ),
        help="bench-history JSONL the regression gate reads "
        "(default: repo-root BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the bench history",
    )
    args = parser.parse_args(argv)
    report = run(
        smoke=args.smoke,
        seed=args.seed,
        trace_out=args.trace_out,
        ledger_out=args.ledger_out,
    )
    report.write_json(args.out)
    print(report.render())
    print(f"\nwrote {args.out}")
    if not args.no_history:
        from repro.obs.ledger import git_provenance
        from repro.reporting.runreport import append_history

        append_history(
            args.history,
            report.to_dict(),
            mode="smoke" if args.smoke else "full",
            commit=git_provenance().get("commit"),
        )
        print(f"appended history entry to {args.history}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
