"""Benchmark harness for experiment E2 (fill_frequency).

Runs the experiment end to end, prints the paper-vs-measured report and
the regenerated table, and asserts every claim's shape holds.
"""

from repro.experiments import e02_fill_frequency

from conftest import run_report


def test_e02_fill_frequency(benchmark):
    report = run_report(benchmark, e02_fill_frequency)
    assert report.all_hold, report.render()
