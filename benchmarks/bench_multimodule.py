"""Bench: multi-module composition beyond one module's ~9 GB/s.

Section 5 caps a single module at 512 bits x 143 MHz; Section 2's
high-end switches and future graphics parts need more.  This bench
sweeps aggregate bandwidth targets across the single/multi-module
boundary and regenerates the composition table (modules, per-module
width, capacity split, area).
"""

from repro.dram.multimodule import compose_for_bandwidth
from repro.dram.edram import SIEMENS_CONCEPT
from repro.reporting.tables import Table
from repro.units import MBIT


def run_sweep():
    rows = []
    for target_gbyte_per_s in (2, 6, 9, 12, 18, 27):
        system = compose_for_bandwidth(
            capacity_bits=64 * MBIT,
            bandwidth_bits_per_s=target_gbyte_per_s * 8e9,
        )
        rows.append((target_gbyte_per_s, system))
    return rows


def test_multimodule_composition(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table(
        title="Multi-module composition for 64 Mbit at rising bandwidth",
        columns=["target", "modules", "per-module", "aggregate peak",
                 "area"],
    )
    for target, system in rows:
        module = system.modules[0]
        table.add_row(
            f"{target} GB/s",
            system.n_modules,
            f"{module.size_bits / MBIT:.0f} Mbit x{module.width}",
            f"{system.peak_bandwidth_bits_per_s / 8e9:.1f} GB/s",
            f"{system.area_mm2():.0f} mm^2",
        )
    print()
    print(table.render())
    single_limit = SIEMENS_CONCEPT.max_module_bandwidth_bits_per_s / 8e9
    for target, system in rows:
        assert system.peak_bandwidth_bits_per_s >= target * 8e9
        if target <= single_limit:
            assert system.n_modules == 1
        else:
            assert system.n_modules > 1
    # Area grows with module count (periphery replicates).
    areas = [system.area_mm2() for _, system in rows]
    assert areas[-1] > areas[0]
