"""Benchmark harness for experiment E4 (feasibility).

Runs the experiment end to end, prints the paper-vs-measured report and
the regenerated table, and asserts every claim's shape holds.
"""

from repro.experiments import e04_feasibility

from conftest import run_report


def test_e04_feasibility(benchmark):
    report = run_report(benchmark, e04_feasibility)
    assert report.all_hold, report.render()
