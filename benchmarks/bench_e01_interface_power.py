"""Benchmark harness for experiment E1 (interface_power).

Runs the experiment end to end, prints the paper-vs-measured report and
the regenerated table, and asserts every claim's shape holds.
"""

from repro.experiments import e01_interface_power

from conftest import run_report


def test_e01_interface_power(benchmark):
    report = run_report(benchmark, e01_interface_power)
    assert report.all_hold, report.render()
