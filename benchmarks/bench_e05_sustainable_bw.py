"""Benchmark harness for experiment E5 (sustainable_bw).

Runs the experiment end to end, prints the paper-vs-measured report and
the regenerated table, and asserts every claim's shape holds.
"""

from repro.experiments import e05_sustainable_bw

from conftest import run_report


def test_e05_sustainable_bw(benchmark):
    report = run_report(benchmark, e05_sustainable_bw)
    assert report.all_hold, report.render()
