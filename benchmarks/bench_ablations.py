"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one knob of the memory system and shows its
effect — the quantitative backing for the paper's claim that these are
*design parameters* worth exposing:

* page policy (open / closed / adaptive) x traffic locality,
* address mapping (bank-interleaved vs. region-private),
* scheduler (FCFS vs. FR-FCFS),
* redundancy level on yielded silicon cost,
* BIST width on test seconds per die,
* stream prefetching on mixed stream/random traffic.
"""

import pytest

from repro.controller.controller import MemoryController
from repro.controller.page_policy import (
    AdaptivePagePolicy,
    ClosedPagePolicy,
    OpenPagePolicy,
)
from repro.controller.scheduler import FCFSScheduler, FRFCFSScheduler
from repro.cost.wafer import WaferSpec, die_cost_before_test
from repro.cost.yield_model import YieldModel
from repro.dft.bist import BISTController
from repro.dft.march import MARCH_C_MINUS
from repro.dft.test_cost import LOGIC_TESTER, TestCostModel
from repro.dram.edram import EDRAMMacro
from repro.dram.organizations import AddressMapping, MappingScheme
from repro.reporting.tables import Table
from repro.sim.simulator import MemorySystemSimulator, SimulationConfig
from repro.traffic.client import MemoryClient
from repro.traffic.patterns import RandomPattern, SequentialPattern
from repro.units import MBIT


def _simulate(page_policy=None, scheduler=None, mapping=None,
              traffic="mixed", cycles=6000):
    macro = EDRAMMacro.build(
        size_bits=4 * MBIT, width=64, banks=4, page_bits=2048
    )
    device = macro.device()
    kwargs = {}
    if page_policy is not None:
        kwargs["page_policy"] = page_policy
    if scheduler is not None:
        kwargs["scheduler"] = scheduler
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(
            device.organization, mapping or MappingScheme.ROW_BANK_COL
        ),
        **kwargs,
    )
    words = device.organization.total_words
    if traffic == "stream":
        clients = [
            MemoryClient(
                name="s",
                pattern=SequentialPattern(base=0, length=words),
                rate=0.5,
            )
        ]
    elif traffic == "random":
        clients = [
            MemoryClient(
                name="r",
                pattern=RandomPattern(base=0, length=words, seed=1),
                rate=0.5,
            )
        ]
    else:
        clients = [
            MemoryClient(
                name="s",
                pattern=SequentialPattern(base=0, length=words // 2),
                rate=0.25,
            ),
            MemoryClient(
                name="r",
                pattern=RandomPattern(base=0, length=words, seed=1),
                rate=0.25,
            ),
        ]
    simulator = MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(cycles=cycles, warmup_cycles=500),
    )
    return simulator.run()


class TestPagePolicyAblation:
    def test_page_policy_by_locality(self, benchmark):
        def ablation():
            rows = []
            for traffic in ("stream", "random"):
                for policy in (
                    OpenPagePolicy(),
                    ClosedPagePolicy(),
                    AdaptivePagePolicy(),
                ):
                    result = _simulate(page_policy=policy, traffic=traffic)
                    rows.append(
                        (traffic, policy.name, result.bandwidth_efficiency,
                         result.latency.mean)
                    )
            return rows

        rows = benchmark.pedantic(ablation, rounds=1, iterations=1)
        table = Table(
            title="Ablation: page policy x traffic",
            columns=["traffic", "policy", "sustained/peak", "latency cyc"],
        )
        outcomes = {}
        for traffic, name, efficiency, latency in rows:
            table.add_row(traffic, name, f"{efficiency:.0%}",
                          f"{latency:.1f}")
            outcomes[(traffic, name)] = (efficiency, latency)
        print()
        print(table.render())
        # Open page must beat closed page on streams (latency).
        assert (
            outcomes[("stream", "open-page")][1]
            < outcomes[("stream", "closed-page")][1]
        )
        # Adaptive must never be much worse than the best fixed policy.
        for traffic in ("stream", "random"):
            best = min(
                outcomes[(traffic, "open-page")][1],
                outcomes[(traffic, "closed-page")][1],
            )
            assert outcomes[(traffic, "adaptive")][1] <= best * 1.25


class TestMappingAblation:
    def test_mapping_on_mixed_traffic(self, benchmark):
        def ablation():
            interleaved = _simulate(mapping=MappingScheme.ROW_BANK_COL)
            private = _simulate(mapping=MappingScheme.BANK_ROW_COL)
            return interleaved, private

        interleaved, private = benchmark.pedantic(
            ablation, rounds=1, iterations=1
        )
        print()
        print(
            f"bank-interleaved: {interleaved.bandwidth_efficiency:.0%} "
            f"({interleaved.latency.mean:.1f} cyc) | region-private: "
            f"{private.bandwidth_efficiency:.0%} "
            f"({private.latency.mean:.1f} cyc)"
        )
        # Both mappings must serve the offered load; the knob exists and
        # is measurable.
        assert interleaved.requests_completed > 0
        assert private.requests_completed > 0


class TestSchedulerAblation:
    def test_scheduler_on_mixed_traffic(self, benchmark):
        def ablation():
            frfcfs = _simulate(scheduler=FRFCFSScheduler())
            fcfs = _simulate(scheduler=FCFSScheduler())
            return frfcfs, fcfs

        frfcfs, fcfs = benchmark.pedantic(ablation, rounds=1, iterations=1)
        print()
        print(
            f"FR-FCFS: {frfcfs.bandwidth_efficiency:.0%} hits "
            f"{frfcfs.row_hit_rate:.0%} | FCFS: "
            f"{fcfs.bandwidth_efficiency:.0%} hits {fcfs.row_hit_rate:.0%}"
        )
        assert (
            frfcfs.sustained_bandwidth_bits_per_s
            >= fcfs.sustained_bandwidth_bits_per_s - 1e-9
        )


class TestRedundancyAblation:
    def test_redundancy_level_on_yielded_cost(self, benchmark):
        def ablation():
            rows = []
            wafer = WaferSpec(cost_multiplier=1.15)
            for spares in (0, 2, 4, 8):
                macro = EDRAMMacro.build(
                    size_bits=64 * MBIT, width=256,
                    redundancy_spares=spares,
                )
                area = macro.area_mm2()
                y = YieldModel(memory_spares=spares).memory_yield(area)
                cost = die_cost_before_test(wafer, area, y)
                rows.append((spares, area, y, cost))
            return rows

        rows = benchmark.pedantic(ablation, rounds=1, iterations=1)
        table = Table(
            title="Ablation: redundancy level on a 64-Mbit module",
            columns=["spares", "area mm^2", "yield", "cost/good module"],
        )
        for spares, area, y, cost in rows:
            table.add_row(spares, f"{area:.1f}", f"{y:.0%}", f"{cost:.2f}")
        print()
        print(table.render())
        costs = {spares: cost for spares, _, _, cost in rows}
        # Some redundancy beats none (yield dominates the area tax)...
        assert costs[2] < costs[0]
        # ...with diminishing returns beyond.
        assert abs(costs[8] - costs[4]) < costs[0] - costs[2]


class TestPrefetchAblation:
    def test_prefetch_on_mixed_traffic(self, benchmark):
        from repro.controller.controller import MemoryController
        from repro.controller.prefetch import PrefetchingMemoryController

        def run_with(controller_cls):
            # Moderate load (~60% of peak): prefetching is a latency
            # tool; at full saturation the system is bandwidth-bound
            # and speculation has no slack to use.
            macro = EDRAMMacro.build(
                size_bits=4 * MBIT, width=64, banks=4, page_bits=2048
            )
            device = macro.device()
            controller = controller_cls(
                device=device,
                mapping=AddressMapping(
                    device.organization, MappingScheme.ROW_BANK_COL
                ),
            )
            words = device.organization.total_words
            clients = [
                MemoryClient(
                    name="s",
                    pattern=SequentialPattern(base=0, length=words // 2),
                    rate=0.08,
                ),
                MemoryClient(
                    name="r",
                    pattern=RandomPattern(base=0, length=words, seed=1),
                    rate=0.07,
                ),
            ]
            simulator = MemorySystemSimulator(
                controller=controller,
                clients=clients,
                config=SimulationConfig(cycles=6000, warmup_cycles=500),
            )
            return simulator.run(), controller

        def ablation():
            baseline, _ = run_with(MemoryController)
            result, controller = run_with(PrefetchingMemoryController)
            return baseline, result, controller

        baseline, prefetched, controller = benchmark.pedantic(
            ablation, rounds=1, iterations=1
        )
        print()
        print(
            f"stream-client latency: baseline "
            f"{baseline.latency_by_client['s'].mean:.1f} cyc vs prefetch "
            f"{prefetched.latency_by_client['s'].mean:.1f} cyc "
            f"(accuracy {controller.prefetch_accuracy():.0%})"
        )
        assert (
            prefetched.latency_by_client["s"].mean
            <= baseline.latency_by_client["s"].mean
        )
        assert controller.prefetch_accuracy() > 0.8


class TestRowCacheAblation:
    def test_row_cache_under_thrashing(self, benchmark):
        from repro.controller.controller import MemoryController
        from repro.controller.rowcache import RowCacheController
        from repro.traffic.patterns import StridedPattern

        def run_with(controller_cls):
            # Single bank, two clients alternating rows: the worst case
            # for a bare open-page policy, the best case for a device
            # row cache (Section 4's "additional row caches").
            macro = EDRAMMacro.build(
                size_bits=4 * MBIT, width=64, banks=1, page_bits=2048
            )
            device = macro.device()
            controller = controller_cls(
                device=device,
                mapping=AddressMapping(
                    device.organization, MappingScheme.ROW_BANK_COL
                ),
            )
            page_words = device.organization.columns_per_page
            clients = [
                MemoryClient(
                    name="a",
                    pattern=StridedPattern(
                        base=0, length=2 * page_words, stride=1
                    ),
                    rate=0.08,
                ),
                MemoryClient(
                    name="b",
                    pattern=StridedPattern(
                        base=8 * page_words,
                        length=2 * page_words,
                        stride=1,
                    ),
                    rate=0.08,
                ),
            ]
            simulator = MemorySystemSimulator(
                controller=controller,
                clients=clients,
                config=SimulationConfig(cycles=6000, warmup_cycles=500),
            )
            return simulator.run(), controller

        def ablation():
            baseline, _ = run_with(MemoryController)
            cached, controller = run_with(RowCacheController)
            return baseline, cached, controller

        baseline, cached, controller = benchmark.pedantic(
            ablation, rounds=1, iterations=1
        )
        print()
        print(
            f"mean latency: open-page {baseline.latency.mean:.1f} cyc vs "
            f"row-cache {cached.latency.mean:.1f} cyc (cache hit rate "
            f"{controller.row_cache_hit_rate():.0%})"
        )
        assert cached.latency.mean < baseline.latency.mean
        assert controller.row_cache_hit_rate() > 0.5


class TestBurstLengthAblation:
    def test_burst_length_latency_tradeoff(self, benchmark):
        """Section 4: "the increased bandwidth must be paid with
        increased latencies and burst lengths" — at matched peak
        bandwidth, longer bursts raise the latency floor for short
        (random) accesses while barely moving stream throughput."""
        from dataclasses import replace

        from repro.dram.timing import EDRAM_TIMING

        def run_with_burst(burst_length, traffic):
            macro = EDRAMMacro.build(
                size_bits=4 * MBIT, width=64, banks=4, page_bits=2048
            )
            device = macro.device()
            device.timing = replace(
                EDRAM_TIMING, burst_length=burst_length
            )
            for bank in device.banks:
                bank.timing = device.timing
            controller = MemoryController(
                device=device,
                mapping=AddressMapping(
                    device.organization, MappingScheme.ROW_BANK_COL
                ),
            )
            words = device.organization.total_words
            if traffic == "random":
                clients = [
                    MemoryClient(
                        name="r",
                        pattern=RandomPattern(
                            base=0, length=words, seed=1
                        ),
                        rate=0.4 / burst_length,
                    )
                ]
            else:
                clients = [
                    MemoryClient(
                        name="s",
                        pattern=SequentialPattern(base=0, length=words),
                        rate=0.4 / burst_length,
                    )
                ]
            simulator = MemorySystemSimulator(
                controller=controller,
                clients=clients,
                config=SimulationConfig(cycles=6000, warmup_cycles=500),
            )
            return simulator.run()

        def ablation():
            rows = []
            for burst in (2, 4, 8, 16):
                random_result = run_with_burst(burst, "random")
                stream_result = run_with_burst(burst, "stream")
                rows.append(
                    (
                        burst,
                        random_result.latency.mean,
                        stream_result.bandwidth_efficiency,
                    )
                )
            return rows

        rows = benchmark.pedantic(ablation, rounds=1, iterations=1)
        table = Table(
            title="Ablation: burst length at iso-offered-load",
            columns=["burst", "random latency cyc", "stream sustained"],
        )
        for burst, latency, efficiency in rows:
            table.add_row(burst, f"{latency:.1f}", f"{efficiency:.0%}")
        print()
        print(table.render())
        latencies = [latency for _, latency, _ in rows]
        assert latencies[-1] > latencies[0]


class TestBISTWidthAblation:
    def test_bist_width_on_test_time(self, benchmark):
        def ablation():
            rows = []
            for width in (16, 64, 256, 512):
                model = TestCostModel(
                    tester=LOGIC_TESTER,
                    bist=BISTController(internal_width_bits=width),
                )
                rows.append(
                    (
                        width,
                        model.total_time_s(MARCH_C_MINUS, 64 * MBIT),
                        model.waiting_fraction(MARCH_C_MINUS, 64 * MBIT),
                    )
                )
            return rows

        rows = benchmark.pedantic(ablation, rounds=1, iterations=1)
        table = Table(
            title="Ablation: BIST width on March C- over 64 Mbit",
            columns=["BIST width", "test s/die", "waiting share"],
        )
        for width, seconds, waiting in rows:
            table.add_row(width, f"{seconds:.3f}", f"{waiting:.0%}")
        print()
        print(table.render())
        times = [seconds for _, seconds, _ in rows]
        assert times == sorted(times, reverse=True)
        # Saturation: the last doubling buys almost nothing.
        assert times[-2] - times[-1] < 0.1 * (times[0] - times[-1])
