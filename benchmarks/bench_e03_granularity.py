"""Benchmark harness for experiment E3 (granularity).

Runs the experiment end to end, prints the paper-vs-measured report and
the regenerated table, and asserts every claim's shape holds.
"""

from repro.experiments import e03_granularity

from conftest import run_report


def test_e03_granularity(benchmark):
    report = run_report(benchmark, e03_granularity)
    assert report.all_hold, report.render()
