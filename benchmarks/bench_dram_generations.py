"""Bench: the Section 4 DRAM-evolution narrative, regenerated.

Two series the paper opens Section 4 with:

* the interface-generation ladder — bandwidth +2 orders of magnitude
  while random-access latency improved only ~10 %/yr, paid for with
  growing burst granularity; and

* the PC memory-system granularity mismatch — devices growing twice as
  fast (in doublings) as installed systems, with the minimum upgrade
  increment swelling relative to the system.
"""

import math

from repro.apps.pcmemory import (
    PC_GENERATIONS,
    device_growth_rate,
    system_growth_rate,
)
from repro.dram.generations import (
    GENERATIONS,
    bandwidth_growth,
    burst_granularity_bits,
    latency_improvement_per_year,
)
from repro.reporting.tables import Table


def build_tables():
    ladder = Table(
        title="DRAM interface generations",
        columns=["generation", "year", "peak/device", "tRAC",
                 "burst bits", "banks"],
    )
    for entry in GENERATIONS:
        ladder.add_row(
            entry.name,
            entry.year,
            f"{entry.device_peak_bandwidth_bits_per_s / 1e6:.0f} Mbit/s",
            f"{entry.random_access_ns:.0f} ns",
            burst_granularity_bits(entry),
            entry.banks,
        )
    pc = Table(
        title="PC memory granularity",
        columns=["year", "device", "bus", "rank increment",
                 "typical system", "increment/system"],
    )
    for entry in PC_GENERATIONS:
        pc.add_row(
            entry.year,
            f"{entry.device_capacity_mbit:g} Mbit x{entry.device_width_bits}",
            f"{entry.bus_width_bits} b",
            f"{entry.increment_mbit} Mbit",
            f"{entry.typical_system_mbyte} MB",
            f"{entry.increment_fraction_of_system:.1f}x",
        )
    return ladder, pc


def test_dram_evolution_tables(benchmark):
    ladder, pc = benchmark.pedantic(build_tables, rounds=1, iterations=1)
    print()
    print(ladder.render())
    print()
    print(pc.render())
    # Shape assertions: the paper's three Section 4 statements.
    assert bandwidth_growth(1985, 1999) >= 100
    assert latency_improvement_per_year(1985, 1999) < 0.12
    doubling_ratio = math.log(1 + device_growth_rate()) / math.log(
        1 + system_growth_rate()
    )
    assert 1.6 < doubling_ratio < 2.4
    fractions = [
        entry.increment_fraction_of_system for entry in PC_GENERATIONS
    ]
    assert fractions[-1] > fractions[0]
