"""Benchmark harness for experiment E6 (mpeg2).

Runs the experiment end to end, prints the paper-vs-measured report and
the regenerated table, and asserts every claim's shape holds.
"""

from repro.experiments import e06_mpeg2

from conftest import run_report


def test_e06_mpeg2(benchmark):
    report = run_report(benchmark, e06_mpeg2)
    assert report.all_hold, report.render()
