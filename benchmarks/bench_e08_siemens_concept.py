"""Benchmark harness for experiment E8 (siemens_concept).

Runs the experiment end to end, prints the paper-vs-measured report and
the regenerated table, and asserts every claim's shape holds.
"""

from repro.experiments import e08_siemens_concept

from conftest import run_report


def test_e08_siemens_concept(benchmark):
    report = run_report(benchmark, e08_siemens_concept)
    assert report.all_hold, report.render()
