"""Benchmark harness for experiment E7 (gap_iram).

Runs the experiment end to end, prints the paper-vs-measured report and
the regenerated table, and asserts every claim's shape holds.
"""

from repro.experiments import e07_gap_iram

from conftest import run_report


def test_e07_gap_iram(benchmark):
    report = run_report(benchmark, e07_gap_iram)
    assert report.all_hold, report.render()
