"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses separate configuration
mistakes (bad user input) from protocol violations detected inside the
cycle-level simulator (bugs or illegal command sequences).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with inconsistent or out-of-range parameters."""


class ProtocolError(ReproError):
    """A DRAM command was issued in a state where it is illegal.

    The cycle-level simulator checks command legality against the bank state
    machine and timing constraints; violations indicate either a controller
    bug or an invalid hand-built command sequence.
    """


class CapacityError(ReproError, ValueError):
    """A request addressed memory beyond the configured capacity."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class VerificationError(SimulationError):
    """A live verification invariant failed during simulation.

    Raised by :class:`~repro.sim.simulator.MemorySystemSimulator` when
    ``SimulationConfig(check_invariants="raise")`` is set and the
    :mod:`repro.verify` checker observes a protocol or simulator-state
    violation.  The message names the first violated check and cycle.
    """


class CancelledError(ReproError):
    """Cooperative cancellation was requested and honored.

    Raised by the sweep/parallel/executor chunk-boundary checks when a
    :class:`~repro.serve.resilience.CancelToken` fires (client cancel
    or a lapsed ``deadline_s``).  Deliberately *not* a subclass of
    :class:`ConfigurationError`: a cancelled run is neither a bad input
    nor a workload failure, so ``skip_errors`` quarantine and circuit
    breakers must not swallow it.
    """


class RepairError(ReproError):
    """Redundancy repair allocation failed or was given invalid inputs."""


class InfeasibleError(ReproError):
    """A design-space query has no feasible solution under the constraints."""
