"""Reporting: ASCII tables and experiment records for the bench harness."""

from repro.reporting.tables import Table, format_si, format_bits
from repro.reporting.report import ExperimentReport, ClaimCheck
from repro.reporting.profiling import PerfReport, Stopwatch, measure
from repro.reporting.runreport import (
    append_history,
    check_regression,
    load_history,
    load_ledger,
    render_html,
    render_markdown,
    summarize_ledger,
)

__all__ = [
    "Table",
    "format_si",
    "format_bits",
    "ExperimentReport",
    "ClaimCheck",
    "PerfReport",
    "Stopwatch",
    "measure",
    "append_history",
    "check_regression",
    "load_history",
    "load_ledger",
    "render_html",
    "render_markdown",
    "summarize_ledger",
]
