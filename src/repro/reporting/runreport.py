"""Run reports and the benchmark-regression gate.

Turns a :class:`~repro.obs.ledger.RunLedger` JSONL file into a
self-contained human-readable summary — Markdown or single-file HTML —
answering the questions a sweep operator actually asks: what ran, where
the time went (phase waterfall), which chunks were slowest, what the
resilience machinery did (retries, timeouts, fallbacks, quarantines)
and what the aggregated metrics registry saw.

The same module owns the perf-history side of the story:
``benchmarks/bench_perf.py`` appends one JSONL entry per run to
``BENCH_history.jsonl`` (via :func:`append_history`) and
``repro report --check-regression`` replays that history through
:func:`check_regression`, failing (non-zero exit) when any
``*_seconds`` metric of the newest entry is more than ``threshold``
above the median of the rolling baseline — the last ``window`` prior
entries of the same mode.  Wall-clock benchmarks are noisy; comparing
against a median window rather than the single previous run is what
keeps the gate useful instead of flaky.
"""

from __future__ import annotations

import html as _html
import json
import statistics
import time
from pathlib import Path

from repro.errors import ConfigurationError

#: Event kinds counted as resilience decisions in the summary.
RESILIENCE_KINDS = ("retry", "timeout", "fallback", "quarantine")

#: Default regression threshold: fail beyond +30% over the baseline.
DEFAULT_THRESHOLD = 0.30

#: Default rolling-baseline window (prior same-mode entries).
DEFAULT_WINDOW = 5


# -- ledger loading ----------------------------------------------------------


def load_ledger(path: str | Path) -> list:
    """Parse a ledger JSONL file, tolerating a torn trailing line."""
    ledger_path = Path(path)
    if not ledger_path.exists():
        raise ConfigurationError(f"no ledger at {ledger_path}")
    events = []
    with open(ledger_path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from an interrupted writer
            if isinstance(record, dict) and "kind" in record:
                events.append(record)
    if not events:
        raise ConfigurationError(f"{ledger_path} holds no ledger events")
    return events


def summarize_ledger(events: list) -> dict:
    """Digest a ledger event stream into report-ready structure.

    Returns a plain dict (JSON-able) with the run table, span
    waterfall, slowest chunks, resilience counts, quarantine details
    and the final aggregated metrics snapshot.
    """
    if not events:
        raise ConfigurationError("cannot summarize an empty ledger")
    times = [e["t"] for e in events if isinstance(e.get("t"), (int, float))]
    t0 = min(times) if times else 0.0
    t1 = max(times) if times else 0.0
    provenance: dict = {}
    counts: dict = {}
    runs: list = []
    open_runs: list = []
    spans: list = []
    span_starts: dict = {}
    chunks: list = []
    quarantines: list = []
    metrics_snapshot = None
    resumes = 0
    for event in events:
        kind = event["kind"]
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "ledger_open":
            provenance = {
                "environment": event.get("environment", {}),
                "git": event.get("git", {}),
            }
        elif kind == "resume":
            resumes += 1
        elif kind == "run_start":
            open_runs.append(
                {
                    "workload": event.get("workload", "?"),
                    "start_offset_s": round(event.get("t", t0) - t0, 6),
                    "detail": {
                        k: v
                        for k, v in event.items()
                        if k not in ("id", "t", "run", "kind", "workload")
                    },
                    "status": "unfinished",
                }
            )
            runs.append(open_runs[-1])
        elif kind == "run_end" and open_runs:
            run = open_runs.pop()
            run["status"] = event.get("status", "?")
            run["s"] = event.get("s")
            for key in ("n_ok", "n_failed", "n_explored", "n_frontier",
                        "n_maps"):
                if key in event:
                    run[key] = event[key]
        elif kind == "span_start":
            span_starts[event["id"]] = event
        elif kind == "span_end":
            start = span_starts.pop(event.get("span"), None)
            spans.append(
                {
                    "name": event.get("name", "?"),
                    "start_offset_s": round(
                        (start.get("t", t0) if start else t0) - t0, 6
                    ),
                    "s": event.get("s", 0.0),
                }
            )
        elif kind == "chunk":
            chunks.append(
                {
                    "index": event.get("index"),
                    "size": event.get("size"),
                    "s": event.get("s", 0.0),
                    "failed": event.get("failed", 0),
                }
            )
        elif kind == "quarantine":
            quarantines.append(
                {
                    "index": event.get("index"),
                    "parameters": event.get("parameters"),
                    "error": event.get("error"),
                }
            )
        elif kind == "metrics":
            metrics_snapshot = event.get("snapshot")
    chunks.sort(key=lambda c: c["s"], reverse=True)
    trace_ids = sorted(
        {e.get("trace_id") for e in events if e.get("trace_id")}
    )
    return {
        "run_ids": sorted({e.get("run") for e in events if e.get("run")}),
        # Distributed-trace identity: one id for a traced run (the link
        # into the `repro trace --merge` output), empty when tracing
        # was off.
        "trace_ids": trace_ids,
        "trace_id": trace_ids[0] if len(trace_ids) == 1 else None,
        "n_events": len(events),
        "wall_s": round(t1 - t0, 6),
        "started_at": t0,
        "resumes": resumes,
        "provenance": provenance,
        "runs": runs,
        "spans": spans,
        "chunks": chunks,
        "quarantines": quarantines,
        "resilience": {
            kind: counts.get(kind, 0) for kind in RESILIENCE_KINDS
        },
        "events_by_kind": dict(sorted(counts.items())),
        "metrics": metrics_snapshot,
    }


# -- rendering ---------------------------------------------------------------


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.6g}"
    return str(value)


def _bar(fraction: float, width: int = 24) -> str:
    filled = max(0, min(width, round(fraction * width)))
    return "#" * filled + "." * (width - filled)


def _md_table(headers: list, rows: list) -> list:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
    return lines


def job_report_markdown(events: list, top: int = 10) -> str:
    """Markdown report straight from in-memory ledger events.

    The exploration service's report endpoint: a served job's
    :class:`~repro.obs.ledger.MemoryLedger` tap holds the same event
    stream a file ledger would, so the existing summarize/render
    pipeline applies unchanged — no JSONL round trip.
    """
    return render_markdown(summarize_ledger(events), top=top)


def render_markdown(summary: dict, top: int = 10) -> str:
    """Self-contained Markdown run report."""
    lines = ["# Run report", ""]
    lines.append(
        f"run {', '.join(summary['run_ids']) or '?'} — "
        f"{summary['n_events']} events over {summary['wall_s']:.3f} s"
        + (f", {summary['resumes']} resume(s)" if summary["resumes"] else "")
    )
    if summary.get("trace_ids"):
        lines.append(
            f"trace {', '.join(summary['trace_ids'])} — assemble the "
            "full distributed timeline with `repro trace --merge "
            "LEDGER...`"
        )
    env = summary["provenance"].get("environment", {})
    git = summary["provenance"].get("git", {})
    if env or git:
        lines += ["", "## Provenance", ""]
        rows = [(k, env[k]) for k in sorted(env) if k != "argv"]
        if git:
            rows.append(("git commit", git.get("commit", "?")))
            rows.append(("git dirty", git.get("dirty", "?")))
        lines += _md_table(["field", "value"], rows)
    if summary["runs"]:
        lines += ["", "## Runs", ""]
        rows = []
        for run in summary["runs"]:
            outcome = "/".join(
                str(run[k])
                for k in ("n_ok", "n_failed", "n_explored", "n_maps")
                if k in run
            )
            rows.append(
                (
                    run["workload"],
                    run["status"],
                    outcome or "-",
                    f"{run.get('s', 0.0):.4f}" if "s" in run else "-",
                )
            )
        lines += _md_table(["workload", "status", "points", "seconds"], rows)
    if summary["spans"]:
        lines += ["", "## Phase waterfall", ""]
        longest = max(span["s"] for span in summary["spans"]) or 1.0
        rows = [
            (
                span["name"],
                f"{span['start_offset_s']:.4f}",
                f"{span['s']:.4f}",
                f"`{_bar(span['s'] / longest)}`",
            )
            for span in summary["spans"]
        ]
        lines += _md_table(["phase", "start", "seconds", ""], rows)
    if summary["chunks"]:
        lines += ["", f"## Slowest chunks (top {top})", ""]
        rows = [
            (chunk["index"], chunk["size"], f"{chunk['s']:.4f}",
             chunk["failed"])
            for chunk in summary["chunks"][:top]
        ]
        lines += _md_table(["chunk", "points", "seconds", "failed"], rows)
    lines += ["", "## Resilience", ""]
    lines += _md_table(
        ["event", "count"],
        sorted(summary["resilience"].items()),
    )
    if summary["quarantines"]:
        lines += ["", f"### Quarantined points (top {top})", ""]
        rows = [
            (q["index"], json.dumps(q["parameters"]), q["error"])
            for q in summary["quarantines"][:top]
        ]
        lines += _md_table(["index", "parameters", "error"], rows)
    metrics = summary.get("metrics")
    if metrics:
        lines += ["", "## Metrics", ""]
        counter_rows = sorted(metrics.get("counters", {}).items())
        if counter_rows:
            lines += _md_table(["counter", "value"], counter_rows)
        hist_rows = [
            (
                name,
                hist.get("count", 0),
                f"{hist.get('mean', 0.0):.1f}",
                _fmt(hist.get("p50", 0)),
                _fmt(hist.get("p95", 0)),
                _fmt(hist.get("max", 0)),
            )
            for name, hist in sorted(metrics.get("histograms", {}).items())
        ]
        if hist_rows:
            lines += [""]
            lines += _md_table(
                ["histogram", "n", "mean", "p50", "p95", "max"], hist_rows
            )
    lines += ["", "## Events by kind", ""]
    lines += _md_table(
        ["kind", "count"], sorted(summary["events_by_kind"].items())
    )
    return "\n".join(lines) + "\n"


_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #1a2330; max-width: 60em; }
h1 { border-bottom: 2px solid #2a6fb0; padding-bottom: 0.2em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #c8d2dc; padding: 0.3em 0.7em;
         text-align: left; font-size: 0.92em; }
th { background: #eef3f8; }
.bar { background: #2a6fb0; height: 0.8em; display: inline-block; }
.muted { color: #68788c; font-size: 0.9em; }
"""


def _html_table(headers: list, rows: list) -> list:
    parts = ["<table><tr>"]
    parts += [f"<th>{_html.escape(str(h))}</th>" for h in headers]
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        for cell in row:
            text = cell if isinstance(cell, str) and cell.startswith(
                "<span"
            ) else _html.escape(_fmt(cell))
            parts.append(f"<td>{text}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return parts


def render_html(summary: dict, top: int = 10) -> str:
    """Self-contained single-file HTML run report (no external assets)."""
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>Run report</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        "<h1>Run report</h1>",
        f"<p class='muted'>run {_html.escape(', '.join(summary['run_ids']))}"
        f" &mdash; {summary['n_events']} events over "
        f"{summary['wall_s']:.3f}&nbsp;s"
        + (
            f", {summary['resumes']} resume(s)" if summary["resumes"] else ""
        )
        + "</p>",
    ]
    env = summary["provenance"].get("environment", {})
    git = summary["provenance"].get("git", {})
    if env or git:
        parts.append("<h2>Provenance</h2>")
        rows = [(k, env[k]) for k in sorted(env) if k != "argv"]
        if git:
            rows.append(("git commit", git.get("commit", "?")))
            rows.append(("git dirty", git.get("dirty", "?")))
        parts += _html_table(["field", "value"], rows)
    if summary["runs"]:
        parts.append("<h2>Runs</h2>")
        rows = [
            (
                run["workload"],
                run["status"],
                f"{run.get('s', 0.0):.4f}" if "s" in run else "-",
            )
            for run in summary["runs"]
        ]
        parts += _html_table(["workload", "status", "seconds"], rows)
    if summary["spans"]:
        parts.append("<h2>Phase waterfall</h2>")
        longest = max(span["s"] for span in summary["spans"]) or 1.0
        rows = []
        for span in summary["spans"]:
            width = max(2, round(240 * span["s"] / longest))
            rows.append(
                (
                    span["name"],
                    f"{span['start_offset_s']:.4f}",
                    f"{span['s']:.4f}",
                    f"<span class='bar' style='width:{width}px'></span>",
                )
            )
        parts += _html_table(["phase", "start", "seconds", ""], rows)
    if summary["chunks"]:
        parts.append(f"<h2>Slowest chunks (top {top})</h2>")
        rows = [
            (chunk["index"], chunk["size"], f"{chunk['s']:.4f}",
             chunk["failed"])
            for chunk in summary["chunks"][:top]
        ]
        parts += _html_table(["chunk", "points", "seconds", "failed"], rows)
    parts.append("<h2>Resilience</h2>")
    parts += _html_table(
        ["event", "count"], sorted(summary["resilience"].items())
    )
    if summary["quarantines"]:
        parts.append(f"<h3>Quarantined points (top {top})</h3>")
        rows = [
            (q["index"], json.dumps(q["parameters"]), q["error"])
            for q in summary["quarantines"][:top]
        ]
        parts += _html_table(["index", "parameters", "error"], rows)
    metrics = summary.get("metrics")
    if metrics and metrics.get("counters"):
        parts.append("<h2>Metrics</h2>")
        parts += _html_table(
            ["counter", "value"], sorted(metrics["counters"].items())
        )
    parts.append("</body></html>")
    return "".join(parts)


# -- bench history + regression gate -----------------------------------------


def history_entry(
    report_dict: dict,
    mode: str,
    commit: str | None = None,
    timestamp: float | None = None,
) -> dict:
    """One BENCH_history.jsonl line: numeric metrics of a bench run."""
    sections = report_dict.get("sections", {})
    if not isinstance(sections, dict):
        raise ConfigurationError("bench report has no sections dict")
    kept = {
        name: {
            key: value
            for key, value in metrics.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        for name, metrics in sections.items()
    }
    return {
        "t": round(
            time.time() if timestamp is None else timestamp, 3
        ),
        "mode": mode,
        "commit": commit,
        "sections": kept,
    }


def append_history(
    path: str | Path,
    report_dict: dict,
    mode: str,
    commit: str | None = None,
) -> dict:
    """Append one history entry to the JSONL file; returns the entry."""
    entry = history_entry(report_dict, mode, commit)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str | Path) -> list:
    """All parseable entries of a BENCH_history.jsonl, in file order."""
    history_path = Path(path)
    if not history_path.exists():
        raise ConfigurationError(f"no bench history at {history_path}")
    entries = []
    with open(history_path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "sections" in entry:
                entries.append(entry)
    return entries


def check_regression(
    entries: list,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> dict:
    """Gate the newest history entry against its rolling baseline.

    The candidate is the *last* entry; the baseline for each
    ``*_seconds`` metric is the median over the last ``window`` prior
    entries of the same mode.  A metric regresses when
    ``candidate > baseline * (1 + threshold)``.  With no prior
    same-mode entries the gate passes trivially (first run seeds the
    history).

    Returns ``{"ok", "findings", "baseline_runs", "mode"}`` where each
    finding carries section, metric, baseline, value and ratio.
    """
    if threshold <= 0:
        raise ConfigurationError("regression threshold must be positive")
    if window < 1:
        raise ConfigurationError("baseline window must be >= 1")
    if not entries:
        raise ConfigurationError("bench history is empty")
    candidate = entries[-1]
    mode = candidate.get("mode")
    baseline_entries = [
        e for e in entries[:-1] if e.get("mode") == mode
    ][-window:]
    findings = []
    for section, metrics in candidate.get("sections", {}).items():
        for metric, value in metrics.items():
            if not metric.endswith("_seconds"):
                continue
            prior = [
                e["sections"][section][metric]
                for e in baseline_entries
                if metric in e.get("sections", {}).get(section, {})
            ]
            if not prior:
                continue
            baseline = statistics.median(prior)
            if baseline > 0 and value > baseline * (1.0 + threshold):
                findings.append(
                    {
                        "section": section,
                        "metric": metric,
                        "baseline": baseline,
                        "value": value,
                        "ratio": value / baseline,
                    }
                )
    findings.sort(key=lambda f: f["ratio"], reverse=True)
    return {
        "ok": not findings,
        "findings": findings,
        "baseline_runs": len(baseline_entries),
        "mode": mode,
    }


def render_regression(verdict: dict, threshold: float) -> str:
    """Human-readable regression-gate verdict."""
    lines = [
        f"regression gate (mode={verdict['mode']}, "
        f"threshold=+{threshold:.0%}, "
        f"baseline={verdict['baseline_runs']} run(s))"
    ]
    if verdict["baseline_runs"] == 0:
        lines.append("  no prior history for this mode — gate passes")
    for finding in verdict["findings"]:
        lines.append(
            f"  REGRESSION {finding['section']}.{finding['metric']}: "
            f"{finding['value']:.4f}s vs baseline "
            f"{finding['baseline']:.4f}s ({finding['ratio']:.2f}x)"
        )
    if verdict["ok"]:
        lines.append("  ok — no metric beyond the threshold")
    return "\n".join(lines)
