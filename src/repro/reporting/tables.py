"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper reports; a small
dependency-free table renderer keeps that output readable in CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


def format_si(value: float, unit: str = "", digits: int = 2) -> str:
    """Format a value with an SI prefix (1.25e9, 'B/s' -> '1.25 GB/s')."""
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
    ]
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{digits}f} {prefix}{unit}".strip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}f} {prefix}{unit}".strip()


def format_bits(bits: float, digits: int = 2) -> str:
    """Format a bit count in the paper's binary Mbit convention."""
    from repro.units import KBIT, MBIT, GBIT

    if abs(bits) >= GBIT:
        return f"{bits / GBIT:.{digits}f} Gbit"
    if abs(bits) >= MBIT:
        return f"{bits / MBIT:.{digits}f} Mbit"
    if abs(bits) >= KBIT:
        return f"{bits / KBIT:.{digits}f} Kbit"
    return f"{bits:.0f} bit"


@dataclass
class Table:
    """A fixed-column ASCII table.

    Attributes:
        title: Table caption.
        columns: Column headers.
    """

    title: str
    columns: list
    _rows: list = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not self.columns:
            raise ConfigurationError("table needs columns")

    def add_row(self, *cells) -> None:
        """Append a row; cell count must match the header."""
        if len(cells) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self._rows.append([str(cell) for cell in cells])

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """Render the table as aligned plain text."""
        headers = [str(column) for column in self.columns]
        widths = [len(header) for header in headers]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        separator = "  ".join("-" * width for width in widths)
        out = [self.title, line(headers), separator]
        out.extend(line(row) for row in self._rows)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
