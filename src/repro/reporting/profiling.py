"""Lightweight wall-clock profiling for the performance benchmarks.

``time.perf_counter``-based measurement of the repo's two hot paths —
cycle simulation and design-space evaluation — with throughput figures
(cycles/sec, evals/sec) and a JSON report the CI smoke job archives.
No external profiler dependencies; this is deliberately just enough to
keep the fast paths honest.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer.

    Use as a context manager (re-enterable; spans accumulate)::

        watch = Stopwatch()
        with watch:
            work()
        print(watch.elapsed_s)
    """

    elapsed_s: float = 0.0
    _started: float | None = field(default=None, init=False, repr=False)

    def __enter__(self) -> "Stopwatch":
        if self._started is not None:
            raise ConfigurationError("stopwatch already running")
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started is None:
            raise ConfigurationError("stopwatch not running")
        self.elapsed_s += time.perf_counter() - self._started
        self._started = None


def measure(fn, repeat: int = 1) -> tuple[float, object]:
    """Best-of-``repeat`` wall time of ``fn()``.

    Returns ``(seconds, last_result)``; the minimum over repeats is the
    standard noise-resistant estimator for short benchmarks.
    """
    if repeat < 1:
        raise ConfigurationError("repeat must be >= 1")
    best = float("inf")
    result: object = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@dataclass
class PerfReport:
    """A collection of named performance measurements.

    Attributes:
        title: Report heading.
        sections: Section name -> metrics dict (plain JSON-able values).
    """

    title: str
    sections: dict = field(default_factory=dict)

    def add(self, name: str, **metrics: object) -> None:
        """Record one section of metrics (last write wins per name)."""
        self.sections[name] = dict(metrics)

    def to_dict(self) -> dict:
        return {"title": self.title, "sections": self.sections}

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        """Human-readable summary, one line per metric."""
        lines = [self.title, "=" * len(self.title)]
        for name, metrics in self.sections.items():
            lines.append(f"\n[{name}]")
            for key, value in metrics.items():
                if isinstance(value, float):
                    lines.append(f"  {key:<28} {value:,.3f}")
                else:
                    lines.append(f"  {key:<28} {value}")
        return "\n".join(lines)
