"""Experiment reports: paper claim vs. measured value, with tolerance.

Every benchmark builds an :class:`ExperimentReport` whose
:class:`ClaimCheck` rows record what the paper says, what the model
measured, and whether the shape holds — the artifact EXPERIMENTS.md is
generated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClaimCheck:
    """One paper-claim-versus-measurement row.

    Attributes:
        claim: What the paper states (verbatim-ish).
        paper_value: The paper's number, as text (ranges allowed).
        measured: What the model produced, as text.
        holds: Whether the claim's shape is reproduced.
        note: Optional commentary (calibration, substitution, caveat).
    """

    claim: str
    paper_value: str
    measured: str
    holds: bool
    note: str = ""


@dataclass
class ExperimentReport:
    """One experiment (E1..E10) of the reproduction.

    Attributes:
        experiment_id: "E1".."E10".
        title: Short experiment title.
        paper_section: Where the claim lives in the paper.
    """

    experiment_id: str
    title: str
    paper_section: str
    checks: list = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ConfigurationError("experiment id required")

    def check(
        self,
        claim: str,
        paper_value: str,
        measured: str,
        holds: bool,
        note: str = "",
    ) -> ClaimCheck:
        """Record one claim check and return it."""
        entry = ClaimCheck(
            claim=claim,
            paper_value=paper_value,
            measured=measured,
            holds=holds,
            note=note,
        )
        self.checks.append(entry)
        return entry

    @property
    def all_hold(self) -> bool:
        return all(check.holds for check in self.checks)

    def render(self) -> str:
        """Render the report as plain text."""
        lines = [
            f"{self.experiment_id}: {self.title} (paper {self.paper_section})"
        ]
        for check in self.checks:
            status = "OK " if check.holds else "FAIL"
            lines.append(
                f"  [{status}] {check.claim}\n"
                f"         paper: {check.paper_value}\n"
                f"         measured: {check.measured}"
                + (f"\n         note: {check.note}" if check.note else "")
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
