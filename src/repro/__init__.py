"""repro: reproduction of "Embedded DRAM Architectural Trade-Offs".

Wehn & Hein, DATE 1998.  The library provides analytical power / area /
cost / test models and a cycle-level DRAM simulator for exploring the
embedded-DRAM design space the paper describes: memory size, interface
width, number of banks, page length and word width as *design parameters*
rather than commodity givens.

Quick start::

    from repro.dram import EDRAMMacro
    from repro.power import discrete_vs_embedded_power

    macro = EDRAMMacro.build(size_bits=8 * 2**20, width=256)
    print(macro.peak_bandwidth_bits_per_s / 8e9, "GB/s")

    discrete, embedded, ratio = discrete_vs_embedded_power()
    print(f"discrete needs {ratio:.1f}x the power")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim-by-claim reproduction record.
"""

__version__ = "1.0.0"

from repro import units, errors

__all__ = ["units", "errors", "__version__"]
