"""DRAM command vocabulary.

The synchronous interface the paper credits for the bandwidth explosion
("intelligent synchronous interfacing and protocols", Section 4) reduces
to five command types issued on clock edges.  A :class:`Command` records
what was issued, where, and when, so traces can be checked for protocol
legality and replayed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class CommandType(enum.Enum):
    """SDRAM command types."""

    ACTIVATE = "ACT"
    READ = "RD"
    WRITE = "WR"
    PRECHARGE = "PRE"
    REFRESH = "REF"
    NOP = "NOP"


@dataclass(frozen=True)
class Command:
    """One command on the DRAM command bus.

    Attributes:
        kind: Command type.
        cycle: Issue cycle (interface clock domain).
        bank: Target bank index; refresh is all-bank and ignores it.
        row: Row address for ACTIVATE; None otherwise.
        column: Column address for READ/WRITE; None otherwise.
        request_id: Identifier of the client request this command serves,
            if any (used by the controller for bookkeeping).
    """

    kind: CommandType
    cycle: int
    bank: int = 0
    row: int | None = None
    column: int | None = None
    request_id: int | None = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ConfigurationError(
                f"command cycle must be >= 0, got {self.cycle}"
            )
        if self.bank < 0:
            raise ConfigurationError(
                f"bank index must be >= 0, got {self.bank}"
            )
        if self.kind is CommandType.ACTIVATE and self.row is None:
            raise ConfigurationError("ACTIVATE requires a row address")
        if self.kind in (CommandType.READ, CommandType.WRITE) and (
            self.column is None
        ):
            raise ConfigurationError(f"{self.kind.value} requires a column")

    def __str__(self) -> str:
        parts = [f"@{self.cycle}", self.kind.value, f"b{self.bank}"]
        if self.row is not None:
            parts.append(f"r{self.row}")
        if self.column is not None:
            parts.append(f"c{self.column}")
        return " ".join(parts)
