"""DRAM command-trace validation and analysis.

A verification aid: replay any command trace (hand-written, recorded
from the controller, or produced by third-party tooling) against the
device model's protocol/timing rules and report every violation with
its cycle and cause.  Also derives the trace's utilization figures —
data-bus occupancy, row-hit rate, command mix — so traces can be
compared quantitatively.

This is the memory-vendor side of the paper's Section 7 call for merged
methodologies: "the transistor-oriented memory and high-level based
design methodology must be merged" — a controller team needs an oracle
for command legality that does not require the DRAM team in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ProtocolError
from repro.dram.commands import Command, CommandType
from repro.dram.device import DRAMDevice
from repro.dram.organizations import Organization
from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class Violation:
    """One protocol violation found in a trace.

    Attributes:
        index: Position of the offending command in the trace.
        command: The command itself.
        reason: The device model's explanation.
    """

    index: int
    command: Command
    reason: str


@dataclass(frozen=True)
class TraceReport:
    """Outcome of checking one command trace.

    Attributes:
        commands: Commands examined.
        violations: Violations found (empty = clean trace).
        data_beats: Data-bus beats the trace's column commands moved.
        span_cycles: Cycles from first to last command (inclusive).
        command_counts: Count per command type name.
        row_hits: Column commands that reused the already-open row
            without a fresh ACTIVATE in between.
    """

    commands: int
    violations: tuple
    data_beats: int
    span_cycles: int
    command_counts: dict
    row_hits: int

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def data_bus_utilization(self) -> float:
        if self.span_cycles <= 0:
            return 0.0
        return min(1.0, self.data_beats / self.span_cycles)

    def summary(self) -> str:
        status = "clean" if self.clean else (
            f"{len(self.violations)} violations"
        )
        return (
            f"{self.commands} commands over {self.span_cycles} cycles: "
            f"{status}, data-bus utilization "
            f"{self.data_bus_utilization:.0%}, {self.row_hits} row hits"
        )


@dataclass
class TraceChecker:
    """Replays command traces against a fresh device model.

    Attributes:
        organization: Device organization to check against.
        timing: Device timing to check against.
        stop_at_first: Stop at the first violation (default: collect
            all, skipping illegal commands so later checking continues
            on the legal prefix's state).
    """

    organization: Organization
    timing: TimingParameters
    stop_at_first: bool = False

    def check(self, trace) -> TraceReport:
        """Validate an iterable of :class:`Command`."""
        device = DRAMDevice(
            organization=self.organization, timing=self.timing,
            name="trace-check",
        )
        violations = []
        counts = {kind.value: 0 for kind in CommandType}
        beats = 0
        row_hits = 0
        open_rows: dict = {}
        first_cycle = None
        last_cycle = 0
        last_issue_cycle = -1
        for index, command in enumerate(trace):
            if command.cycle < last_issue_cycle:
                violations.append(
                    Violation(
                        index=index,
                        command=command,
                        reason=(
                            f"trace not time-ordered: cycle "
                            f"{command.cycle} after {last_issue_cycle}"
                        ),
                    )
                )
                if self.stop_at_first:
                    break
                continue
            if first_cycle is None:
                first_cycle = command.cycle
            last_cycle = max(last_cycle, command.cycle)
            try:
                end = device.issue(command)
            except ProtocolError as error:
                violations.append(
                    Violation(
                        index=index, command=command, reason=str(error)
                    )
                )
                if self.stop_at_first:
                    break
                continue
            last_issue_cycle = command.cycle
            counts[command.kind.value] += 1
            if command.kind in (CommandType.READ, CommandType.WRITE):
                beats += self.timing.burst_length
                last_cycle = max(last_cycle, end)
                if open_rows.get(command.bank) is not None:
                    row_hits += 1
            if command.kind is CommandType.ACTIVATE:
                # The first column command after ACT is a miss-fill, not
                # a hit: clear the hit marker until one column lands.
                open_rows[command.bank] = None
                last_cycle = max(last_cycle, end)
            if command.kind in (CommandType.READ, CommandType.WRITE):
                open_rows[command.bank] = True
            if command.kind in (CommandType.PRECHARGE, CommandType.REFRESH):
                open_rows.pop(command.bank, None)
                last_cycle = max(last_cycle, end)
        span = 0 if first_cycle is None else last_cycle - first_cycle + 1
        return TraceReport(
            commands=sum(counts.values()) + len(violations),
            violations=tuple(violations),
            data_beats=beats,
            span_cycles=span,
            command_counts=counts,
            row_hits=row_hits,
        )


def check_controller_log(controller) -> TraceReport:
    """Replay a controller's recorded command log against a fresh device.

    Convenience wrapper for the round-trip verification loop: run a
    simulation with ``ControllerConfig(record_commands=True)``, then
    confirm the exact command sequence the controller issued is legal
    when replayed from scratch (and compare the report's utilization
    figures with the controller's own statistics).
    """
    return TraceChecker(
        organization=controller.device.organization,
        timing=controller.device.timing,
    ).check(controller.command_log)


def streaming_read_trace(
    organization: Organization,
    timing: TimingParameters,
    n_pages: int = 4,
) -> list:
    """Generate a legal page-streaming read trace (ACT, full-page reads,
    PRE, next page) — a known-good input for the checker and a template
    for hand-built traces."""
    if n_pages < 1:
        raise ConfigurationError("need at least one page")
    commands = []
    cycle = 0
    columns = organization.columns_per_page
    reads_per_page = max(1, columns // timing.burst_length)
    for page in range(n_pages):
        bank = page % organization.n_banks
        row = page // organization.n_banks
        act_cycle = cycle
        commands.append(
            Command(
                kind=CommandType.ACTIVATE, cycle=cycle, bank=bank, row=row
            )
        )
        cycle += timing.t_rcd
        last_read_cycle = cycle
        for read_index in range(reads_per_page):
            last_read_cycle = cycle
            commands.append(
                Command(
                    kind=CommandType.READ,
                    cycle=cycle,
                    bank=bank,
                    column=read_index * timing.burst_length,
                )
            )
            cycle += timing.burst_length
        # Precharge once both tRAS and the last burst's data are done.
        burst_end = last_read_cycle + timing.t_cas + timing.burst_length - 1
        cycle = max(act_cycle + timing.t_ras, burst_end)
        commands.append(
            Command(kind=CommandType.PRECHARGE, cycle=cycle, bank=bank)
        )
        cycle += timing.t_rp
    return commands
