"""Commodity DRAM interface generations.

Paper Section 4: "In the past the row and column access times in a DRAM
core have declined by roughly only 10%/year whereas the peak device
memory bandwidth has increased over the last couple of years by two
orders of magnitude.  This was achieved by: intelligent synchronous
interfacing and protocols; exploiting the fact that an active row can
act as a cache ...; using prefetching and pipelining techniques; and
using multiple internal memory banks."

And: "The increased bandwidth must be paid with increased latencies and
burst lengths."

This module records the interface generations as data — page-mode DRAM
through FPM, EDO, SDRAM and Direct RDRAM — so both statements can be
*computed*: the bandwidth trajectory, the nearly flat random-access
latency, and the growing burst granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceGeneration:
    """One commodity DRAM interface generation.

    Attributes:
        name: Generation name.
        year: Volume-introduction year.
        peak_bandwidth_mbit_per_s_per_pin: Peak transfer rate per data
            pin, in Mbit/s.
        random_access_ns: Row-miss random access time (tRAC-class).
        typical_width_bits: Typical device data width.
        burst_words: Transfer granularity (words per access at full
            rate; 1 = true random access at peak).
        banks: Internal banks.
        synchronous: Clocked interface.
    """

    name: str
    year: int
    peak_bandwidth_mbit_per_s_per_pin: float
    random_access_ns: float
    typical_width_bits: int
    burst_words: int
    banks: int
    synchronous: bool

    def __post_init__(self) -> None:
        if self.peak_bandwidth_mbit_per_s_per_pin <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be > 0")
        if self.random_access_ns <= 0:
            raise ConfigurationError(f"{self.name}: latency must be > 0")
        if self.typical_width_bits < 1 or self.burst_words < 1:
            raise ConfigurationError(f"{self.name}: width/burst must be >= 1")
        if self.banks < 1:
            raise ConfigurationError(f"{self.name}: banks must be >= 1")

    @property
    def device_peak_bandwidth_bits_per_s(self) -> float:
        return (
            self.peak_bandwidth_mbit_per_s_per_pin
            * 1e6
            * self.typical_width_bits
        )


#: The interface-generation ladder the paper's Section 4 narrates.
GENERATIONS: tuple = (
    DeviceGeneration(
        name="page-mode DRAM",
        year=1985,
        peak_bandwidth_mbit_per_s_per_pin=8.0,
        random_access_ns=120.0,
        typical_width_bits=1,
        burst_words=1,
        banks=1,
        synchronous=False,
    ),
    DeviceGeneration(
        name="FPM DRAM",
        year=1990,
        peak_bandwidth_mbit_per_s_per_pin=22.0,
        random_access_ns=80.0,
        typical_width_bits=4,
        burst_words=1,
        banks=1,
        synchronous=False,
    ),
    DeviceGeneration(
        name="EDO DRAM",
        year=1994,
        peak_bandwidth_mbit_per_s_per_pin=40.0,
        random_access_ns=70.0,
        typical_width_bits=8,
        burst_words=2,
        banks=1,
        synchronous=False,
    ),
    DeviceGeneration(
        name="SDRAM-66",
        year=1996,
        peak_bandwidth_mbit_per_s_per_pin=66.0,
        random_access_ns=65.0,
        typical_width_bits=16,
        burst_words=4,
        banks=2,
        synchronous=True,
    ),
    DeviceGeneration(
        name="SDRAM-100 (PC100)",
        year=1998,
        peak_bandwidth_mbit_per_s_per_pin=100.0,
        random_access_ns=60.0,
        typical_width_bits=16,
        burst_words=8,
        banks=4,
        synchronous=True,
    ),
    DeviceGeneration(
        name="Direct RDRAM",
        year=1999,
        peak_bandwidth_mbit_per_s_per_pin=800.0,
        random_access_ns=55.0,
        typical_width_bits=16,
        burst_words=16,
        banks=16,
        synchronous=True,
    ),
)


def generation(name: str) -> DeviceGeneration:
    """Look a generation up by name."""
    for entry in GENERATIONS:
        if entry.name == name:
            return entry
    raise ConfigurationError(f"unknown generation {name!r}")


def bandwidth_growth(from_year: int, to_year: int) -> float:
    """Device peak-bandwidth growth factor between two years.

    Uses the latest generation introduced by each year.
    """
    early = _latest_by(from_year)
    late = _latest_by(to_year)
    return (
        late.device_peak_bandwidth_bits_per_s
        / early.device_peak_bandwidth_bits_per_s
    )


def latency_improvement_per_year(from_year: int, to_year: int) -> float:
    """Compound annual improvement of random access time.

    The paper says roughly 10 %/yr — i.e. access times shrink by a
    factor of ~0.9 per year.
    """
    early = _latest_by(from_year)
    late = _latest_by(to_year)
    if to_year <= from_year:
        raise ConfigurationError("need to_year > from_year")
    years = to_year - from_year
    ratio = late.random_access_ns / early.random_access_ns
    return 1.0 - ratio ** (1.0 / years)


def _latest_by(year: int) -> DeviceGeneration:
    candidates = [entry for entry in GENERATIONS if entry.year <= year]
    if not candidates:
        raise ConfigurationError(f"no generation introduced by {year}")
    return max(candidates, key=lambda entry: entry.year)


def burst_granularity_bits(entry: DeviceGeneration) -> int:
    """Bits moved per full-rate access — the paper's 'increased burst
    lengths' price of bandwidth."""
    return entry.typical_width_bits * entry.burst_words
