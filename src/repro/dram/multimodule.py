"""Multi-module embedded memory systems.

One module of the flexible concept tops out at 512 bits and ~9 GB/s
(Section 5).  Systems that need more — or that want independent
concurrent ports for decoupled clients — instantiate several modules
side by side.  This module composes macros into a system, checks the
composition against a chip-level budget, and reports the aggregate
figures (bandwidth adds across modules; area adds with a small
chip-level routing overhead; each module keeps its own controller).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT, ceil_div
from repro.dram.edram import EDRAMMacro, SIEMENS_CONCEPT, SiemensConceptRules


@dataclass(frozen=True)
class MultiModuleSystem:
    """Several eDRAM modules on one die.

    Attributes:
        modules: The instantiated macros.
        routing_overhead: Chip-level area fraction added for the
            inter-module interconnect and per-module controllers.
    """

    modules: tuple
    routing_overhead: float = 0.05

    def __post_init__(self) -> None:
        if not self.modules:
            raise ConfigurationError("system needs at least one module")
        if not 0 <= self.routing_overhead < 1:
            raise ConfigurationError(
                f"routing overhead must be in [0, 1): {self.routing_overhead}"
            )

    @property
    def n_modules(self) -> int:
        return len(self.modules)

    @property
    def total_bits(self) -> int:
        return sum(module.size_bits for module in self.modules)

    @property
    def total_width_bits(self) -> int:
        return sum(module.width for module in self.modules)

    @property
    def peak_bandwidth_bits_per_s(self) -> float:
        """Aggregate peak: modules run concurrently."""
        return sum(
            module.peak_bandwidth_bits_per_s for module in self.modules
        )

    def area_mm2(self) -> float:
        raw = sum(module.area_mm2() for module in self.modules)
        return raw * (1.0 + self.routing_overhead)

    def describe(self) -> str:
        parts = ", ".join(
            f"{module.size_bits / MBIT:.1f} Mbit x{module.width}"
            for module in self.modules
        )
        return (
            f"{self.n_modules} modules ({parts}): "
            f"{self.total_bits / MBIT:.1f} Mbit, "
            f"{self.peak_bandwidth_bits_per_s / 8e9:.2f} GB/s peak, "
            f"{self.area_mm2():.1f} mm^2"
        )


def compose_for_bandwidth(
    capacity_bits: int,
    bandwidth_bits_per_s: float,
    rules: SiemensConceptRules = SIEMENS_CONCEPT,
    banks: int = 4,
    page_bits: int = 2048,
    max_modules: int = 8,
) -> MultiModuleSystem:
    """Smallest multi-module system meeting capacity and bandwidth.

    Chooses the module count from the bandwidth requirement (each module
    contributes up to max_width x clock), splits the capacity evenly
    (rounded up to building blocks), and picks the narrowest per-module
    width that still meets the aggregate bandwidth.

    Raises:
        InfeasibleError: If the requirement exceeds ``max_modules``
            full-width modules or a module would exceed the concept's
            size limit.
    """
    if capacity_bits <= 0:
        raise ConfigurationError("capacity must be positive")
    if bandwidth_bits_per_s <= 0:
        raise ConfigurationError("bandwidth must be positive")
    per_module_peak = rules.max_module_bandwidth_bits_per_s
    n_modules = max(
        1, ceil_div(int(bandwidth_bits_per_s), int(per_module_peak))
    )
    if n_modules > max_modules:
        raise InfeasibleError(
            f"{bandwidth_bits_per_s / 8e9:.1f} GB/s needs "
            f"{n_modules} modules, more than the {max_modules} allowed"
        )
    step = min(rules.block_sizes_bits)
    per_module_bits = ceil_div(
        ceil_div(capacity_bits, n_modules), step
    ) * step
    per_module_bits = max(per_module_bits, rules.min_module_bits)
    if per_module_bits > rules.max_module_bits:
        raise InfeasibleError(
            f"each module would need "
            f"{per_module_bits / MBIT:.0f} Mbit, above the concept's "
            f"{rules.max_module_bits / MBIT:.0f} Mbit limit"
        )
    # Narrowest width meeting the aggregate bandwidth.
    clock = rules.max_clock_hz
    needed_per_module = bandwidth_bits_per_s / n_modules
    width = rules.min_width
    while width < rules.max_width and width * clock < needed_per_module:
        width *= 2
    if width * clock * n_modules < bandwidth_bits_per_s:
        raise InfeasibleError(
            f"even {n_modules} x {width}-bit modules cannot reach "
            f"{bandwidth_bits_per_s / 8e9:.1f} GB/s"
        )
    width = min(width, min(page_bits, rules.max_width))
    modules = tuple(
        EDRAMMacro.build(
            size_bits=per_module_bits,
            width=width,
            banks=banks,
            page_bits=page_bits,
        )
        for _ in range(n_modules)
    )
    return MultiModuleSystem(modules=modules)
