"""A complete DRAM device or macro: banks behind one command interface.

The device enforces the inter-bank constraints the per-bank machines
cannot see (tRRD between activates to different banks, a single shared
data bus) and owns the refresh obligation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ProtocolError
from repro.dram.bank import Bank
from repro.dram.commands import Command, CommandType
from repro.dram.organizations import Organization
from repro.dram.timing import TimingParameters


@dataclass
class DRAMDevice:
    """One SDRAM device or eDRAM macro.

    Attributes:
        organization: Physical organization (banks, rows, pages, width).
        timing: Command timing parameters.
        name: Identifier for reports.
    """

    organization: Organization
    timing: TimingParameters
    name: str = "dram"

    banks: list[Bank] = field(init=False)
    _last_activate_cycle: int = field(default=-(1 << 30), init=False)
    _data_bus_free: int = field(default=0, init=False)
    _last_data_was_read: bool | None = field(default=None, init=False)
    commands_issued: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.banks = [
            Bank(index=i, timing=self.timing, n_rows=self.organization.n_rows)
            for i in range(self.organization.n_banks)
        ]

    # -- peak figures ---------------------------------------------------------

    @property
    def peak_bandwidth_bits_per_s(self) -> float:
        """Peak data rate: one word per clock."""
        return self.organization.word_bits * self.timing.clock_hz

    @property
    def capacity_bits(self) -> int:
        return self.organization.capacity_bits

    # -- shared-constraint inspection ---------------------------------------

    @property
    def last_activate_cycle(self) -> int:
        """Cycle of the most recent ACTIVATE (any bank), for tRRD."""
        return self._last_activate_cycle

    @property
    def data_bus_free_cycle(self) -> int:
        """First cycle at which the shared data bus is free again."""
        return self._data_bus_free

    @property
    def last_data_was_read(self) -> bool | None:
        """Direction of the last data burst (None before the first)."""
        return self._last_data_was_read

    # -- command interface ------------------------------------------------

    def bank(self, index: int) -> Bank:
        if not 0 <= index < len(self.banks):
            raise ConfigurationError(
                f"bank {index} out of range [0, {len(self.banks)})"
            )
        return self.banks[index]

    def can_issue(self, command: Command) -> bool:
        """Device-level legality: bank legality plus shared constraints."""
        if command.kind is CommandType.NOP:
            return True
        if command.kind is CommandType.REFRESH:
            return all(
                bank.can_issue(
                    Command(
                        kind=CommandType.REFRESH,
                        cycle=command.cycle,
                        bank=bank.index,
                    )
                )
                for bank in self.banks
            )
        bank = self.bank(command.bank)
        if not bank.can_issue(command):
            return False
        if command.kind is CommandType.ACTIVATE:
            return (
                command.cycle
                >= self._last_activate_cycle + self.timing.t_rrd
            )
        if command.kind in (CommandType.READ, CommandType.WRITE):
            # The shared data bus must be free for the whole burst, plus
            # a turnaround gap when the transfer direction reverses.
            data_start = command.cycle + (
                self.timing.t_cas
                if command.kind is CommandType.READ
                else 1
            )
            earliest = self._data_bus_free
            is_read = command.kind is CommandType.READ
            if (
                self._last_data_was_read is not None
                and self._last_data_was_read != is_read
            ):
                earliest += self.timing.t_turnaround
            return data_start >= earliest
        return True

    def issue(self, command: Command) -> int:
        """Issue a command; returns the completion cycle (last data beat
        for column commands, ready-again cycle otherwise).

        Raises:
            ProtocolError: On any timing or state violation.
        """
        if not self.can_issue(command):
            raise ProtocolError(f"device {self.name}: illegal {command}")
        self.commands_issued += 1
        if command.kind is CommandType.NOP:
            return command.cycle
        if command.kind is CommandType.REFRESH:
            done = command.cycle
            for bank in self.banks:
                done = max(
                    done,
                    bank.issue(
                        Command(
                            kind=CommandType.REFRESH,
                            cycle=command.cycle,
                            bank=bank.index,
                        )
                    ),
                )
            return done
        if command.kind is CommandType.ACTIVATE:
            self._last_activate_cycle = command.cycle
            return self.bank(command.bank).issue(command)
        if command.kind in (CommandType.READ, CommandType.WRITE):
            end = self.bank(command.bank).issue(command)
            self._data_bus_free = end + 1
            self._last_data_was_read = command.kind is CommandType.READ
            return end
        return self.bank(command.bank).issue(command)

    # -- aggregate statistics ----------------------------------------------

    @property
    def total_activations(self) -> int:
        return sum(bank.activations for bank in self.banks)

    @property
    def total_row_hits(self) -> int:
        return sum(bank.row_hits for bank in self.banks)

    @property
    def total_row_misses(self) -> int:
        return sum(bank.row_misses for bank in self.banks)

    def row_hit_rate(self) -> float:
        """Fraction of accesses that found their row open."""
        total = self.total_row_hits + self.total_row_misses
        if total == 0:
            return 0.0
        return self.total_row_hits / total
