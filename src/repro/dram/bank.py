"""Per-bank state machine with timing enforcement.

Each DRAM bank is an independent array with one row buffer ("an active row
can act as a cache" — Section 4).  The bank tracks its state (idle /
activating / active / precharging) and the earliest cycle at which each
command type becomes legal, derived from the timing parameters.  Illegal
commands raise :class:`~repro.errors.ProtocolError`, which is how the
simulator catches controller bugs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ProtocolError
from repro.dram.timing import TimingParameters
from repro.dram.commands import Command, CommandType


class BankState(enum.Enum):
    """Observable state of one bank."""

    IDLE = "idle"  # precharged, no open row
    ACTIVATING = "activating"  # row being opened (tRCD running)
    ACTIVE = "active"  # row open, column commands legal
    PRECHARGING = "precharging"  # tRP running


@dataclass
class Bank:
    """One DRAM bank.

    Attributes:
        index: Bank number.
        timing: Timing parameters of the device.
        n_rows: Number of rows in the bank.
    """

    index: int
    timing: TimingParameters
    n_rows: int

    _state: BankState = field(default=BankState.IDLE, init=False)
    _open_row: int | None = field(default=None, init=False)
    # Earliest cycles at which each command class is legal.
    _ready_activate: int = field(default=0, init=False)
    _ready_column: int = field(default=0, init=False)
    _ready_precharge: int = field(default=0, init=False)
    # Statistics.
    activations: int = field(default=0, init=False)
    row_hits: int = field(default=0, init=False)
    row_misses: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(f"bank index must be >= 0: {self.index}")
        if self.n_rows < 1:
            raise ConfigurationError(f"bank needs rows, got {self.n_rows}")

    # -- state inspection ---------------------------------------------------

    @property
    def state(self) -> BankState:
        return self._state

    def open_row(self, cycle: int) -> int | None:
        """The currently open row, or None.  A row counts as open from the
        moment ACTIVATE is issued (the controller may pipeline column
        commands behind it subject to tRCD)."""
        self._settle(cycle)
        return self._open_row

    def is_row_open(self, row: int, cycle: int) -> bool:
        return self.open_row(cycle) == row

    def _settle(self, cycle: int) -> None:
        """Advance the observable state to ``cycle``."""
        if self._state is BankState.ACTIVATING and cycle >= self._ready_column:
            self._state = BankState.ACTIVE
        if self._state is BankState.PRECHARGING and cycle >= self._ready_activate:
            self._state = BankState.IDLE

    # -- command legality ---------------------------------------------------

    def earliest_activate(self) -> int:
        return self._ready_activate

    def earliest_column(self) -> int:
        return self._ready_column

    def earliest_precharge(self) -> int:
        return self._ready_precharge

    def can_issue(self, command: Command) -> bool:
        """Whether ``command`` is legal at its own cycle."""
        self._settle(command.cycle)
        kind, cycle = command.kind, command.cycle
        if kind is CommandType.ACTIVATE:
            return (
                self._open_row is None and cycle >= self._ready_activate
            )
        if kind in (CommandType.READ, CommandType.WRITE):
            return self._open_row is not None and cycle >= self._ready_column
        if kind is CommandType.PRECHARGE:
            return cycle >= self._ready_precharge
        if kind is CommandType.REFRESH:
            return self._open_row is None and cycle >= self._ready_activate
        return True  # NOP always legal

    # -- command application ------------------------------------------------

    def issue(self, command: Command) -> int:
        """Apply a command; returns the cycle its data phase completes.

        For ACTIVATE/PRECHARGE/REFRESH the return value is the cycle the
        bank becomes ready again; for READ/WRITE it is the cycle of the
        last data beat.

        Raises:
            ProtocolError: If the command is illegal in the current state.
        """
        if command.bank != self.index:
            raise ProtocolError(
                f"command {command} routed to bank {self.index}"
            )
        if not self.can_issue(command):
            raise ProtocolError(
                f"illegal {command} in state {self._state.value} "
                f"(open row {self._open_row}, ready: act>={self._ready_activate} "
                f"col>={self._ready_column} pre>={self._ready_precharge})"
            )
        t, cycle = self.timing, command.cycle
        if command.kind is CommandType.ACTIVATE:
            if command.row is None or not 0 <= command.row < self.n_rows:
                raise ProtocolError(
                    f"row {command.row} out of range [0, {self.n_rows})"
                )
            self._state = BankState.ACTIVATING
            self._open_row = command.row
            self.activations += 1
            self._ready_column = cycle + t.t_rcd
            self._ready_precharge = cycle + t.t_ras
            self._ready_activate = cycle + t.t_rc
            return self._ready_column
        if command.kind in (CommandType.READ, CommandType.WRITE):
            burst_end = cycle + t.t_cas + t.burst_length - 1
            if command.kind is CommandType.WRITE:
                self._ready_precharge = max(
                    self._ready_precharge, burst_end + t.t_wr
                )
            else:
                self._ready_precharge = max(self._ready_precharge, burst_end)
            # Column commands can be pipelined back-to-back at burst pace.
            self._ready_column = max(
                self._ready_column, cycle + t.burst_length
            )
            return burst_end
        if command.kind is CommandType.PRECHARGE:
            self._state = BankState.PRECHARGING
            self._open_row = None
            self._ready_activate = max(
                self._ready_activate, cycle + t.t_rp
            )
            self._ready_column = 1 << 62  # no column commands until ACT
            return self._ready_activate
        if command.kind is CommandType.REFRESH:
            self._state = BankState.PRECHARGING
            self._open_row = None
            self._ready_activate = cycle + t.t_rfc
            self._ready_column = 1 << 62
            self._ready_precharge = cycle + t.t_rfc
            return self._ready_activate
        return cycle  # NOP

    def record_access_outcome(self, row_hit: bool) -> None:
        """Bookkeeping hook for the controller's hit/miss statistics."""
        if row_hit:
            self.row_hits += 1
        else:
            self.row_misses += 1
