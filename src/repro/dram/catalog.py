"""Commodity SDRAM part catalog and discrete-system composition.

The paper's granularity argument (Sections 1 and 4): discrete memories
come in fixed sizes and narrow widths, so composing a system that meets a
*width* (bandwidth) requirement over-provisions *capacity* — "it would
take 16 discrete 4-Mbit chips (organized as 256K x 16) to achieve the same
width, so the granularity of such a discrete system is 64 Mbit.  But the
application may only call for, say, 8 Mbit of memory."

:func:`smallest_system` performs exactly that composition: given required
capacity and bus width, pick the catalog part and replication count that
minimize total capacity (then chip count), and report the overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT, ceil_div
from repro.dram.organizations import Organization
from repro.dram.timing import TimingParameters, PC100_TIMING


@dataclass(frozen=True)
class SDRAMPart:
    """One commodity SDRAM product.

    Attributes:
        name: Market name, e.g. ``"4Mb x16 SDRAM"``.
        capacity_bits: Device capacity.
        organization: Banks/rows/pages/width layout.
        timing: Interface timing.
        pins: Package pin count (drives packaging cost and board area).
        unit_price: Street price per device.
    """

    name: str
    capacity_bits: int
    organization: Organization
    timing: TimingParameters = PC100_TIMING
    pins: int = 54
    unit_price: float = 4.0

    def __post_init__(self) -> None:
        if self.capacity_bits != self.organization.capacity_bits:
            raise ConfigurationError(
                f"{self.name}: capacity {self.capacity_bits} does not match "
                f"organization ({self.organization.capacity_bits})"
            )
        if self.pins < 2:
            raise ConfigurationError(f"{self.name}: implausible pin count")
        if self.unit_price < 0:
            raise ConfigurationError(f"{self.name}: price must be >= 0")

    @property
    def width_bits(self) -> int:
        return self.organization.word_bits

    @property
    def peak_bandwidth_bits_per_s(self) -> float:
        return self.width_bits * self.timing.clock_hz


def _org(capacity_bits: int, width: int, banks: int, page_bits: int) -> Organization:
    rows = capacity_bits // (banks * page_bits)
    return Organization(
        n_banks=banks, n_rows=rows, page_bits=page_bits, word_bits=width
    )


#: Late-90s commodity parts: 4/16/64 Mbit in x4/x8/x16.  Sizes are binary
#: Mbit; page sizes follow typical datasheets (wider parts, shorter pages).
COMMODITY_PARTS: tuple[SDRAMPart, ...] = (
    SDRAMPart(
        name="4Mb x16 SDRAM (256K x 16)",
        capacity_bits=4 * MBIT,
        organization=_org(4 * MBIT, 16, 2, 8192),
        pins=50,
        unit_price=2.0,
    ),
    SDRAMPart(
        name="16Mb x4 SDRAM (4M x 4)",
        capacity_bits=16 * MBIT,
        organization=_org(16 * MBIT, 4, 2, 4096),
        pins=44,
        unit_price=3.0,
    ),
    SDRAMPart(
        name="16Mb x8 SDRAM (2M x 8)",
        capacity_bits=16 * MBIT,
        organization=_org(16 * MBIT, 8, 2, 8192),
        pins=44,
        unit_price=3.2,
    ),
    SDRAMPart(
        name="16Mb x16 SDRAM (1M x 16)",
        capacity_bits=16 * MBIT,
        organization=_org(16 * MBIT, 16, 2, 16384),
        pins=50,
        unit_price=3.5,
    ),
    SDRAMPart(
        name="64Mb x4 SDRAM (16M x 4)",
        capacity_bits=64 * MBIT,
        organization=_org(64 * MBIT, 4, 4, 4096),
        pins=54,
        unit_price=8.0,
    ),
    SDRAMPart(
        name="64Mb x8 SDRAM (8M x 8)",
        capacity_bits=64 * MBIT,
        organization=_org(64 * MBIT, 8, 4, 8192),
        pins=54,
        unit_price=8.5,
    ),
    SDRAMPart(
        name="64Mb x16 SDRAM (4M x 16)",
        capacity_bits=64 * MBIT,
        organization=_org(64 * MBIT, 16, 4, 16384),
        pins=54,
        unit_price=9.0,
    ),
)


@dataclass(frozen=True)
class DiscreteSystem:
    """A memory system composed of replicated commodity parts.

    Attributes:
        part: The part used.
        n_chips: Devices in parallel (composing the bus width).
        required_bits: The application's capacity requirement.
        required_width: The application's bus-width requirement.
    """

    part: SDRAMPart
    n_chips: int
    required_bits: int
    required_width: int

    @property
    def total_bits(self) -> int:
        """Installed capacity (the system granularity)."""
        return self.n_chips * self.part.capacity_bits

    @property
    def total_width_bits(self) -> int:
        return self.n_chips * self.part.width_bits

    @property
    def overhead_bits(self) -> int:
        """Capacity installed beyond the requirement."""
        return max(0, self.total_bits - self.required_bits)

    @property
    def overhead_fraction(self) -> float:
        if self.required_bits <= 0:
            return 0.0
        return self.overhead_bits / self.required_bits

    @property
    def peak_bandwidth_bits_per_s(self) -> float:
        return self.total_width_bits * self.part.timing.clock_hz

    @property
    def total_price(self) -> float:
        return self.n_chips * self.part.unit_price


def smallest_system(
    required_bits: int,
    required_width_bits: int,
    parts: tuple[SDRAMPart, ...] = COMMODITY_PARTS,
) -> DiscreteSystem:
    """Cheapest-granularity discrete system meeting capacity and width.

    For each part, the chip count is the maximum of what the width needs
    and what the capacity needs; among parts, minimize installed capacity,
    then chip count, then price.

    Raises:
        InfeasibleError: If the catalog is empty.
        ConfigurationError: If requirements are not positive.
    """
    if required_bits <= 0:
        raise ConfigurationError("required capacity must be positive")
    if required_width_bits <= 0:
        raise ConfigurationError("required width must be positive")
    if not parts:
        raise InfeasibleError("empty part catalog")
    candidates: list[DiscreteSystem] = []
    for part in parts:
        chips_for_width = ceil_div(required_width_bits, part.width_bits)
        chips_for_capacity = ceil_div(required_bits, part.capacity_bits)
        n = max(chips_for_width, chips_for_capacity)
        candidates.append(
            DiscreteSystem(
                part=part,
                n_chips=n,
                required_bits=required_bits,
                required_width=required_width_bits,
            )
        )
    return min(
        candidates,
        key=lambda s: (s.total_bits, s.n_chips, s.total_price),
    )
