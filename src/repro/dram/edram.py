"""eDRAM macro generator: the Siemens flexible concept (paper Section 5).

Key features of the concept, all enforced or produced here:

* two building-block sizes, 256 Kbit and 1 Mbit;
* memory modules constructed with these granularities;
* embedded memory sizes up to at least 128 Mbit;
* interface widths ranging from 16 to 512 bits per module;
* flexibility in the number of banks as well as the page length;
* different redundancy levels;
* cycle times better than 7 ns (clock frequencies better than 143 MHz);
* a maximum bandwidth per module of about 9 Gbyte/s
  (512 bit x 143 MHz / 8 = 9.15 GB/s);
* area efficiency of about 1 Mbit/mm^2 for modules of 8-16 Mbit upwards.

The generator validates a requested configuration against the concept
rules, builds the corresponding :class:`~repro.dram.device.DRAMDevice`
organization, and reports area (via :mod:`repro.area.macro`), peak
bandwidth and fill frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ConfigurationError
from repro.units import KBIT, MBIT, fill_frequency, is_power_of_two
from repro.dram.organizations import Organization
from repro.dram.timing import TimingParameters, EDRAM_TIMING
from repro.dram.device import DRAMDevice
from repro.area.macro import MacroAreaModel
from repro.area.process import BaseProcess, DRAM_BASED_025


@dataclass(frozen=True)
class SiemensConceptRules:
    """Constructibility rules of the flexible eDRAM concept.

    Attributes:
        block_sizes_bits: Allowed building-block sizes.
        min_module_bits: Smallest constructible module.
        max_module_bits: Largest supported embedded memory.
        min_width: Narrowest module interface.
        max_width: Widest module interface.
        max_banks: Most banks a module supports.
        allowed_page_bits: Selectable page lengths.
        cycle_time_ns: Guaranteed cycle time.
        redundancy_levels: Selectable spare (row+column) counts per module.
    """

    block_sizes_bits: tuple[int, ...] = (256 * KBIT, MBIT)
    min_module_bits: int = 256 * KBIT
    max_module_bits: int = 128 * MBIT
    min_width: int = 16
    max_width: int = 512
    max_banks: int = 16
    allowed_page_bits: tuple[int, ...] = (1024, 2048, 4096, 8192)
    cycle_time_ns: float = 7.0
    redundancy_levels: tuple[int, ...] = (0, 2, 4, 8)

    def __post_init__(self) -> None:
        if not self.block_sizes_bits:
            raise ConfigurationError("need at least one block size")
        if self.min_module_bits > self.max_module_bits:
            raise ConfigurationError("min module exceeds max module")
        if self.min_width > self.max_width:
            raise ConfigurationError("min width exceeds max width")

    @property
    def max_clock_hz(self) -> float:
        return 1e9 / self.cycle_time_ns

    @property
    def max_module_bandwidth_bits_per_s(self) -> float:
        """The "about 9 Gbyte/s" headline figure."""
        return self.max_width * self.max_clock_hz

    def constructible_sizes(self, up_to_bits: int | None = None) -> list[int]:
        """All module sizes constructible from the building blocks.

        Sizes are non-negative integer combinations of the block sizes;
        with 256 Kbit and 1 Mbit blocks that is every multiple of
        256 Kbit, which is exactly the granularity claim of Section 5.
        """
        limit = up_to_bits if up_to_bits is not None else self.max_module_bits
        if limit < self.min_module_bits:
            return []
        step = min(self.block_sizes_bits)
        sizes = []
        size = self.min_module_bits
        while size <= min(limit, self.max_module_bits):
            sizes.append(size)
            size += step
        return sizes

    def validate(
        self, size_bits: int, width: int, banks: int, page_bits: int
    ) -> None:
        """Raise ConfigurationError if the module violates the concept."""
        step = min(self.block_sizes_bits)
        if size_bits % step != 0:
            raise ConfigurationError(
                f"module size {size_bits} is not a multiple of the "
                f"{step}-bit building block"
            )
        if not self.min_module_bits <= size_bits <= self.max_module_bits:
            raise ConfigurationError(
                f"module size {size_bits / MBIT:.2f} Mbit outside "
                f"[{self.min_module_bits / MBIT:.2f}, "
                f"{self.max_module_bits / MBIT:.0f}] Mbit"
            )
        if not self.min_width <= width <= self.max_width:
            raise ConfigurationError(
                f"interface width {width} outside "
                f"[{self.min_width}, {self.max_width}]"
            )
        if not is_power_of_two(width):
            raise ConfigurationError(f"width must be a power of two: {width}")
        if not is_power_of_two(banks) or banks > self.max_banks:
            raise ConfigurationError(
                f"banks must be a power of two <= {self.max_banks}: {banks}"
            )
        if page_bits not in self.allowed_page_bits:
            raise ConfigurationError(
                f"page length {page_bits} not in {self.allowed_page_bits}"
            )
        if width > page_bits:
            raise ConfigurationError(
                f"width {width} exceeds page length {page_bits}"
            )
        rows_per_bank = size_bits // (banks * page_bits)
        if rows_per_bank < 1 or size_bits % (banks * page_bits) != 0:
            raise ConfigurationError(
                f"{size_bits} bits cannot be divided into {banks} banks of "
                f"{page_bits}-bit pages"
            )


#: The concept as published.
SIEMENS_CONCEPT = SiemensConceptRules()


@dataclass(frozen=True)
class EDRAMMacro:
    """A generated embedded DRAM module.

    Use :meth:`build` to construct a validated macro; the raw constructor
    performs the same validation.

    Attributes:
        size_bits: Module capacity (multiple of the building block).
        width: Interface width in bits.
        banks: Number of banks.
        page_bits: Page length in bits.
        rules: Concept rules the module was validated against.
        timing: Command timing (defaults to the 7 ns concept timing).
        process: Base process used for area figures.
        redundancy_spares: Spare rows+columns selected for yield tuning.
    """

    size_bits: int
    width: int
    banks: int
    page_bits: int
    rules: SiemensConceptRules = SIEMENS_CONCEPT
    timing: TimingParameters = EDRAM_TIMING
    process: BaseProcess = DRAM_BASED_025
    redundancy_spares: int = 4

    def __post_init__(self) -> None:
        self.rules.validate(
            self.size_bits, self.width, self.banks, self.page_bits
        )
        if self.redundancy_spares not in self.rules.redundancy_levels:
            raise ConfigurationError(
                f"redundancy level {self.redundancy_spares} not offered "
                f"(choose from {self.rules.redundancy_levels})"
            )
        if self.timing.clock_period_ns > self.rules.cycle_time_ns + 1e-9:
            raise ConfigurationError(
                f"timing clock {self.timing.clock_period_ns} ns exceeds the "
                f"concept's {self.rules.cycle_time_ns} ns cycle time"
            )

    @classmethod
    def build(
        cls,
        size_bits: int,
        width: int,
        banks: int = 4,
        page_bits: int = 2048,
        **kwargs: object,
    ) -> "EDRAMMacro":
        """Construct and validate a macro (convenience wrapper)."""
        return cls(
            size_bits=size_bits,
            width=width,
            banks=banks,
            page_bits=page_bits,
            **kwargs,  # type: ignore[arg-type]
        )

    @cached_property
    def organization(self) -> Organization:
        # cached_property writes straight into __dict__, which the
        # frozen dataclass permits; hash/eq still use the declared
        # fields only.
        return Organization(
            n_banks=self.banks,
            n_rows=self.size_bits // (self.banks * self.page_bits),
            page_bits=self.page_bits,
            word_bits=self.width,
        )

    def device(self, name: str = "edram") -> DRAMDevice:
        """Instantiate the cycle-level device model for this macro."""
        return DRAMDevice(
            organization=self.organization, timing=self.timing, name=name
        )

    @property
    def peak_bandwidth_bits_per_s(self) -> float:
        return self.width * self.timing.clock_hz

    @property
    def fill_frequency_hz(self) -> float:
        """Peak fill frequency (Section 1 footnote 2)."""
        return fill_frequency(self.peak_bandwidth_bits_per_s, self.size_bits)

    def area_mm2(self) -> float:
        """Macro area from the process's macro model (memoized)."""
        return self._area_mm2

    @cached_property
    def _area_mm2(self) -> float:
        model = MacroAreaModel(
            process=self.process,
            redundancy_area_fraction=0.005 * self.redundancy_spares,
        )
        return model.total_area_mm2(self.size_bits, self.width)

    def area_efficiency_mbit_per_mm2(self) -> float:
        return (self.size_bits / MBIT) / self.area_mm2()
