"""Refresh scheduling.

Every row must be refreshed within the retention period; refresh commands
steal cycles from the clients ("the peak bandwidth is a theoretical
quantity", Section 4 — refresh is one of the overheads).  The scheduler
here is the standard distributed one: refresh commands are spread evenly
over the retention period rather than bursted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.dram.timing import TimingParameters


@dataclass
class RefreshScheduler:
    """Evenly distributed auto-refresh.

    Attributes:
        timing: Device timing (supplies tRFC and the clock).
        n_rows_total: Rows to refresh per retention period.  With a
            rows-per-refresh-command factor of 1 this equals the number of
            refresh commands per period.
        retention_s: Retention period (refresh interval for the array).
        rows_per_command: Rows refreshed by one REFRESH command (devices
            with internal refresh counters often do several).
    """

    timing: TimingParameters
    n_rows_total: int
    retention_s: float = 64e-3
    rows_per_command: int = 1

    _next_due_cycle: float = field(default=0.0, init=False)
    refreshes_issued: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.n_rows_total < 1:
            raise ConfigurationError("need at least one row to refresh")
        if self.retention_s <= 0:
            raise ConfigurationError("retention must be positive")
        if self.rows_per_command < 1:
            raise ConfigurationError("rows_per_command must be >= 1")

    @property
    def commands_per_period(self) -> int:
        from repro.units import ceil_div

        return ceil_div(self.n_rows_total, self.rows_per_command)

    @property
    def interval_cycles(self) -> float:
        """Cycles between consecutive refresh commands."""
        period_cycles = self.retention_s * self.timing.clock_hz
        return period_cycles / self.commands_per_period

    def due(self, cycle: int) -> bool:
        """Whether a refresh command is due at ``cycle``."""
        return cycle >= self._next_due_cycle

    def quiescent_until(self, cycle: int) -> int:
        """First cycle >= ``cycle`` at which :meth:`due` becomes true.

        The scheduler needs no attention before that cycle, so a
        simulator may skip straight to it (or to whatever other event
        comes first).
        """
        return max(cycle, math.ceil(self._next_due_cycle))

    def mark_issued(self, cycle: int) -> None:
        """Record that a refresh was issued at ``cycle``."""
        if cycle < 0:
            raise ConfigurationError(f"cycle must be >= 0, got {cycle}")
        self.refreshes_issued += 1
        self._next_due_cycle = max(
            self._next_due_cycle + self.interval_cycles,
            cycle + 1.0,
        )

    def bandwidth_overhead(self) -> float:
        """Fraction of cycles consumed by refresh in steady state."""
        return min(1.0, self.timing.t_rfc / self.interval_cycles)
