"""SDRAM timing parameters.

All constraints are stored in integer clock cycles (the natural unit of a
synchronous interface) together with the clock period, so nanosecond
figures can be recovered exactly.  Construction from a nanosecond spec
rounds each constraint *up* to whole cycles, as a real controller must.

The two bundled instances are the calibration points from DESIGN.md:

* :data:`PC100_TIMING` — a PC100-class commodity SDRAM (10 ns clock, CL2,
  tRCD/tRP 20 ns, tRAS 50 ns),
* :data:`EDRAM_TIMING` — the Siemens-concept eDRAM macro (7 ns cycle,
  "cycle times better than 7 ns, corresponding to clock frequencies
  better than 143 MHz").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimingParameters:
    """Command-level timing constraints of a synchronous DRAM.

    Attributes:
        clock_period_ns: Interface clock period.
        t_rcd: ACTIVATE to READ/WRITE delay, cycles.
        t_cas: READ to first data (CAS latency), cycles.
        t_rp: PRECHARGE to ACTIVATE delay, cycles.
        t_ras: ACTIVATE to PRECHARGE minimum, cycles.
        t_rc: ACTIVATE to ACTIVATE (same bank) minimum, cycles.
        t_rrd: ACTIVATE to ACTIVATE (different bank) minimum, cycles.
        t_wr: Write recovery (last write data to PRECHARGE), cycles.
        t_rfc: REFRESH command duration, cycles.
        burst_length: Data beats per READ/WRITE command.
        t_turnaround: Dead cycles on the shared data bus when the
            transfer direction reverses (read<->write).
    """

    clock_period_ns: float
    t_rcd: int
    t_cas: int
    t_rp: int
    t_ras: int
    t_rc: int
    t_rrd: int
    t_wr: int
    t_rfc: int
    burst_length: int
    t_turnaround: int = 1

    def __post_init__(self) -> None:
        if self.clock_period_ns <= 0:
            raise ConfigurationError(
                f"clock period must be positive, got {self.clock_period_ns}"
            )
        for name in (
            "t_rcd",
            "t_cas",
            "t_rp",
            "t_ras",
            "t_rc",
            "t_rrd",
            "t_wr",
            "t_rfc",
        ):
            value = getattr(self, name)
            if value < 1:
                raise ConfigurationError(
                    f"{name} must be at least 1 cycle, got {value}"
                )
        if self.burst_length < 1:
            raise ConfigurationError(
                f"burst length must be >= 1, got {self.burst_length}"
            )
        if self.t_turnaround < 0:
            raise ConfigurationError(
                f"t_turnaround must be >= 0, got {self.t_turnaround}"
            )
        if self.t_rc < self.t_ras + 1:
            raise ConfigurationError(
                f"t_rc ({self.t_rc}) must cover t_ras ({self.t_ras}) plus "
                f"at least one precharge cycle"
            )

    @property
    def clock_hz(self) -> float:
        """Interface clock frequency in hertz."""
        return 1e9 / self.clock_period_ns

    @property
    def row_miss_latency_cycles(self) -> int:
        """Worst-case access latency: precharge + activate + CAS."""
        return self.t_rp + self.t_rcd + self.t_cas

    @property
    def row_hit_latency_cycles(self) -> int:
        """Access latency when the row is already open."""
        return self.t_cas

    @property
    def row_miss_latency_ns(self) -> float:
        return self.row_miss_latency_cycles * self.clock_period_ns

    @property
    def row_hit_latency_ns(self) -> float:
        return self.row_hit_latency_cycles * self.clock_period_ns

    @classmethod
    def from_nanoseconds(
        cls,
        clock_period_ns: float,
        t_rcd_ns: float,
        t_cas_cycles: int,
        t_rp_ns: float,
        t_ras_ns: float,
        t_rrd_ns: float,
        t_wr_ns: float,
        t_rfc_ns: float,
        burst_length: int,
    ) -> "TimingParameters":
        """Build cycle-domain timings from a nanosecond datasheet spec.

        Each analog constraint is rounded up to whole clock cycles; CAS
        latency is already specified in cycles by datasheets.
        """

        def cyc(value_ns: float) -> int:
            if value_ns <= 0:
                raise ConfigurationError(
                    f"timing values must be positive, got {value_ns}"
                )
            return max(1, math.ceil(value_ns / clock_period_ns - 1e-9))

        t_rp = cyc(t_rp_ns)
        t_ras = cyc(t_ras_ns)
        return cls(
            clock_period_ns=clock_period_ns,
            t_rcd=cyc(t_rcd_ns),
            t_cas=t_cas_cycles,
            t_rp=t_rp,
            t_ras=t_ras,
            t_rc=t_ras + t_rp,
            t_rrd=cyc(t_rrd_ns),
            t_wr=cyc(t_wr_ns),
            t_rfc=cyc(t_rfc_ns),
            burst_length=burst_length,
        )

    def scaled_to_clock(self, clock_period_ns: float) -> "TimingParameters":
        """Re-derive the cycle counts for a different clock period,
        keeping the underlying analog delays constant."""
        return TimingParameters.from_nanoseconds(
            clock_period_ns=clock_period_ns,
            t_rcd_ns=self.t_rcd * self.clock_period_ns,
            t_cas_cycles=max(
                1,
                math.ceil(
                    self.t_cas * self.clock_period_ns / clock_period_ns - 1e-9
                ),
            ),
            t_rp_ns=self.t_rp * self.clock_period_ns,
            t_ras_ns=self.t_ras * self.clock_period_ns,
            t_rrd_ns=self.t_rrd * self.clock_period_ns,
            t_wr_ns=self.t_wr * self.clock_period_ns,
            t_rfc_ns=self.t_rfc * self.clock_period_ns,
            burst_length=self.burst_length,
        )


#: PC100-class commodity SDRAM: 100 MHz, CL2, 20 ns tRCD/tRP, 50 ns tRAS.
PC100_TIMING = TimingParameters(
    clock_period_ns=10.0,
    t_rcd=2,
    t_cas=2,
    t_rp=2,
    t_ras=5,
    t_rc=7,
    t_rrd=2,
    t_wr=2,
    t_rfc=8,
    burst_length=8,
)

#: Siemens-concept eDRAM macro: 7 ns cycle (143 MHz).  The analog row
#: delays match the commodity core (same cell physics), so they cost more
#: cycles at the faster clock.
EDRAM_TIMING = TimingParameters(
    clock_period_ns=7.0,
    t_rcd=3,
    t_cas=2,
    t_rp=3,
    t_ras=7,
    t_rc=10,
    t_rrd=2,
    t_wr=2,
    t_rfc=11,
    burst_length=4,
)
