"""Memory organizations and address mappings.

Section 3: "Large memories can be organized in very different ways.  Free
parameters are number of memory banks, which allow the opening of
different pages at the same time, the length of a single page, the word
width and the interface organization."  And: "Optimizing the mapping of
the data into memory such that the sustainable memory bandwidth approaches
the peak bandwidth."

An :class:`Organization` fixes banks x rows x columns x word width; an
:class:`AddressMapping` decides which word-address bits select the bank,
row and column.  The two bundled schemes are the classic extremes:

* ``ROW_BANK_COL`` — consecutive addresses fill a page, then move to the
  next bank ("bank-interleaved pages"): sequential streams hit open rows
  and spread page misses across banks.
* ``BANK_ROW_COL`` — the bank is selected by high address bits: clients in
  disjoint address regions get private banks (good isolation, no
  interleaving within a stream).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.units import is_power_of_two, log2_int


class MappingScheme(enum.Enum):
    """Which address bits select the bank."""

    ROW_BANK_COL = "row:bank:col"  # bank bits just above the column bits
    BANK_ROW_COL = "bank:row:col"  # bank bits at the top of the address


@dataclass(frozen=True)
class Organization:
    """Physical organization of a memory (device or macro).

    Attributes:
        n_banks: Independent banks (power of two).
        n_rows: Rows per bank (power of two).
        page_bits: Bits per page (row buffer size); the paper's "length of
            a single page".
        word_bits: Interface word width — bits transferred per data beat.
    """

    n_banks: int
    n_rows: int
    page_bits: int
    word_bits: int

    def __post_init__(self) -> None:
        # Banks, page and word sizes decode with bit masks, so they must
        # be powers of two; the row count may be arbitrary — embedded
        # modules are built from building blocks and can have "odd" sizes
        # (that size freedom is the whole point of eDRAM).
        for name in ("n_banks", "page_bits", "word_bits"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"{name} must be a power of two, got {value}"
                )
        if self.n_rows < 1:
            raise ConfigurationError(
                f"n_rows must be >= 1, got {self.n_rows}"
            )
        if self.word_bits > self.page_bits:
            raise ConfigurationError(
                f"word width ({self.word_bits}) cannot exceed page size "
                f"({self.page_bits})"
            )

    @property
    def columns_per_page(self) -> int:
        """Words per page."""
        return self.page_bits // self.word_bits

    @property
    def capacity_bits(self) -> int:
        return self.n_banks * self.n_rows * self.page_bits

    @property
    def total_words(self) -> int:
        return self.capacity_bits // self.word_bits

    def __str__(self) -> str:
        from repro.units import mbit

        return (
            f"{mbit(self.capacity_bits):.2f} Mbit: {self.n_banks} banks x "
            f"{self.n_rows} rows x {self.page_bits} b pages, "
            f"{self.word_bits}-bit words"
        )


@dataclass(frozen=True)
class DecodedAddress:
    """A word address split into its physical coordinates."""

    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class AddressMapping:
    """Maps linear word addresses to (bank, row, column).

    Attributes:
        organization: The physical organization being addressed.
        scheme: Bit layout of the mapping.
    """

    organization: Organization
    scheme: MappingScheme = MappingScheme.ROW_BANK_COL

    def decode(self, word_address: int) -> DecodedAddress:
        """Split a linear word address into physical coordinates.

        Raises:
            CapacityError: If the address exceeds the capacity.
        """
        org = self.organization
        if not 0 <= word_address < org.total_words:
            raise CapacityError(
                f"word address {word_address} outside capacity "
                f"({org.total_words} words)"
            )
        col_bits = log2_int(org.columns_per_page)
        bank_bits = log2_int(org.n_banks)
        column = word_address & (org.columns_per_page - 1)
        rest = word_address >> col_bits
        if self.scheme is MappingScheme.ROW_BANK_COL:
            bank = rest & (org.n_banks - 1)
            row = rest >> bank_bits
        else:
            # Row count may be arbitrary, so decode with div/mod.
            row = rest % org.n_rows
            bank = rest // org.n_rows
        return DecodedAddress(bank=bank, row=row, column=column)

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode`."""
        org = self.organization
        if not 0 <= decoded.bank < org.n_banks:
            raise CapacityError(f"bank {decoded.bank} out of range")
        if not 0 <= decoded.row < org.n_rows:
            raise CapacityError(f"row {decoded.row} out of range")
        if not 0 <= decoded.column < org.columns_per_page:
            raise CapacityError(f"column {decoded.column} out of range")
        col_bits = log2_int(org.columns_per_page)
        bank_bits = log2_int(org.n_banks)
        if self.scheme is MappingScheme.ROW_BANK_COL:
            rest = (decoded.row << bank_bits) | decoded.bank
        else:
            rest = decoded.bank * org.n_rows + decoded.row
        return (rest << col_bits) | decoded.column
