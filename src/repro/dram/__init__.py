"""DRAM device models: timing, bank state machines, parts and macros.

This package is the simulator substrate for the paper's Section 4
("DRAM Performance") claims.  It models synchronous DRAM at the command
level: per-bank state machines with row-activate / read / write /
precharge / refresh commands, timing constraints (tRCD, tCAS/CL, tRP,
tRAS, tRC, tRRD, tRFC), a catalog of late-90s commodity SDRAM parts, and
an eDRAM macro generator implementing the Siemens flexible concept of
Section 5 (256 Kbit / 1 Mbit building blocks, 16-512 bit interfaces,
configurable banks and page length, 7 ns cycle).
"""

from repro.dram.timing import TimingParameters, PC100_TIMING, EDRAM_TIMING
from repro.dram.commands import CommandType, Command
from repro.dram.bank import Bank, BankState
from repro.dram.device import DRAMDevice
from repro.dram.organizations import Organization, AddressMapping, MappingScheme
from repro.dram.catalog import SDRAMPart, COMMODITY_PARTS, smallest_system
from repro.dram.edram import EDRAMMacro, SiemensConceptRules, SIEMENS_CONCEPT
from repro.dram.refresh import RefreshScheduler
from repro.dram.tracecheck import TraceChecker, TraceReport, Violation, streaming_read_trace
from repro.dram.multimodule import MultiModuleSystem, compose_for_bandwidth

__all__ = [
    "TimingParameters",
    "PC100_TIMING",
    "EDRAM_TIMING",
    "CommandType",
    "Command",
    "Bank",
    "BankState",
    "DRAMDevice",
    "Organization",
    "AddressMapping",
    "MappingScheme",
    "SDRAMPart",
    "COMMODITY_PARTS",
    "smallest_system",
    "EDRAMMacro",
    "SiemensConceptRules",
    "SIEMENS_CONCEPT",
    "RefreshScheduler",
    "TraceChecker",
    "TraceReport",
    "Violation",
    "streaming_read_trace",
    "MultiModuleSystem",
    "compose_for_bandwidth",
]
