"""Memory clients: who issues requests, at what rate, with what pattern.

A client couples an address pattern with a request rate (in requests per
interface cycle) and a read/write mix.  The simulator polls each client
every cycle; a client with ``rate=0.25`` issues on average one request
every four cycles.  Token-bucket pacing keeps the long-run rate exact and
deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.patterns import AccessPattern


class _PacingPlan:
    """Tick trajectory of one token-bucket credit level.

    ``trajectory[i]`` is the credit after ``i + 1`` consecutive idle
    ticks (a float64 array, extended in place-sized chunks);
    ``want_ticks`` is the tick count after which the client wants to
    issue (None while the trajectory is still being extended).
    """

    __slots__ = ("trajectory", "want_ticks")

    def __init__(self) -> None:
        self.trajectory: np.ndarray = _EMPTY_TRAJECTORY
        self.want_ticks: int | None = None


_EMPTY_TRAJECTORY = np.empty(0)

#: Token-bucket credit ceiling: a client that has been idle for a long
#: time may bank at most this many requests worth of credit, bounding
#: the burst it can emit when it resumes.  The live invariant checker
#: (:mod:`repro.verify.invariants`) pins ``0 <= credit <= CREDIT_CAP``
#: on every stepped cycle.
CREDIT_CAP = 4.0


class ClientKind(enum.Enum):
    """Coarse client categories used in reports."""

    STREAM = "stream"  # display refresh, disk channel
    BLOCK = "block"  # video macroblock engine
    RANDOM = "random"  # CPU, lookup tables
    CONTROL = "control"  # low-rate housekeeping


@dataclass
class MemoryClient:
    """One memory client.

    Attributes:
        name: Identifier in statistics.
        pattern: Address pattern generator.
        rate: Requests per interface cycle (0, 1].
        read_fraction: Probability a request is a read.
        kind: Category tag.
        priority: Arbitration priority (lower = more urgent) for priority
            arbiters.
        seed: RNG seed for the read/write draw.
        words_per_request: Words transferred per request (request size in
            interface words).
    """

    name: str
    pattern: AccessPattern
    rate: float
    read_fraction: float = 1.0
    kind: ClientKind = ClientKind.STREAM
    priority: int = 0
    seed: int = 0
    words_per_request: int = 1

    _credit: float = field(default=0.0, init=False)
    _addr_iter: object = field(default=None, init=False, repr=False)
    _rng: object = field(default=None, init=False, repr=False)
    _pacing_plans: dict = field(default_factory=dict, init=False, repr=False)
    issued: int = field(default=0, init=False)

    _PACING_CACHE_LIMIT = 1024

    def __post_init__(self) -> None:
        if not 0 < self.rate <= 1:
            raise ConfigurationError(
                f"client {self.name}: rate must be in (0, 1], got {self.rate}"
            )
        if not 0 <= self.read_fraction <= 1:
            raise ConfigurationError(
                f"client {self.name}: read fraction must be in [0, 1]"
            )
        if self.words_per_request < 1:
            raise ConfigurationError(
                f"client {self.name}: words_per_request must be >= 1"
            )
        self._addr_iter = self.pattern.addresses()
        self._rng = np.random.default_rng(self.seed)

    def wants_to_issue(self, cycle: int) -> bool:
        """Token-bucket check: does the client issue this cycle?

        Pacing contract (pinned by ``tests/test_sim_fastforward.py``):
        the simulator polls this every cycle the client is *not*
        back-pressured and calls :meth:`tick` when the answer is no.
        While a request of this client is held back by a full FIFO, the
        simulator neither polls nor ticks, so credit accrual freezes —
        the held request already consumed its credit, and a stalled
        client must not bank extra credit it would burst out once the
        back-pressure clears.  The fast-forward path relies on exactly
        these semantics.
        """
        del cycle  # pacing is credit-based, not cycle-pattern-based
        return self._credit + self.rate >= 1.0

    def next_request(self) -> tuple[int, bool]:
        """Consume a credit and produce ``(word_address, is_read)``.

        Call only when :meth:`wants_to_issue` returned True this cycle.
        """
        self._credit += self.rate - 1.0
        self.issued += 1
        address = next(self._addr_iter)
        if self.read_fraction >= 1.0:
            is_read = True
        elif self.read_fraction <= 0.0:
            is_read = False
        else:
            is_read = bool(self._rng.random() < self.read_fraction)
        return address, is_read

    @property
    def credit(self) -> float:
        """Current token-bucket credit (read-only observability hook)."""
        return self._credit

    def tick(self) -> None:
        """Accrue pacing credit for a cycle in which nothing was issued."""
        self._credit = min(self._credit + self.rate, CREDIT_CAP)

    def tick_many(self, cycles: int) -> None:
        """Accrue credit for ``cycles`` consecutive idle cycles at once.

        Bit-identical to calling :meth:`tick` ``cycles`` times — the
        accrual is iterated (not closed-form) so the floating-point
        rounding sequence matches the per-cycle loop exactly, which is
        what lets the fast-forward simulator reproduce the naive loop's
        issue cycles to the cycle.  Token-bucket states recur after
        every issue, so the tick trajectory for each starting credit is
        memoized and steady-state batches cost O(1).
        """
        if cycles < 0:
            raise ConfigurationError(f"cycles must be >= 0, got {cycles}")
        if cycles == 0:
            return
        plan = self._pacing_plans.get(self._credit)
        if plan is not None and len(plan.trajectory) >= cycles:
            self._credit = plan.trajectory[cycles - 1]
            return
        credit = self._credit
        rate = self.rate
        for _ in range(cycles):
            credit = min(credit + rate, CREDIT_CAP)
        self._credit = credit

    def cycles_until_wants(self, limit: int) -> int:
        """Idle cycles until :meth:`wants_to_issue` turns true.

        Returns the number of :meth:`tick` calls needed before the
        token bucket reaches issue threshold, capped at ``limit`` (0
        means the client wants to issue on the very next poll).  Pure
        lookahead: performs (or replays memoized results of) the same
        float operations :meth:`tick` would, without mutating state.
        """
        if limit < 0:
            raise ConfigurationError(f"limit must be >= 0, got {limit}")
        plan = self._pacing_plan(limit)
        if plan.want_ticks is not None and plan.want_ticks <= limit:
            return plan.want_ticks
        return min(len(plan.trajectory), limit)

    def _pacing_plan(self, limit: int) -> "_PacingPlan":
        """Memoized tick trajectory from the current credit level.

        The trajectory is extended with ``np.add.accumulate``, whose
        loop-carried sequential double adds round exactly like the
        per-cycle ``tick`` loop (the credit stays below the 4.0 cap in
        this region, so the cap never engages), keeping the fast path
        bit-identical while moving the float work out of Python.
        """
        plans = self._pacing_plans
        plan = plans.get(self._credit)
        if plan is None:
            if len(plans) >= self._PACING_CACHE_LIMIT:
                plans.clear()  # degenerate non-recurring credit stream
            plan = _PacingPlan()
            plans[self._credit] = plan
        if plan.want_ticks is None and len(plan.trajectory) < limit:
            trajectory = plan.trajectory
            have = len(trajectory)
            credit = trajectory[-1] if have else self._credit
            rate = self.rate
            if credit + rate >= 1.0:
                plan.want_ticks = have
                return plan
            guess = int((1.0 - credit) / rate) + 2
            room = limit - have + 1
            n = guess if guess <= room else room
            buf = np.empty(n + 1)
            buf[0] = credit
            buf[1:] = rate
            np.add.accumulate(buf, out=buf)
            wants = np.nonzero(buf + rate >= 1.0)[0]
            if wants.size:
                first = int(wants[0])
                plan.trajectory = np.concatenate(
                    (trajectory, buf[1 : first + 1])
                )
                plan.want_ticks = have + first
            else:
                plan.trajectory = np.concatenate((trajectory, buf[1:]))
        return plan

    @property
    def demand_bits_per_cycle(self) -> float:
        """Average payload demand, for offered-load accounting."""
        return self.rate * self.words_per_request
