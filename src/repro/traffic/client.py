"""Memory clients: who issues requests, at what rate, with what pattern.

A client couples an address pattern with a request rate (in requests per
interface cycle) and a read/write mix.  The simulator polls each client
every cycle; a client with ``rate=0.25`` issues on average one request
every four cycles.  Token-bucket pacing keeps the long-run rate exact and
deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.patterns import AccessPattern


class ClientKind(enum.Enum):
    """Coarse client categories used in reports."""

    STREAM = "stream"  # display refresh, disk channel
    BLOCK = "block"  # video macroblock engine
    RANDOM = "random"  # CPU, lookup tables
    CONTROL = "control"  # low-rate housekeeping


@dataclass
class MemoryClient:
    """One memory client.

    Attributes:
        name: Identifier in statistics.
        pattern: Address pattern generator.
        rate: Requests per interface cycle (0, 1].
        read_fraction: Probability a request is a read.
        kind: Category tag.
        priority: Arbitration priority (lower = more urgent) for priority
            arbiters.
        seed: RNG seed for the read/write draw.
        words_per_request: Words transferred per request (request size in
            interface words).
    """

    name: str
    pattern: AccessPattern
    rate: float
    read_fraction: float = 1.0
    kind: ClientKind = ClientKind.STREAM
    priority: int = 0
    seed: int = 0
    words_per_request: int = 1

    _credit: float = field(default=0.0, init=False)
    _addr_iter: object = field(default=None, init=False, repr=False)
    _rng: object = field(default=None, init=False, repr=False)
    issued: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0 < self.rate <= 1:
            raise ConfigurationError(
                f"client {self.name}: rate must be in (0, 1], got {self.rate}"
            )
        if not 0 <= self.read_fraction <= 1:
            raise ConfigurationError(
                f"client {self.name}: read fraction must be in [0, 1]"
            )
        if self.words_per_request < 1:
            raise ConfigurationError(
                f"client {self.name}: words_per_request must be >= 1"
            )
        self._addr_iter = self.pattern.addresses()
        self._rng = np.random.default_rng(self.seed)

    def wants_to_issue(self, cycle: int) -> bool:
        """Token-bucket check: does the client issue this cycle?"""
        del cycle  # pacing is credit-based, not cycle-pattern-based
        return self._credit + self.rate >= 1.0

    def next_request(self) -> tuple[int, bool]:
        """Consume a credit and produce ``(word_address, is_read)``.

        Call only when :meth:`wants_to_issue` returned True this cycle.
        """
        self._credit += self.rate - 1.0
        self.issued += 1
        address = next(self._addr_iter)
        if self.read_fraction >= 1.0:
            is_read = True
        elif self.read_fraction <= 0.0:
            is_read = False
        else:
            is_read = bool(self._rng.random() < self.read_fraction)
        return address, is_read

    def tick(self) -> None:
        """Accrue pacing credit for a cycle in which nothing was issued."""
        self._credit = min(self._credit + self.rate, 4.0)

    @property
    def demand_bits_per_cycle(self) -> float:
        """Average payload demand, for offered-load accounting."""
        return self.rate * self.words_per_request
