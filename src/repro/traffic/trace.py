"""Trace containers: recorded request streams.

A :class:`Trace` is an ordered list of timestamped requests, usable both
as simulator input (replay) and output (record of what was served, for
post-hoc analysis).  Traces support basic locality analytics — unique
pages touched, page-transition counts — which the design-space notes in
Section 3 ("optimizing the mapping of the data into memory") rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TraceEntry:
    """One recorded request.

    Attributes:
        cycle: Issue cycle.
        client: Client name.
        address: Word address.
        is_read: Read (True) or write (False).
    """

    cycle: int
    client: str
    address: int
    is_read: bool

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ConfigurationError(f"cycle must be >= 0, got {self.cycle}")
        if self.address < 0:
            raise ConfigurationError(
                f"address must be >= 0, got {self.address}"
            )


@dataclass
class Trace:
    """An ordered request trace."""

    entries: list[TraceEntry] = field(default_factory=list)

    def append(self, entry: TraceEntry) -> None:
        if self.entries and entry.cycle < self.entries[-1].cycle:
            raise ConfigurationError(
                f"trace entries must be time-ordered: {entry.cycle} after "
                f"{self.entries[-1].cycle}"
            )
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def read_fraction(self) -> float:
        """Share of reads in the trace."""
        if not self.entries:
            return 0.0
        return sum(1 for e in self.entries if e.is_read) / len(self.entries)

    def unique_pages(self, words_per_page: int) -> int:
        """Distinct pages touched."""
        if words_per_page <= 0:
            raise ConfigurationError("words_per_page must be positive")
        return len({e.address // words_per_page for e in self.entries})

    def page_transitions(self, words_per_page: int) -> int:
        """Consecutive-request page changes — a locality proxy.

        A mapping/organization that lowers this count will see fewer page
        misses on an open-page controller.
        """
        if words_per_page <= 0:
            raise ConfigurationError("words_per_page must be positive")
        transitions = 0
        last_page: int | None = None
        for entry in self.entries:
            page = entry.address // words_per_page
            if last_page is not None and page != last_page:
                transitions += 1
            last_page = page
        return transitions

    def clients(self) -> list[str]:
        """Distinct client names, in first-appearance order."""
        seen: list[str] = []
        for entry in self.entries:
            if entry.client not in seen:
                seen.append(entry.client)
        return seen
