"""Traffic generation: memory clients and their access patterns.

"In practice several memory clients have to read and write data which
introduces page misses and overhead.  Hence the sustainable bandwidth can
be much lower than the peak bandwidth." (Section 4.)  This package
provides the clients: deterministic and randomized address-pattern
generators, per-client request rates, and trace containers the simulator
consumes.
"""

from repro.traffic.patterns import (
    AccessPattern,
    SequentialPattern,
    StridedPattern,
    RandomPattern,
    BlockPattern,
    MotionCompensationPattern,
)
from repro.traffic.client import MemoryClient, ClientKind
from repro.traffic.trace import Trace, TraceEntry

__all__ = [
    "AccessPattern",
    "SequentialPattern",
    "StridedPattern",
    "RandomPattern",
    "BlockPattern",
    "MotionCompensationPattern",
    "MemoryClient",
    "ClientKind",
    "Trace",
    "TraceEntry",
]
