"""Address pattern generators.

Each pattern is an infinite iterator of word addresses within a client's
address window.  The repertoire covers the paper's application domains:

* sequential / strided — stream buffers, display refresh, disk channels;
* random — control structures, switching tables;
* 2D block — video macroblock traffic (a rectangle of pixels spans
  several rows of a raster-scan frame buffer, the canonical source of
  page misses);
* motion compensation — 2D blocks at pseudo-random displacements, the
  MPEG2 decoder's dominant read traffic.

Patterns are deterministic given their seed, so experiments reproduce
exactly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


class AccessPattern(abc.ABC):
    """Infinite word-address stream within ``[base, base + length)``."""

    @abc.abstractmethod
    def addresses(self):  # pragma: no cover - interface
        """Yield word addresses forever."""
        raise NotImplementedError

    @staticmethod
    def _check_window(base: int, length: int) -> None:
        if base < 0:
            raise ConfigurationError(f"base must be >= 0, got {base}")
        if length <= 0:
            raise ConfigurationError(f"length must be positive, got {length}")


@dataclass(frozen=True)
class SequentialPattern(AccessPattern):
    """Linear sweep, wrapping at the window end.

    Attributes:
        base: Window start (word address).
        length: Window length in words.
    """

    base: int
    length: int

    def __post_init__(self) -> None:
        self._check_window(self.base, self.length)

    def addresses(self):
        offset = 0
        while True:
            yield self.base + offset
            offset = (offset + 1) % self.length


@dataclass(frozen=True)
class StridedPattern(AccessPattern):
    """Constant-stride sweep (column-of-matrix, interlaced field reads).

    Attributes:
        base: Window start.
        length: Window length in words.
        stride: Address increment per access.
    """

    base: int
    length: int
    stride: int

    def __post_init__(self) -> None:
        self._check_window(self.base, self.length)
        if self.stride == 0:
            raise ConfigurationError("stride must be non-zero")

    def addresses(self):
        offset = 0
        while True:
            yield self.base + offset
            offset = (offset + self.stride) % self.length


@dataclass(frozen=True)
class RandomPattern(AccessPattern):
    """Uniformly random addresses in the window (worst-case locality).

    Attributes:
        base: Window start.
        length: Window length in words.
        seed: RNG seed for reproducibility.
    """

    base: int
    length: int
    seed: int = 0

    def __post_init__(self) -> None:
        self._check_window(self.base, self.length)

    def addresses(self):
        rng = np.random.default_rng(self.seed)
        while True:
            # Draw in batches for speed; yield one at a time.
            batch = rng.integers(0, self.length, size=1024)
            for offset in batch:
                yield self.base + int(offset)


@dataclass(frozen=True)
class BlockPattern(AccessPattern):
    """Raster-order sweep of 2D blocks over a 2D surface.

    Models frame-buffer traffic: the surface is ``width x height`` words
    in raster order; accesses visit ``block_w x block_h`` tiles
    left-to-right, top-to-bottom, row by row within each tile.  A tile
    touches ``block_h`` distinct raster lines, i.e. (for typical page
    sizes) several DRAM pages — the structural source of page misses in
    video traffic.

    Attributes:
        base: Word address of the surface origin.
        width: Surface width in words.
        height: Surface height in lines.
        block_w: Tile width in words.
        block_h: Tile height in lines.
    """

    base: int
    width: int
    height: int
    block_w: int
    block_h: int

    def __post_init__(self) -> None:
        self._check_window(self.base, self.width * self.height)
        if not 0 < self.block_w <= self.width:
            raise ConfigurationError(
                f"block width {self.block_w} outside (0, {self.width}]"
            )
        if not 0 < self.block_h <= self.height:
            raise ConfigurationError(
                f"block height {self.block_h} outside (0, {self.height}]"
            )

    def addresses(self):
        while True:
            for tile_y in range(0, self.height - self.block_h + 1, self.block_h):
                for tile_x in range(0, self.width - self.block_w + 1, self.block_w):
                    for line in range(self.block_h):
                        row_start = (tile_y + line) * self.width + tile_x
                        for dx in range(self.block_w):
                            yield self.base + row_start + dx


@dataclass(frozen=True)
class MotionCompensationPattern(AccessPattern):
    """Motion-compensated block fetches from a reference frame.

    For each macroblock position, fetch a ``block_w x block_h`` region at
    a bounded random displacement — the read pattern of an MPEG2 motion
    compensation unit against its reference frame store.  Displacements
    break page locality in both dimensions.

    Attributes:
        base: Word address of the reference-frame origin.
        width: Frame width in words.
        height: Frame height in lines.
        block_w: Prediction block width in words.
        block_h: Prediction block height in lines.
        max_displacement: Maximum |motion vector| component in words/lines.
        seed: RNG seed.
    """

    base: int
    width: int
    height: int
    block_w: int = 16
    block_h: int = 16
    max_displacement: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        self._check_window(self.base, self.width * self.height)
        if self.block_w > self.width or self.block_h > self.height:
            raise ConfigurationError("block exceeds frame")
        if self.max_displacement < 0:
            raise ConfigurationError("displacement must be >= 0")

    def addresses(self):
        rng = np.random.default_rng(self.seed)
        while True:
            for tile_y in range(0, self.height - self.block_h + 1, self.block_h):
                for tile_x in range(0, self.width - self.block_w + 1, self.block_w):
                    dx = int(rng.integers(-self.max_displacement, self.max_displacement + 1))
                    dy = int(rng.integers(-self.max_displacement, self.max_displacement + 1))
                    x = min(max(tile_x + dx, 0), self.width - self.block_w)
                    y = min(max(tile_y + dy, 0), self.height - self.block_h)
                    for line in range(self.block_h):
                        row_start = (y + line) * self.width + x
                        for off in range(self.block_w):
                            yield self.base + row_start + off
