"""Units and conversion helpers shared across the library.

The paper counts memory sizes in *binary* megabits: a PAL 4:2:0 frame of
720x576 pixels at 12 bits/pixel is quoted as "4.75 Mbit", which equals
720*576*12 / 2**20 = 4.746.  All ``Mbit``/``Kbit`` helpers in this module
therefore use powers of two, while rate and frequency helpers (``MHz``,
``gbyte_per_s``) use decimal SI prefixes, matching datasheet conventions.

Keeping every conversion in one place avoids the classic off-by-1.048576
errors that plague memory-system arithmetic.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Binary size units (the paper's "Mbit" convention)
# ---------------------------------------------------------------------------

#: Bits in one binary kilobit.
KBIT = 1 << 10

#: Bits in one binary megabit (the paper's "Mbit").
MBIT = 1 << 20

#: Bits in one binary gigabit.
GBIT = 1 << 30

#: Bits in one byte.
BYTE = 8

#: Bits in one binary kilobyte / megabyte / gigabyte.
KBYTE = 8 * KBIT
MBYTE = 8 * MBIT
GBYTE = 8 * GBIT

# ---------------------------------------------------------------------------
# Decimal (SI) units for rates, frequencies, times
# ---------------------------------------------------------------------------

#: Hertz multipliers.
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

#: Seconds multipliers.
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12

#: Farad multipliers.
PF = 1e-12
FF = 1e-15

#: Watt multipliers.
MW = 1e-3
UW = 1e-6

#: Joule multipliers.
NJ = 1e-9
PJ = 1e-12


def mbit(bits: float) -> float:
    """Convert a bit count to binary megabits."""
    return bits / MBIT


def kbit(bits: float) -> float:
    """Convert a bit count to binary kilobits."""
    return bits / KBIT


def bits_from_mbit(megabits: float) -> int:
    """Convert binary megabits to an integer bit count."""
    return int(round(megabits * MBIT))


def mbyte(bits: float) -> float:
    """Convert a bit count to binary megabytes."""
    return bits / MBYTE


def gbit_per_s(bits_per_second: float) -> float:
    """Convert a bit rate to decimal gigabits per second."""
    return bits_per_second / 1e9


def gbyte_per_s(bits_per_second: float) -> float:
    """Convert a bit rate to decimal gigabytes per second."""
    return bits_per_second / 8e9


def mbit_per_s(bits_per_second: float) -> float:
    """Convert a bit rate to decimal megabits per second."""
    return bits_per_second / 1e6


def ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds / NS


def mhz(hertz: float) -> float:
    """Convert hertz to megahertz."""
    return hertz / MHZ


def fill_frequency(bandwidth_bits_per_s: float, size_bits: float) -> float:
    """Fill frequency of a memory, per the paper's Section 1 definition.

    The fill frequency is the bandwidth divided by the memory size: the
    number of times per second the memory can be completely rewritten.  The
    paper expresses it as "bandwidth in Mbit/s divided by the memory size in
    Mbit"; since both numerator and denominator carry the same unit prefix,
    the ratio below is prefix-free.

    Args:
        bandwidth_bits_per_s: Sustained or peak bandwidth in bits/second.
        size_bits: Memory capacity in bits.

    Returns:
        Complete fills per second (Hz).

    Raises:
        ValueError: If ``size_bits`` is not positive.
    """
    if size_bits <= 0:
        raise ValueError(f"memory size must be positive, got {size_bits}")
    return bandwidth_bits_per_s / size_bits


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2 of a power of two.

    Raises:
        ValueError: If ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)
