"""Spare row/column repair allocation.

"As DRAMs include redundancy, the order of testing is (1) pre-fuse
testing, (2) fuse blowing, (3) post-fuse testing." (Section 6.)  Between
steps (1) and (2) sits the repair-allocation problem: given the failing
bitmap and R spare rows / C spare columns, choose which lines to replace
so every failing cell is covered.  The problem is NP-complete in general;
production allocators use the classic two-phase approach implemented
here:

1. **must-repair**: a row with more than C failing cells can only be
   fixed by a spare row (no column budget could cover it), and vice
   versa — these assignments are forced;
2. **greedy cover** on the remainder (pick the line covering the most
   uncovered faults), with a small exhaustive search fallback when the
   remaining problem is tiny, which makes the allocator exact for the
   fault counts redundancy is actually provisioned for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import RepairError


@dataclass(frozen=True)
class RepairPlan:
    """Outcome of spare allocation.

    Attributes:
        spare_rows_used: Row indices replaced by spare rows.
        spare_cols_used: Column indices replaced by spare columns.
        repaired: Whether every failing cell is covered.
        uncovered: Failing cells not covered (empty when repaired).
    """

    spare_rows_used: frozenset
    spare_cols_used: frozenset
    repaired: bool
    uncovered: frozenset

    @property
    def spares_used(self) -> int:
        return len(self.spare_rows_used) + len(self.spare_cols_used)

    def covers(self, cell: tuple) -> bool:
        row, col = cell
        return row in self.spare_rows_used or col in self.spare_cols_used


def allocate_spares(
    failing_cells: set,
    spare_rows: int,
    spare_cols: int,
    exhaustive_limit: int = 12,
) -> RepairPlan:
    """Allocate spare rows/columns to cover all failing cells.

    Args:
        failing_cells: Set of (row, col) failing cells.
        spare_rows: Available spare rows.
        spare_cols: Available spare columns.
        exhaustive_limit: If after must-repair at most this many distinct
            lines remain, solve exactly by enumeration.

    Returns:
        A :class:`RepairPlan`; ``repaired`` is False when the fault
        pattern exceeds the spare budget.

    Raises:
        RepairError: On negative spare budgets.
    """
    if spare_rows < 0 or spare_cols < 0:
        raise RepairError("spare budgets must be >= 0")
    remaining = set(failing_cells)
    used_rows: set = set()
    used_cols: set = set()

    # Phase 1: must-repair (iterate, as each forced repair can expose
    # new forced repairs through the shrinking budgets).
    changed = True
    while changed and remaining:
        changed = False
        rows_left = spare_rows - len(used_rows)
        cols_left = spare_cols - len(used_cols)
        by_row: dict = {}
        by_col: dict = {}
        for r, c in remaining:
            by_row.setdefault(r, set()).add((r, c))
            by_col.setdefault(c, set()).add((r, c))
        for row, cells in list(by_row.items()):
            if len(cells) > cols_left and rows_left > 0:
                used_rows.add(row)
                remaining -= cells
                rows_left -= 1
                changed = True
        by_col = {}
        for r, c in remaining:
            by_col.setdefault(c, set()).add((r, c))
        for col, cells in list(by_col.items()):
            if len(cells) > rows_left and cols_left > 0:
                used_cols.add(col)
                remaining -= cells
                cols_left -= 1
                changed = True

    rows_left = spare_rows - len(used_rows)
    cols_left = spare_cols - len(used_cols)

    if remaining:
        solution = _solve_remainder(
            remaining, rows_left, cols_left, exhaustive_limit
        )
        if solution is not None:
            extra_rows, extra_cols = solution
            used_rows |= extra_rows
            used_cols |= extra_cols
            remaining = {
                cell
                for cell in remaining
                if cell[0] not in extra_rows and cell[1] not in extra_cols
            }

    return RepairPlan(
        spare_rows_used=frozenset(used_rows),
        spare_cols_used=frozenset(used_cols),
        repaired=not remaining,
        uncovered=frozenset(remaining),
    )


def _solve_remainder(
    cells: set, rows_left: int, cols_left: int, exhaustive_limit: int
):
    """Cover ``cells`` with at most (rows_left, cols_left) lines.

    Returns (rows, cols) or None if infeasible.
    """
    rows = sorted({r for r, _ in cells})
    cols = sorted({c for _, c in cells})
    if len(rows) + len(cols) <= exhaustive_limit:
        exact = _exhaustive_cover(cells, rows, cols, rows_left, cols_left)
        if exact is not None:
            return exact
        return None
    return _greedy_cover(cells, rows_left, cols_left)


def _exhaustive_cover(cells, rows, cols, rows_left, cols_left):
    """Exact minimum line cover by enumeration over row subsets.

    Choosing which faulty rows get spare rows determines the columns
    forced to cover the rest, so enumerating row subsets is complete.
    """
    best = None
    for k in range(min(rows_left, len(rows)) + 1):
        for row_subset in itertools.combinations(rows, k):
            row_set = set(row_subset)
            needed_cols = {c for r, c in cells if r not in row_set}
            if len(needed_cols) <= cols_left:
                candidate = (row_set, needed_cols)
                size = len(row_set) + len(needed_cols)
                if best is None or size < best[0]:
                    best = (size, candidate)
    return best[1] if best else None


def _greedy_cover(cells, rows_left, cols_left):
    """Greedy set cover: repeatedly pick the line covering most faults."""
    remaining = set(cells)
    used_rows: set = set()
    used_cols: set = set()
    while remaining:
        by_row: dict = {}
        by_col: dict = {}
        for r, c in remaining:
            by_row.setdefault(r, set()).add((r, c))
            by_col.setdefault(c, set()).add((r, c))
        best_row = max(by_row.items(), key=lambda kv: len(kv[1]), default=None)
        best_col = max(by_col.items(), key=lambda kv: len(kv[1]), default=None)
        row_gain = len(best_row[1]) if best_row and len(used_rows) < rows_left else -1
        col_gain = len(best_col[1]) if best_col and len(used_cols) < cols_left else -1
        if row_gain <= 0 and col_gain <= 0:
            return None
        if row_gain >= col_gain:
            used_rows.add(best_row[0])
            remaining -= best_row[1]
        else:
            used_cols.add(best_col[0])
            remaining -= best_col[1]
    return used_rows, used_cols
