"""March test algorithms.

A march test is a sequence of march elements; each element walks all
cells in ascending or descending address order applying a fixed sequence
of read/write operations.  Complexity is quoted in operations per cell:
MATS+ is 5N, March C- is 10N, March B is 17N.  "As DRAM test programs
include a lot of waiting, DRAM test times are quite high" — the retention
component is modeled by :func:`retention_test_time_s` and by pauses
between elements.

Tests execute against a :class:`~repro.dft.faults.FaultyArray`, so
detection is measured, not asserted: March C- detects all unlinked
stuck-at, transition and inversion coupling faults; MATS+ misses
transition and coupling faults — the coverage/test-time trade Section 6
alludes to ("the test concept should take this cost-reduction potential
into account").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.dft.faults import FaultyArray


class Direction(enum.Enum):
    """Address order of a march element."""

    UP = "up"
    DOWN = "down"
    EITHER = "either"


@dataclass(frozen=True)
class MarchElement:
    """One march element, e.g. up(r0, w1).

    Attributes:
        direction: Address order.
        operations: Sequence of operations from {"r0","r1","w0","w1"}.
    """

    direction: Direction
    operations: tuple

    def __post_init__(self) -> None:
        if not self.operations:
            raise ConfigurationError("march element needs operations")
        for op in self.operations:
            if op not in ("r0", "r1", "w0", "w1"):
                raise ConfigurationError(f"unknown march operation {op!r}")

    @property
    def ops_per_cell(self) -> int:
        return len(self.operations)

    def __str__(self) -> str:
        arrow = {"up": "⇑", "down": "⇓", "either": "⇕"}[self.direction.value]
        return f"{arrow}({','.join(self.operations)})"


@dataclass(frozen=True)
class MarchTest:
    """A complete march algorithm.

    Attributes:
        name: Algorithm name.
        elements: March elements in order.
        pause_after_element: Index of the element after which a retention
            pause is inserted, or None (used by the retention variant).
    """

    name: str
    elements: tuple
    pause_after_element: int | None = None

    def __post_init__(self) -> None:
        if not self.elements:
            raise ConfigurationError("march test needs elements")
        if self.pause_after_element is not None and not (
            0 <= self.pause_after_element < len(self.elements)
        ):
            raise ConfigurationError("pause index out of range")

    @property
    def ops_per_cell(self) -> int:
        """The 'kN' complexity figure."""
        return sum(element.ops_per_cell for element in self.elements)

    def operation_count(self, cells: int) -> int:
        """Total tester operations for ``cells`` memory cells."""
        if cells < 1:
            raise ConfigurationError("cell count must be positive")
        return self.ops_per_cell * cells

    def run(
        self,
        array: FaultyArray,
        pause_s: float = 0.0,
    ) -> "MarchResult":
        """Execute the test against a faulty array.

        Returns a :class:`MarchResult` with the failing cells observed
        (cells where any read returned the unexpected value).
        """
        failing: set = set()
        operations = 0
        for index, element in enumerate(self.elements):
            coords = self._addresses(array, element.direction)
            for row, col in coords:
                for op in element.operations:
                    operations += 1
                    if op == "w0":
                        array.write(row, col, False)
                    elif op == "w1":
                        array.write(row, col, True)
                    elif op == "r0":
                        if array.read(row, col) is not False:
                            failing.add((row, col))
                    elif op == "r1":
                        if array.read(row, col) is not True:
                            failing.add((row, col))
            if self.pause_after_element == index and pause_s > 0:
                array.pause(pause_s)
        return MarchResult(
            test=self, failing_cells=failing, operations=operations
        )

    @staticmethod
    def _addresses(array: FaultyArray, direction: Direction):
        rows = range(array.rows)
        if direction is Direction.DOWN:
            rows = range(array.rows - 1, -1, -1)
        for row in rows:
            cols = range(array.cols)
            if direction is Direction.DOWN:
                cols = range(array.cols - 1, -1, -1)
            for col in cols:
                yield row, col


@dataclass(frozen=True)
class MarchResult:
    """Outcome of one march run.

    Attributes:
        test: The algorithm that ran.
        failing_cells: Cells observed to fail.
        operations: Tester operations executed.
    """

    test: MarchTest
    failing_cells: set
    operations: int

    def detected(self, ground_truth: set) -> float:
        """Fault coverage: fraction of truly faulty cells flagged."""
        if not ground_truth:
            return 1.0
        return len(self.failing_cells & ground_truth) / len(ground_truth)

    @property
    def passed(self) -> bool:
        return not self.failing_cells


_UP = Direction.UP
_DOWN = Direction.DOWN
_ANY = Direction.EITHER

#: MATS+: 5N.  Detects stuck-at faults only.
MATS_PLUS = MarchTest(
    name="MATS+",
    elements=(
        MarchElement(_ANY, ("w0",)),
        MarchElement(_UP, ("r0", "w1")),
        MarchElement(_DOWN, ("r1", "w0")),
    ),
)

#: March C-: 10N.  Detects stuck-at, transition, and coupling faults.
MARCH_C_MINUS = MarchTest(
    name="March C-",
    elements=(
        MarchElement(_ANY, ("w0",)),
        MarchElement(_UP, ("r0", "w1")),
        MarchElement(_UP, ("r1", "w0")),
        MarchElement(_DOWN, ("r0", "w1")),
        MarchElement(_DOWN, ("r1", "w0")),
        MarchElement(_ANY, ("r0",)),
    ),
)

#: March B: 17N.  Adds linked-fault coverage.
MARCH_B = MarchTest(
    name="March B",
    elements=(
        MarchElement(_ANY, ("w0",)),
        MarchElement(_UP, ("r0", "w1", "r1", "w0", "r0", "w1")),
        MarchElement(_UP, ("r1", "w0", "w1")),
        MarchElement(_DOWN, ("r1", "w0", "w1", "w0")),
        MarchElement(_DOWN, ("r0", "w1", "w0")),
    ),
)

#: March C- with a retention pause: write background, wait, read back.
MARCH_C_RETENTION = MarchTest(
    name="March C- + retention",
    elements=MARCH_C_MINUS.elements,
    pause_after_element=1,  # pause while the array holds the '1' background
)


def retention_test_time_s(
    n_pauses: int = 2, pause_s: float = 0.2
) -> float:
    """Pure waiting time of the retention portion of a test program.

    Two pauses (backgrounds of all-0 and all-1) of 100-500 ms each are
    typical; this waiting dominates DRAM test time and is independent of
    interface width — the reason parallelism alone cannot reduce DRAM
    test cost to logic-like levels.
    """
    if n_pauses < 0:
        raise ConfigurationError("pause count must be >= 0")
    if pause_s < 0:
        raise ConfigurationError("pause must be >= 0")
    return n_pauses * pause_s
