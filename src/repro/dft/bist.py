"""BIST controller model.

"The implication on edrams is that a high degree of parallelism is
required in order to reduce test costs.  This necessitates on-chip
manipulation and compression of test data in order to reduce the
off-chip interface width.  For instance, Siemens offers a synthesizable
test controller supporting algorithmic test pattern generation (ATPG)
and expected-value comparison (partial BIST)." (Section 6.)

The model captures the trade: the BIST engine costs logic gates (area)
but applies march operations at the *internal* interface width and
memory clock, instead of squeezing test data through the narrow external
interface of a slow logic tester.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import ceil_div
from repro.dft.march import MarchTest


@dataclass(frozen=True)
class BISTController:
    """A synthesizable memory BIST engine.

    Attributes:
        internal_width_bits: Data bits applied per BIST operation (the
            macro's internal interface width).
        clock_hz: BIST/memory clock.
        base_gates: Controller logic (address generators, comparators,
            sequencer) before per-bit costs.
        gates_per_data_bit: Comparator/mask gates per data bit.
        supports_retention: Whether the sequencer can insert pauses.
    """

    internal_width_bits: int = 256
    clock_hz: float = 143e6
    base_gates: float = 8_000.0
    gates_per_data_bit: float = 25.0
    supports_retention: bool = True

    def __post_init__(self) -> None:
        if self.internal_width_bits < 1:
            raise ConfigurationError("BIST width must be >= 1")
        if self.clock_hz <= 0:
            raise ConfigurationError("BIST clock must be positive")
        if self.base_gates < 0 or self.gates_per_data_bit < 0:
            raise ConfigurationError("gate costs must be >= 0")

    @property
    def gate_count(self) -> float:
        """Logic cost of the controller."""
        return self.base_gates + self.gates_per_data_bit * self.internal_width_bits

    def march_time_s(self, test: MarchTest, memory_bits: int) -> float:
        """Wall-clock time to apply a march test to ``memory_bits``.

        One BIST operation covers ``internal_width_bits`` cells, one
        operation per clock.
        """
        if memory_bits < 1:
            raise ConfigurationError("memory size must be positive")
        words = ceil_div(memory_bits, self.internal_width_bits)
        operations = test.ops_per_cell * words
        return operations / self.clock_hz

    def speedup_vs_external(
        self, external_width_bits: int, external_rate_hz: float
    ) -> float:
        """Test-application speedup over an external tester interface."""
        if external_width_bits < 1 or external_rate_hz <= 0:
            raise ConfigurationError("external interface must be positive")
        internal = self.internal_width_bits * self.clock_hz
        external = external_width_bits * external_rate_hz
        return internal / external
