"""Test time and tester economics.

"DRAM test times are quite high, and test costs are a significant
fraction of total cost" and "the test concept should thus support testing
the memory either from a logic tester or a memory tester" (Section 6).

Cost = (march time + retention waits) x tester rate, with march time set
by whichever interface applies the patterns: a memory tester driving the
external pins, a logic tester driving a narrow test port, or the on-chip
BIST.  Waiting time is width-independent, which caps what parallelism
can buy — the model exposes exactly that saturation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import ceil_div
from repro.dft.march import MarchTest, retention_test_time_s
from repro.dft.bist import BISTController


@dataclass(frozen=True)
class TesterSpec:
    """One class of production tester.

    Attributes:
        name: Tester class.
        cost_per_hour: Operating cost (depreciation + floor).
        interface_width_bits: Pins usable as memory data channels.
        rate_hz: Pattern rate per pin.
        parallel_sites: Dies tested simultaneously.
    """

    name: str
    cost_per_hour: float
    interface_width_bits: int
    rate_hz: float
    parallel_sites: int = 1

    #: Not a pytest test class despite the Test* name.
    __test__ = False

    def __post_init__(self) -> None:
        if self.cost_per_hour <= 0:
            raise ConfigurationError("tester cost must be positive")
        if self.interface_width_bits < 1:
            raise ConfigurationError("tester width must be >= 1")
        if self.rate_hz <= 0:
            raise ConfigurationError("tester rate must be positive")
        if self.parallel_sites < 1:
            raise ConfigurationError("sites must be >= 1")

    def cost_per_second(self) -> float:
        return self.cost_per_hour / 3600.0


#: A specialized memory tester: wide, fast, expensive, multi-site.
MEMORY_TESTER = TesterSpec(
    name="memory tester",
    cost_per_hour=280.0,
    interface_width_bits=64,
    rate_hz=100e6,
    parallel_sites=16,
)

#: A logic tester pressed into memory duty: narrow memory port, single site.
LOGIC_TESTER = TesterSpec(
    name="logic tester",
    cost_per_hour=400.0,
    interface_width_bits=16,
    rate_hz=50e6,
    parallel_sites=1,
)


@dataclass(frozen=True)
class TestCostModel:
    """Per-die memory test time and cost.

    Attributes:
        tester: The tester applying (or supervising) the test.
        bist: On-chip BIST engine, or None for external pattern
            application.
        retention_pauses: Retention waits in the program.
        pause_s: Duration of each retention wait.
    """

    tester: TesterSpec
    bist: BISTController | None = None
    retention_pauses: int = 2
    pause_s: float = 0.2

    #: Not a pytest test class despite the Test* name.
    __test__ = False

    def march_time_s(self, test: MarchTest, memory_bits: int) -> float:
        """Pattern-application time for one die."""
        if memory_bits < 1:
            raise ConfigurationError("memory size must be positive")
        if self.bist is not None:
            return self.bist.march_time_s(test, memory_bits)
        words = ceil_div(memory_bits, self.tester.interface_width_bits)
        return test.ops_per_cell * words / self.tester.rate_hz

    def total_time_s(self, test: MarchTest, memory_bits: int) -> float:
        """March time plus retention waiting."""
        return self.march_time_s(test, memory_bits) + retention_test_time_s(
            self.retention_pauses, self.pause_s
        )

    def cost_per_die(self, test: MarchTest, memory_bits: int) -> float:
        """Tester cost attributed to one die.

        Multi-site testing divides the tester seconds across sites;
        retention waits are shared across sites too (all sites wait
        together).
        """
        seconds = self.total_time_s(test, memory_bits)
        return (
            seconds
            * self.tester.cost_per_second()
            / self.tester.parallel_sites
        )

    def waiting_fraction(self, test: MarchTest, memory_bits: int) -> float:
        """Share of the test spent waiting (retention) rather than
        applying patterns — approaches 1 as parallelism grows, the
        saturation limit of the Section 6 argument."""
        total = self.total_time_s(test, memory_bits)
        if total == 0:
            return 0.0
        return retention_test_time_s(self.retention_pauses, self.pause_s) / total
