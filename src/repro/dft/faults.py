"""DRAM fault models and a fault-injectable memory array.

"The fault models of DRAMs explicitly tested for are much richer; they
include bit-line and word-line failures, cross-talk, retention time
failures etc." (Section 6.)

:class:`FaultyArray` is a behavioural (row x column) bit array into which
faults are injected; march tests from :mod:`repro.dft.march` read and
write it through the same interface a tester would, so detection is
*observed*, not assumed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    """Supported fault models."""

    STUCK_AT_0 = "SA0"
    STUCK_AT_1 = "SA1"
    TRANSITION = "TF"  # cell cannot make the 0->1 transition
    COUPLING_INV = "CFin"  # write to aggressor inverts victim
    WORD_LINE = "WL"  # whole row dead (reads 0)
    BIT_LINE = "BL"  # whole column dead (reads 0)
    RETENTION = "RET"  # cell leaks to 0 after a pause


@dataclass(frozen=True)
class Fault:
    """One injected fault.

    Attributes:
        kind: Fault model.
        row: Victim row.
        col: Victim column.
        aggressor: (row, col) of the coupling aggressor, for CFin.
    """

    kind: FaultKind
    row: int
    col: int
    aggressor: tuple | None = None

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise ConfigurationError("fault coordinates must be >= 0")
        if self.kind is FaultKind.COUPLING_INV and self.aggressor is None:
            raise ConfigurationError("coupling fault needs an aggressor")


@dataclass
class FaultyArray:
    """A (rows x cols) one-bit-per-cell array with injected faults.

    Reads and writes go through :meth:`read` / :meth:`write`;
    :meth:`pause` models a retention wait.  The ground-truth fault list
    is available to evaluate test coverage.
    """

    rows: int
    cols: int
    faults: list = field(default_factory=list)

    _data: np.ndarray = field(init=False, repr=False)
    _stuck0: np.ndarray = field(init=False, repr=False)
    _stuck1: np.ndarray = field(init=False, repr=False)
    _transition: np.ndarray = field(init=False, repr=False)
    _retention: np.ndarray = field(init=False, repr=False)
    _couplings: dict = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("array dimensions must be positive")
        self._data = np.zeros((self.rows, self.cols), dtype=bool)
        self._stuck0 = np.zeros((self.rows, self.cols), dtype=bool)
        self._stuck1 = np.zeros((self.rows, self.cols), dtype=bool)
        self._transition = np.zeros((self.rows, self.cols), dtype=bool)
        self._retention = np.zeros((self.rows, self.cols), dtype=bool)
        for fault in self.faults:
            self._apply_fault(fault)

    def _apply_fault(self, fault: Fault) -> None:
        if fault.row >= self.rows or fault.col >= self.cols:
            raise ConfigurationError(
                f"fault at ({fault.row}, {fault.col}) outside "
                f"{self.rows}x{self.cols} array"
            )
        if fault.kind is FaultKind.STUCK_AT_0:
            self._stuck0[fault.row, fault.col] = True
        elif fault.kind is FaultKind.STUCK_AT_1:
            self._stuck1[fault.row, fault.col] = True
        elif fault.kind is FaultKind.TRANSITION:
            self._transition[fault.row, fault.col] = True
        elif fault.kind is FaultKind.WORD_LINE:
            self._stuck0[fault.row, :] = True
        elif fault.kind is FaultKind.BIT_LINE:
            self._stuck0[:, fault.col] = True
        elif fault.kind is FaultKind.RETENTION:
            self._retention[fault.row, fault.col] = True
        elif fault.kind is FaultKind.COUPLING_INV:
            assert fault.aggressor is not None
            victims = self._couplings.setdefault(fault.aggressor, [])
            victim = (fault.row, fault.col)
            # Dedupe: the same coupling injected twice must not invert
            # the victim twice per aggressor write (which would cancel
            # and hide the fault from every test).
            if victim not in victims:
                victims.append(victim)

    def inject(self, fault: Fault) -> None:
        """Add a fault after construction."""
        self.faults.append(fault)
        self._apply_fault(fault)

    # -- tester-visible interface ------------------------------------------------

    def write(self, row: int, col: int, value: bool) -> None:
        self._check(row, col)
        if self._transition[row, col] and value and not self._data[row, col]:
            return  # 0->1 transition fails silently
        self._data[row, col] = value
        for victim in self._couplings.get((row, col), []):
            self._data[victim] = ~self._data[victim]

    def read(self, row: int, col: int) -> bool:
        self._check(row, col)
        if self._stuck0[row, col]:
            return False
        if self._stuck1[row, col]:
            return True
        return bool(self._data[row, col])

    def pause(self, seconds: float, retention_threshold_s: float = 0.1) -> None:
        """Model a retention wait: leaky cells decay to 0 if the pause
        *exceeds* their (degraded) retention.  A pause of exactly the
        threshold is the last surviving refresh interval, not a failure."""
        if seconds < 0:
            raise ConfigurationError("pause must be >= 0")
        if retention_threshold_s <= 0:
            raise ConfigurationError(
                "retention_threshold_s must be positive"
            )
        if seconds > retention_threshold_s:
            self._data[self._retention] = False

    def _check(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigurationError(
                f"access ({row}, {col}) outside {self.rows}x{self.cols}"
            )

    # -- ground truth --------------------------------------------------------

    def faulty_cells(self) -> set:
        """Ground-truth set of (row, col) cells belonging to any fault."""
        cells: set = set()
        for fault in self.faults:
            if fault.kind is FaultKind.WORD_LINE:
                cells.update((fault.row, c) for c in range(self.cols))
            elif fault.kind is FaultKind.BIT_LINE:
                cells.update((r, fault.col) for r in range(self.rows))
            else:
                cells.add((fault.row, fault.col))
        return cells


def inject_random_faults(
    rows: int,
    cols: int,
    n_cell_faults: int,
    n_line_faults: int = 0,
    seed: int = 0,
    include_retention: bool = True,
) -> FaultyArray:
    """Build an array with randomly placed faults (reproducible).

    Args:
        rows: Array rows.
        cols: Array columns.
        n_cell_faults: Single-cell faults (mix of SA0/SA1/TF/RET).
        n_line_faults: Whole word-line / bit-line failures.
        seed: RNG seed.
        include_retention: Include retention faults in the mix.
    """
    if n_cell_faults < 0 or n_line_faults < 0:
        raise ConfigurationError("fault counts must be >= 0")
    if n_cell_faults > rows * cols:
        # Without this guard the unique-placement loop below can never
        # terminate once every cell is already faulty.
        raise ConfigurationError(
            f"n_cell_faults ({n_cell_faults}) exceeds the "
            f"{rows}x{cols} array capacity ({rows * cols})"
        )
    n_wordline = (n_line_faults + 1) // 2
    n_bitline = n_line_faults // 2
    if n_wordline > rows or n_bitline > cols:
        raise ConfigurationError(
            f"n_line_faults ({n_line_faults}) needs {n_wordline} rows "
            f"and {n_bitline} cols but the array is {rows}x{cols}"
        )
    rng = np.random.default_rng(seed)
    kinds = [FaultKind.STUCK_AT_0, FaultKind.STUCK_AT_1, FaultKind.TRANSITION]
    if include_retention:
        kinds.append(FaultKind.RETENTION)
    array = FaultyArray(rows=rows, cols=cols)
    used: set = set()
    for _ in range(n_cell_faults):
        while True:
            r, c = int(rng.integers(rows)), int(rng.integers(cols))
            if (r, c) not in used:
                used.add((r, c))
                break
        kind = kinds[int(rng.integers(len(kinds)))]
        array.inject(Fault(kind=kind, row=r, col=c))
    used_rows: set = set()
    used_cols: set = set()
    for i in range(n_line_faults):
        # Dedupe line faults: the same dead row drawn twice would count
        # as two ground-truth faults while killing only one line.
        if i % 2 == 0:
            while True:
                r = int(rng.integers(rows))
                if r not in used_rows:
                    used_rows.add(r)
                    break
            array.inject(Fault(kind=FaultKind.WORD_LINE, row=r, col=0))
        else:
            while True:
                c = int(rng.integers(cols))
                if c not in used_cols:
                    used_cols.add(c)
                    break
            array.inject(Fault(kind=FaultKind.BIT_LINE, row=0, col=c))
    return array
