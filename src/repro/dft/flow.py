"""The pre-fuse / fuse / post-fuse production test flow.

"As DRAMs include redundancy, the order of testing is (1) pre-fuse
testing, (2) fuse blowing, (3) post-fuse testing.  There are thus two
wafer-level tests." (Section 6.)

:class:`TestFlow` runs the whole loop on simulated dies: inject defects,
pre-fuse march test, repair allocation against the spare budget, fuse
(apply the repair), post-fuse march test, and classify each die as good /
repaired / scrap.  Quality-target relaxation ("occasional soft problems
... are much more acceptable" for graphics than for program storage) is
modeled by optionally waiving retention-only failures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.dft.faults import FaultKind, FaultyArray, inject_random_faults
from repro.dft.march import MarchTest, MARCH_C_MINUS
from repro.dft.redundancy import RepairPlan, allocate_spares


@dataclass(frozen=True)
class FlowResult:
    """Aggregate outcome of a production lot.

    Attributes:
        dies: Dies processed.
        perfect: Dies with no pre-fuse failures.
        repaired: Dies fixed by redundancy.
        scrap: Unrepairable dies.
        waived: Dies shipped with waived retention-only failures (relaxed
            quality target).
        spares_used_total: Spare lines burned across the lot.
    """

    dies: int
    perfect: int
    repaired: int
    scrap: int
    waived: int
    spares_used_total: int

    @property
    def yield_pre_repair(self) -> float:
        return self.perfect / self.dies if self.dies else 0.0

    @property
    def yield_post_repair(self) -> float:
        good = self.perfect + self.repaired + self.waived
        return good / self.dies if self.dies else 0.0

    @property
    def repair_gain(self) -> float:
        """Post-repair / pre-repair yield ratio."""
        if self.yield_pre_repair == 0:
            return float("inf") if self.yield_post_repair > 0 else 1.0
        return self.yield_post_repair / self.yield_pre_repair


@dataclass(frozen=True)
class TestFlow:
    """Pre-fuse -> repair -> fuse -> post-fuse flow over a simulated lot.

    Attributes:
        rows: Array rows per die (model scale, not production scale).
        cols: Array columns per die.
        spare_rows: Spare rows per die.
        spare_cols: Spare columns per die.
        test: March algorithm used pre- and post-fuse.
        mean_faults_per_die: Poisson mean of injected cell faults.
        line_fault_rate: Probability a die carries a full line failure.
        waive_retention_only: Relaxed quality target: ship dies whose
            only failures are retention cells (graphics-grade parts).
        retention_pause_s: Pause used to expose retention faults.
    """

    rows: int = 64
    cols: int = 64
    spare_rows: int = 2
    spare_cols: int = 2
    test: MarchTest = MARCH_C_MINUS
    mean_faults_per_die: float = 1.2
    line_fault_rate: float = 0.05
    waive_retention_only: bool = False
    retention_pause_s: float = 0.2

    #: Not a pytest test class despite the Test* name.
    __test__ = False

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("array dimensions must be positive")
        if self.spare_rows < 0 or self.spare_cols < 0:
            raise ConfigurationError("spare budgets must be >= 0")
        if self.mean_faults_per_die < 0:
            raise ConfigurationError("fault mean must be >= 0")
        if not 0 <= self.line_fault_rate <= 1:
            raise ConfigurationError("line fault rate must be in [0, 1]")

    def _build_die(self, rng: np.random.Generator, seed: int) -> FaultyArray:
        n_faults = int(rng.poisson(self.mean_faults_per_die))
        n_lines = 1 if rng.random() < self.line_fault_rate else 0
        return inject_random_faults(
            rows=self.rows,
            cols=self.cols,
            n_cell_faults=n_faults,
            n_line_faults=n_lines,
            seed=seed,
        )

    def process_die(self, array: FaultyArray) -> tuple:
        """Run one die through the flow.

        Returns ``(category, plan)`` where category is one of
        ``"perfect"``, ``"repaired"``, ``"waived"``, ``"scrap"``.
        """
        # (1) Pre-fuse test: march with a retention pause appended.
        pre = self.test.run(array)
        array.pause(self.retention_pause_s)
        # Re-read the '0' background the test left to expose retention.
        retention_failures = {
            (fault.row, fault.col)
            for fault in array.faults
            if fault.kind is FaultKind.RETENTION
        }
        failing = set(pre.failing_cells)
        # Retention faults decay to 0; the final background is 0, so a
        # dedicated checkerboard pass is modeled by consulting the pause
        # outcome directly: write 1, pause, read.
        for row, col in retention_failures:
            array.write(row, col, True)
        array.pause(self.retention_pause_s)
        for row, col in retention_failures:
            if array.read(row, col) is not True:
                failing.add((row, col))
        if not failing:
            return "perfect", None
        # Relaxed quality target: waive retention-only fallout.
        if self.waive_retention_only and failing <= retention_failures:
            return "waived", None
        # (2) Repair allocation + fuse blowing.
        plan = allocate_spares(
            failing, self.spare_rows, self.spare_cols
        )
        if not plan.repaired:
            return "scrap", plan
        # (3) Post-fuse test: all failing cells must now be covered by
        # spares; verify the plan actually covers the observed failures.
        uncovered = {cell for cell in failing if not plan.covers(cell)}
        if uncovered:
            return "scrap", plan
        return "repaired", plan

    def run_lot(self, dies: int, seed: int = 0) -> FlowResult:
        """Process a lot of simulated dies."""
        if dies < 1:
            raise ConfigurationError("lot must contain dies")
        rng = np.random.default_rng(seed)
        perfect = repaired = scrap = waived = spares = 0
        for index in range(dies):
            array = self._build_die(rng, seed=seed * 100_003 + index)
            category, plan = self.process_die(array)
            if category == "perfect":
                perfect += 1
            elif category == "repaired":
                repaired += 1
                assert plan is not None
                spares += plan.spares_used
            elif category == "waived":
                waived += 1
            else:
                scrap += 1
        return FlowResult(
            dies=dies,
            perfect=perfect,
            repaired=repaired,
            scrap=scrap,
            waived=waived,
            spares_used_total=spares,
        )
