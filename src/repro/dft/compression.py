"""On-chip test-response compression (signature analysis).

Paper Section 6: embedded DRAM testing "necessitates on-chip
manipulation and compression of test data in order to reduce the
off-chip interface width".  The standard mechanism is a multiple-input
signature register (MISR): the wide internal read data folds into a
k-bit signature on-chip, and only the signature crosses the narrow
external interface.

The model quantifies the trade: off-chip data volume shrinks by the
compression ratio, at an aliasing risk of ~2^-k (a faulty response
mapping to the good signature), plus the loss of direct fail-bitmap
visibility — which the pre-fuse flow needs for repair allocation, so
production flows compress the *post-fuse* pass and keep bitmaps
pre-fuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import ceil_div
from repro.dft.march import MarchTest


@dataclass(frozen=True)
class SignatureCompressor:
    """A MISR-based response compactor.

    Attributes:
        signature_bits: MISR width (k).
        internal_width_bits: Data bits folded per cycle.
        readout_width_bits: External pins used to shift the signature
            out.
    """

    signature_bits: int = 32
    internal_width_bits: int = 256
    readout_width_bits: int = 4

    def __post_init__(self) -> None:
        if self.signature_bits < 4:
            raise ConfigurationError("signature must be >= 4 bits")
        if self.internal_width_bits < 1:
            raise ConfigurationError("internal width must be >= 1")
        if self.readout_width_bits < 1:
            raise ConfigurationError("readout width must be >= 1")

    def aliasing_probability(self) -> float:
        """Probability a faulty response aliases to the good signature."""
        return 2.0 ** (-self.signature_bits)

    def offchip_bits(self, test: MarchTest, memory_bits: int) -> int:
        """Bits crossing the chip boundary with compression: one
        signature per march element (each element's reads fold into the
        running MISR, read out at element boundaries)."""
        if memory_bits < 1:
            raise ConfigurationError("memory size must be positive")
        return len(test.elements) * self.signature_bits

    def offchip_bits_uncompressed(
        self, test: MarchTest, memory_bits: int
    ) -> int:
        """Bits crossing the boundary without compression: every read's
        expected-value comparison data."""
        reads_per_cell = sum(
            1
            for element in test.elements
            for op in element.operations
            if op.startswith("r")
        )
        return reads_per_cell * memory_bits

    def compression_ratio(self, test: MarchTest, memory_bits: int) -> float:
        """Uncompressed / compressed off-chip data volume."""
        compressed = self.offchip_bits(test, memory_bits)
        return self.offchip_bits_uncompressed(test, memory_bits) / compressed

    def readout_cycles(self, test: MarchTest) -> int:
        """Cycles to shift the signatures off-chip."""
        per_signature = ceil_div(
            self.signature_bits, self.readout_width_bits
        )
        return len(test.elements) * per_signature

    def preserves_fail_bitmap(self) -> bool:
        """Signatures destroy per-cell fail data — repair allocation
        (pre-fuse) cannot run from a compressed response."""
        return False
