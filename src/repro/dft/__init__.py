"""Design-for-test: the paper's Section 6 modeled end to end.

"Testing DRAMs is very different from testing logic": rich fault models
(bit-line/word-line failures, cross-talk, retention), long test times
dominated by waiting, redundancy forcing a pre-fuse / fuse / post-fuse
flow, and the economic conclusion that embedded DRAM needs on-chip
parallelism (BIST) to keep test cost sane.

* :mod:`repro.dft.faults` — fault models and a fault-injectable array,
* :mod:`repro.dft.march` — march test algorithms (MATS+, March C-,
  March B) plus retention testing, run against the faulty array,
* :mod:`repro.dft.redundancy` — spare row/column repair allocation
  (must-repair analysis + greedy cover),
* :mod:`repro.dft.bist` — BIST controller model (area vs. parallelism),
* :mod:`repro.dft.test_cost` — test time and tester-economics model,
* :mod:`repro.dft.flow` — the pre-fuse/fuse/post-fuse production flow.
"""

from repro.dft.faults import FaultKind, Fault, FaultyArray, inject_random_faults
from repro.dft.march import (
    MarchElement,
    MarchTest,
    MATS_PLUS,
    MARCH_C_MINUS,
    MARCH_B,
    retention_test_time_s,
)
from repro.dft.redundancy import RepairPlan, allocate_spares
from repro.dft.bist import BISTController
from repro.dft.test_cost import TesterSpec, TestCostModel, MEMORY_TESTER, LOGIC_TESTER
from repro.dft.flow import TestFlow, FlowResult
from repro.dft.compression import SignatureCompressor

__all__ = [
    "FaultKind",
    "Fault",
    "FaultyArray",
    "inject_random_faults",
    "MarchElement",
    "MarchTest",
    "MATS_PLUS",
    "MARCH_C_MINUS",
    "MARCH_B",
    "retention_test_time_s",
    "RepairPlan",
    "allocate_spares",
    "BISTController",
    "TesterSpec",
    "TestCostModel",
    "MEMORY_TESTER",
    "LOGIC_TESTER",
    "TestFlow",
    "FlowResult",
    "SignatureCompressor",
]
