"""Command-line interface to the trade-off framework.

Usage::

    python -m repro.cli power
    python -m repro.cli mpeg2 [--ntsc] [--reduced]
    python -m repro.cli explore --capacity-mbit 16 --bandwidth-gbs 0.6
    python -m repro.cli feasibility [--die-budget-mm2 203.7]
    python -m repro.cli testcost [--mbit 64]
    python -m repro.cli experiments
    python -m repro.cli verify fuzz --seed 0 --budget 200
    python -m repro.cli trace --out mpeg2.trace.json
    python -m repro.cli trace --merge run.jsonl q/ledgers/*.jsonl --out merged.json
    python -m repro.cli metrics [--format json|prom|md]
    python -m repro.cli metrics --merge a.json b.json
    python -m repro.cli report sweep.ledger.jsonl [--format json|prom|md]
    python -m repro.cli report --check-regression --history BENCH_history.jsonl
    python -m repro.cli serve --port 8765 --cache-path results.jsonl
    python -m repro.cli client submit --job-file job.json --wait
    python -m repro.cli workers start --queue /shared/queue --n 2
    python -m repro.cli workers status --queue /shared/queue [--format prom]
    python -m repro.cli top --url http://127.0.0.1:8765

Each subcommand prints the corresponding reproduction table; `explore`
runs a live design-space sweep for the given requirements; `trace` and
`metrics` run the instrumented MPEG2-decoder workload through the
observability layer; `report` renders a run-ledger summary and hosts
the benchmark-regression gate (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.units import MBIT


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.experiments import e01_interface_power

    print(e01_interface_power.render_table())
    return 0


def _cmd_mpeg2(args: argparse.Namespace) -> int:
    from repro.apps.mpeg2 import DecoderVariant, MPEG2MemoryBudget
    from repro.apps.video import NTSC, PAL
    from repro.experiments import e06_mpeg2

    frame = NTSC if args.ntsc else PAL
    variant = (
        DecoderVariant.REDUCED_OUTPUT
        if args.reduced
        else DecoderVariant.STANDARD
    )
    budget = MPEG2MemoryBudget(frame=frame, variant=variant)
    print(
        f"{frame.standard.value} {variant.value} decoder: "
        f"{budget.total_mbit:.2f} Mbit, "
        f"{budget.total_bandwidth_bits_per_s() / 1e6:.0f} Mbit/s, "
        f"fits 16 Mbit: {budget.fits_16_mbit}"
    )
    print()
    print(e06_mpeg2.render_table())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.core import (
        ApplicationRequirements,
        DesignSpaceExplorer,
        Quantizer,
    )
    from repro.errors import InfeasibleError
    from repro.reporting.tables import Table

    requirements = ApplicationRequirements(
        name="cli",
        capacity_bits=int(args.capacity_mbit * MBIT),
        sustained_bandwidth_bits_per_s=args.bandwidth_gbs * 8e9,
        locality=args.locality,
    )
    result = DesignSpaceExplorer(
        batch=args.backend == "batched"
    ).explore(requirements)
    print(
        f"explored {result.n_explored} organizations, "
        f"{len(result.feasible)} feasible, frontier "
        f"{len(result.frontier)}"
    )
    if not result.feasible:
        print("no feasible embedded configuration", file=sys.stderr)
        return 1
    table = Table(
        title="quantized solutions",
        columns=["name", "configuration", "power", "area", "BW", "cost"],
    )
    try:
        named = Quantizer().named_solutions(result)
    except InfeasibleError as error:
        print(str(error), file=sys.stderr)
        return 1
    for solution in named:
        metrics = solution.metrics
        table.add_row(
            solution.name,
            metrics.label,
            f"{metrics.power_w * 1e3:.0f} mW",
            f"{metrics.area_mm2:.1f} mm^2",
            f"{metrics.sustained_bandwidth_bits_per_s / 8e9:.2f} GB/s",
            f"{metrics.unit_cost:.2f}",
        )
    print(table.render())
    return 0


def _cmd_feasibility(args: argparse.Namespace) -> int:
    from repro.core.tradeoffs import LogicMemoryTrade
    from repro.reporting.tables import Table

    trade = LogicMemoryTrade(die_budget_mm2=args.die_budget_mm2)
    table = Table(
        title=f"logic/memory frontier on {args.die_budget_mm2:.0f} mm^2",
        columns=["logic gates", "max memory"],
    )
    for gates in (100e3, 250e3, 500e3, 750e3, 1e6, 1.5e6):
        bits = trade.max_memory_for_logic(gates)
        table.add_row(f"{gates / 1e3:.0f}k", f"{bits / MBIT:.0f} Mbit")
    print(table.render())
    return 0


def _cmd_testcost(args: argparse.Namespace) -> int:
    from repro.experiments import e09_test_cost

    print(e09_test_cost.render_table())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import run_all

    failures = 0
    for report in run_all():
        print(report.render())
        print()
        if not report.all_hold:
            failures += 1
    if failures:
        print(f"{failures} experiments have failing claims",
              file=sys.stderr)
        return 1
    print("all experiments reproduce the paper's claims")
    return 0


def _obs_run(args: argparse.Namespace, *, trace: bool):
    """Run the instrumented MPEG2 workload; return its Observability."""
    from repro.obs import Observability
    from repro.obs.workloads import mpeg2_decoder_simulator

    obs = Observability.create(trace=trace)
    simulator = mpeg2_decoder_simulator(
        cycles=args.cycles,
        warmup_cycles=args.warmup_cycles,
        load=args.load,
        backend=args.backend,
        obs=obs,
    )
    result = simulator.run()
    if simulator.backend_fallback_reason is not None:
        print(
            f"note: event backend fell back to cycle "
            f"({simulator.backend_fallback_reason})",
            file=sys.stderr,
        )
    return obs, result


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.merge:
        return _merge_trace(args)
    obs, result = _obs_run(args, trace=True)
    obs.trace.write(args.out)
    dropped = obs.trace.dropped_events
    print(result.summary())
    print(
        f"wrote {len(obs.trace.events)} trace events to {args.out} "
        f"({dropped} dropped)"
        + " — open with https://ui.perfetto.dev or chrome://tracing"
    )
    return 0


def _merge_trace(args: argparse.Namespace) -> int:
    """Assemble per-process ledgers/traces into one Chrome trace."""
    from repro.obs.tracemerge import write_merged_trace

    document = write_merged_trace(args.merge, args.out)
    other = document["otherData"]
    print(
        f"merged {len(other['inputs'])} file(s) into {args.out}: "
        f"{len(document['traceEvents'])} events, "
        f"trace ids {', '.join(other['trace_ids']) or '(none)'}"
        + " — open with https://ui.perfetto.dev"
    )
    if other["orphan_parents"]:
        print(
            f"warning: {len(other['orphan_parents'])} orphan parent "
            f"span(s): {', '.join(other['orphan_parents'])}",
            file=sys.stderr,
        )
        if args.strict:
            return 1
    return 0


def _snapshot_markdown(snapshot: dict) -> str:
    """Small Markdown rendering of a metrics snapshot (--format md)."""
    lines = ["# Metrics", ""]
    counters = dict(snapshot.get("counters", {}))
    counters.update(snapshot.get("gauges", {}))
    if counters:
        lines += ["| metric | value |", "|---|---|"]
        lines += [
            f"| {name} | {value} |" for name, value in sorted(counters.items())
        ]
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines += [
            "",
            "| histogram | n | mean | p50 | p95 | max |",
            "|---|---|---|---|---|---|",
        ]
        for name, hist in sorted(histograms.items()):
            lines.append(
                f"| {name} | {hist.get('count', 0)} "
                f"| {hist.get('mean', 0.0):.2f} | {hist.get('p50', 0)} "
                f"| {hist.get('p95', 0)} | {hist.get('max', 0)} |"
            )
    return "\n".join(lines) + "\n"


def _render_snapshot(snapshot: dict, fmt: str) -> str:
    import json

    if fmt == "prom":
        from repro.obs.expo import render_prometheus

        return render_prometheus(snapshot)
    if fmt == "md":
        return _snapshot_markdown(snapshot)
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    if args.merge:
        return _merge_metrics(args)
    fmt = args.format or ("json" if args.json else None)
    obs, result = _obs_run(args, trace=False)
    snapshot = obs.metrics.snapshot()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(_render_snapshot(snapshot, fmt or "json"))
        print(f"wrote metrics snapshot to {args.out}")
    if fmt is not None:
        print(_render_snapshot(snapshot, fmt), end="")
    else:
        print(result.summary())
        for name, value in snapshot["counters"].items():
            print(f"  {name}: {value}")
        for name, hist in snapshot["histograms"].items():
            print(
                f"  {name}: n={hist['count']} mean={hist['mean']:.1f} "
                f"p95={hist['p95']:.1f} max={hist['max']}"
            )
    return 0


def _merge_metrics(args: argparse.Namespace) -> int:
    """Aggregate saved metrics snapshots offline (same merge() path
    the process pool uses at run time)."""
    import json

    from repro.errors import ConfigurationError
    from repro.obs.aggregate import merge_snapshots

    snapshots = []
    for path in args.merge:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                snapshots.append(json.load(handle))
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"cannot read metrics snapshot {path}: {error}"
            ) from error
    merged = merge_snapshots(*snapshots)
    rendered = json.dumps(merged, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(
            f"merged {len(snapshots)} snapshots into {args.out}"
        )
    else:
        print(rendered)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.reporting.runreport import (
        check_regression,
        load_history,
        load_ledger,
        render_html,
        render_markdown,
        render_regression,
        summarize_ledger,
    )

    if args.ledger is None and not args.check_regression:
        raise ConfigurationError(
            "repro report needs a LEDGER file and/or --check-regression"
        )
    if args.ledger is not None:
        import json

        summary = summarize_ledger(load_ledger(args.ledger))
        fmt = args.format or "md"
        if fmt == "json":
            rendered = json.dumps(summary, indent=2, sort_keys=True) + "\n"
        elif fmt == "prom":
            # The ledger's aggregated metrics snapshot plus run-level
            # gauges, in the same exposition format `/v1/metrics`
            # serves.
            from repro.obs.expo import render_prometheus

            extra = [
                {"name": "report.events", "value": summary["n_events"]},
                {"name": "report.wall_s", "value": summary["wall_s"]},
            ]
            for kind, count in summary["resilience"].items():
                extra.append(
                    {
                        "name": "report.resilience",
                        "value": count,
                        "type": "counter",
                        "labels": {"kind": kind},
                    }
                )
            rendered = render_prometheus(
                summary.get("metrics") or {}, extra=extra
            )
        else:
            rendered = render_markdown(summary, top=args.top)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(f"wrote {args.out}")
        if args.html:
            with open(args.html, "w", encoding="utf-8") as handle:
                handle.write(render_html(summary, top=args.top))
            print(f"wrote {args.html}")
        if not args.out and not args.html:
            print(rendered, end="")
    if args.check_regression:
        verdict = check_regression(
            load_history(args.history),
            threshold=args.threshold,
            window=args.window,
        )
        print(render_regression(verdict, args.threshold))
        if not verdict["ok"]:
            return 1
    return 0


def _add_obs_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cycles", type=int, default=8_000)
    parser.add_argument("--warmup-cycles", type=int, default=1_000)
    parser.add_argument(
        "--load",
        type=float,
        default=1.2,
        help="offered load as a fraction of interface peak",
    )
    parser.add_argument(
        "--backend",
        choices=("cycle", "event"),
        default="cycle",
        help="simulator execution core; 'event' skips provably idle "
        "cycles and falls back to 'cycle' (with a note) for "
        "configurations it cannot prove, e.g. with observability "
        "attached",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Embedded DRAM architectural trade-offs (Wehn & Hein, "
            "DATE 1998) — reproduction toolkit"
        ),
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="re-raise configuration/simulation errors as full "
        "tracebacks instead of the one-line message",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    power = sub.add_parser("power", help="E1 power comparison table")
    power.set_defaults(func=_cmd_power)

    mpeg2 = sub.add_parser("mpeg2", help="MPEG2 decoder memory budget")
    mpeg2.add_argument("--ntsc", action="store_true",
                       help="NTSC instead of PAL")
    mpeg2.add_argument("--reduced", action="store_true",
                       help="reduced-output variant")
    mpeg2.set_defaults(func=_cmd_mpeg2)

    explore = sub.add_parser("explore", help="design-space sweep")
    explore.add_argument("--capacity-mbit", type=float, required=True)
    explore.add_argument("--bandwidth-gbs", type=float, required=True,
                         help="sustained bandwidth in GB/s")
    explore.add_argument("--locality", type=float, default=0.7)
    explore.add_argument(
        "--backend",
        choices=("batched", "scalar"),
        default="batched",
        help="evaluation core: 'batched' evaluates the grid as numpy "
        "array lanes (bit-identical to 'scalar', the per-point "
        "reference loop)",
    )
    explore.set_defaults(func=_cmd_explore)

    feasibility = sub.add_parser(
        "feasibility", help="logic/memory die frontier"
    )
    feasibility.add_argument(
        "--die-budget-mm2", type=float, default=203.7
    )
    feasibility.set_defaults(func=_cmd_feasibility)

    testcost = sub.add_parser("testcost", help="E9 test economics table")
    testcost.add_argument("--mbit", type=float, default=64.0)
    testcost.set_defaults(func=_cmd_testcost)

    experiments = sub.add_parser(
        "experiments", help="run all E1-E10 reproduction reports"
    )
    experiments.set_defaults(func=_cmd_experiments)

    partition = sub.add_parser(
        "partition",
        help="SRAM/eDRAM/off-chip partitioning demo (MPEG2 blocks)",
    )
    partition.add_argument("--area-budget-mm2", type=float, default=25.0)
    partition.set_defaults(func=_cmd_partition)

    trace = sub.add_parser(
        "trace",
        help="run the MPEG2-decoder workload and write a Chrome "
        "trace-event JSON (Perfetto-loadable), or --merge distributed "
        "ledgers into one",
    )
    trace.add_argument("--out", default="mpeg2.trace.json")
    trace.add_argument(
        "--merge",
        nargs="+",
        metavar="LEDGER",
        help="skip the workload: merge these ledger JSONL / trace JSON "
        "files (coordinator + workers of a distributed run) into one "
        "Chrome trace at --out, with cross-process span parenting",
    )
    trace.add_argument(
        "--strict",
        action="store_true",
        help="with --merge: exit 1 if any span references a parent no "
        "input defines (broken cross-process parent chain)",
    )
    _add_obs_workload_args(trace)
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run the MPEG2-decoder workload and print/export the "
        "metrics snapshot",
    )
    metrics.add_argument("--out", help="write the snapshot here")
    metrics.add_argument(
        "--json", action="store_true",
        help="print the snapshot as JSON (same as --format json)",
    )
    metrics.add_argument(
        "--format",
        choices=("json", "prom", "md"),
        default=None,
        help="output format: json (snapshot), prom (Prometheus text "
        "exposition), md (Markdown tables); default is the plain text "
        "summary",
    )
    metrics.add_argument(
        "--merge",
        nargs="+",
        metavar="SNAPSHOT",
        help="skip the workload: aggregate these saved snapshot JSONs "
        "(lossless histogram merge) and print/write the result",
    )
    _add_obs_workload_args(metrics)
    metrics.set_defaults(func=_cmd_metrics)

    report = sub.add_parser(
        "report",
        help="render a run-ledger summary (Markdown/HTML) and run the "
        "benchmark-regression gate",
    )
    report.add_argument(
        "ledger", nargs="?", help="run-ledger JSONL file to summarize"
    )
    report.add_argument("--out", help="write the rendered report here")
    report.add_argument("--html", help="write a self-contained HTML here")
    report.add_argument(
        "--format",
        choices=("md", "json", "prom"),
        default=None,
        help="report format: md (default), json (the summary dict), "
        "prom (ledger metrics as Prometheus text)",
    )
    report.add_argument(
        "--top", type=int, default=10,
        help="slowest chunks / quarantines to list (default 10)",
    )
    report.add_argument(
        "--check-regression",
        action="store_true",
        help="gate the newest BENCH_history.jsonl entry against its "
        "rolling baseline; exit 1 on regression",
    )
    report.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="bench history JSONL (default: ./BENCH_history.jsonl)",
    )
    report.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="fractional slowdown that fails the gate (0.3 = +30%%)",
    )
    report.add_argument(
        "--window",
        type=int,
        default=5,
        help="rolling-baseline size: prior same-mode entries (default 5)",
    )
    report.set_defaults(func=_cmd_report)

    verify = sub.add_parser(
        "verify",
        help="differential verification (fuzz, diff); forwards to "
        "`python -m repro.verify`",
    )
    verify.add_argument("verify_args", nargs=argparse.REMAINDER)
    verify.set_defaults(func=_cmd_verify)

    inject = sub.add_parser(
        "inject",
        help="fault-injection campaigns and injected simulations; "
        "forwards to `python -m repro.inject`",
    )
    inject.add_argument("inject_args", nargs=argparse.REMAINDER)
    inject.set_defaults(func=_cmd_inject)

    serve = sub.add_parser(
        "serve",
        help="run the exploration service (JSON batch API; "
        "see docs/SERVICE.md)",
    )
    _add_serve_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser(
        "client",
        help="talk to a running `repro serve` instance; "
        "forwards to `python -m repro.serve`",
    )
    client.add_argument("client_args", nargs=argparse.REMAINDER)
    client.set_defaults(func=_cmd_client)

    workers = sub.add_parser(
        "workers",
        help="work-queue sweep workers: join or inspect a shared "
        "queue directory (see docs/DISTRIBUTED.md)",
    )
    workers_sub = workers.add_subparsers(
        dest="workers_command", required=True
    )
    start = workers_sub.add_parser(
        "start",
        help="run worker process(es) against a queue directory — on "
        "this machine or any machine sharing the directory",
    )
    start.add_argument(
        "--queue", required=True, help="work-queue directory"
    )
    start.add_argument(
        "--n", type=int, default=1,
        help="worker processes to run (default 1; >1 spawns "
        "subprocesses and waits for them)",
    )
    start.add_argument(
        "--worker-id", default=None,
        help="stable worker id (single worker only; default pid-random)",
    )
    start.add_argument(
        "--max-idle-s", type=float, default=30.0,
        help="exit after this long with nothing to claim (default 30)",
    )
    start.add_argument(
        "--supervise", action="store_true",
        help="run the workers under a WorkerSupervisor: respawn "
        "crashed workers (bounded backoff), kill+respawn frozen ones "
        "(stale heartbeat), drain gracefully on SIGTERM/Ctrl-C "
        "(see docs/RESILIENCE.md)",
    )
    start.add_argument(
        "--heartbeat-timeout-s", type=float, default=10.0,
        help="supervised only: a live worker silent this long is "
        "considered frozen and killed (default 10)",
    )
    start.add_argument(
        "--max-respawns", type=int, default=5,
        help="supervised only: respawn budget per worker slot "
        "(default 5)",
    )
    start.add_argument(
        "--backoff-s", type=float, default=0.2,
        help="supervised only: initial respawn backoff, doubled per "
        "respawn (default 0.2)",
    )
    start.set_defaults(func=_cmd_workers_start)
    status = workers_sub.add_parser(
        "status",
        help="print a JSON snapshot of the queue: pending/leased/"
        "completed chunks, expired leases, worker heartbeats",
    )
    status.add_argument(
        "--queue", required=True, help="work-queue directory"
    )
    status.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="json (default) or prom (Prometheus text: chunk counts, "
        "lease ages, worker heartbeat ages)",
    )
    status.set_defaults(func=_cmd_workers_status)

    top = sub.add_parser(
        "top",
        help="live TTY dashboard over a running `repro serve` "
        "instance (jobs, queue depth, breakers, latency); degrades "
        "to periodic plain text when stdout is not a TTY",
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="service base URL (default http://127.0.0.1:8765)",
    )
    top.add_argument(
        "--interval-s", type=float, default=1.0,
        help="seconds between polls (default 1.0)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (scripting/CI)",
    )
    top.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N frames (default: run until Ctrl-C)",
    )
    top.set_defaults(func=_cmd_top)
    return parser


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.cli import main as verify_main

    return verify_main(args.verify_args)


def _cmd_inject(args: argparse.Namespace) -> int:
    from repro.inject.cli import main as inject_main

    return inject_main(args.inject_args)


def _add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.serve.cli import add_serve_arguments

    add_serve_arguments(parser)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.cli import run_serve

    return run_serve(args)


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.serve.cli import client_main

    return client_main(args.client_args)


def _cmd_workers_start(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError

    if args.n < 1:
        raise ConfigurationError("--n must be >= 1")
    if args.supervise:
        if args.worker_id is not None:
            raise ConfigurationError(
                "--worker-id conflicts with --supervise (the "
                "supervisor names its worker slots)"
            )
        from repro.core.supervisor import WorkerSupervisor

        stats = WorkerSupervisor(
            args.queue,
            n_workers=args.n,
            max_respawns=args.max_respawns,
            backoff_s=args.backoff_s,
            heartbeat_timeout_s=args.heartbeat_timeout_s,
            max_idle_s=args.max_idle_s,
        ).run()
        print(
            "supervisor exited: "
            f"spawned={stats['spawned']} respawned={stats['respawned']} "
            f"killed_frozen={stats['killed_frozen']} "
            f"drained={stats['drained']}"
        )
        return 0
    if args.n == 1:
        from repro.core.worker import worker_loop

        chunks = worker_loop(
            args.queue,
            worker_id=args.worker_id,
            max_idle_s=args.max_idle_s,
        )
        print(f"worker exited after completing {chunks} chunk(s)")
        return 0
    if args.worker_id is not None:
        raise ConfigurationError(
            "--worker-id only applies to a single worker (--n 1)"
        )
    import signal
    import subprocess

    procs = []
    status = 0
    try:
        for _ in range(args.n):
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.core.worker",
                        "--queue",
                        args.queue,
                        "--max-idle-s",
                        str(args.max_idle_s),
                    ]
                )
            )
        print(
            f"starting {args.n} worker(s) on {args.queue}", flush=True
        )
        for proc in procs:
            status = max(status, proc.wait())
    except KeyboardInterrupt:
        # Graceful drain: each worker finishes its in-flight chunk,
        # publishes, releases its lease and exits (SIGTERM handler in
        # repro.core.worker).  Then re-raise for the one-line exit.
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except Exception:
                proc.kill()
        raise
    print(f"{len(procs)} worker(s) exited")
    return status


def _cmd_workers_status(args: argparse.Namespace) -> int:
    import json

    from repro.core.executor import WorkQueue
    from repro.errors import ConfigurationError
    from pathlib import Path

    if not Path(args.queue).is_dir():
        raise ConfigurationError(
            f"no work-queue directory at {args.queue}"
        )
    status = WorkQueue(args.queue).status()
    if getattr(args, "format", "json") == "prom":
        from repro.obs.expo import render_prometheus, workqueue_samples

        print(render_prometheus({}, extra=workqueue_samples(status)), end="")
    else:
        print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import top_loop
    from repro.serve.client import ServeClient

    client = ServeClient(args.url)
    iterations = 1 if args.once else args.iterations
    top_loop(
        client.metrics_text,
        sys.stdout,
        interval_s=args.interval_s,
        iterations=iterations,
        title=f"repro top — {args.url}",
    )
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.core.partition import MemoryBlock, Partitioner
    from repro.errors import InfeasibleError
    from repro.reporting.tables import Table

    blocks = [
        MemoryBlock("bitstream buffer", int(1.75 * MBIT), 0.03e9),
        MemoryBlock("frame stores", int(9.5 * MBIT), 0.45e9, 60.0),
        MemoryBlock("display buffer", int(4.75 * MBIT), 0.25e9, 60.0),
        MemoryBlock("mb line buffer", int(0.04 * MBIT), 1.5e9, 12.0),
    ]
    try:
        plan = Partitioner(
            area_budget_mm2=args.area_budget_mm2
        ).partition(blocks)
    except InfeasibleError as error:
        print(str(error), file=sys.stderr)
        return 1
    table = Table(
        title=f"partition at {args.area_budget_mm2:.0f} mm^2 budget",
        columns=["block", "size", "technology"],
    )
    for block in blocks:
        table.add_row(
            block.name,
            f"{block.size_mbit:.2f} Mbit",
            plan.assignment[block.name].value,
        )
    print(table.render())
    print(
        f"area {plan.area_mm2:.1f} mm^2, power {plan.power_w * 1e3:.0f} mW, "
        f"cost {plan.unit_cost:.2f}, on-chip "
        f"{plan.on_chip_fraction():.0%}"
    )
    return 0


def main(argv=None) -> int:
    from repro.errors import ConfigurationError, SimulationError

    parser = build_parser()
    forwarded = list(sys.argv[1:] if argv is None else argv)
    if forwarded and forwarded[0] == "client":
        # Forward verbatim, bypassing argparse's REMAINDER: a leading
        # option (`repro client --url ... submit`) would otherwise be
        # rejected by the root parser before the remainder captures it.
        from repro.serve.cli import client_main

        return client_main(forwarded[1:])
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Long-running subcommands (serve, workers) are routinely
        # stopped with Ctrl-C; that is an outcome, not a crash — one
        # line, conventional 130 exit, never a stack trace.
        print("repro: interrupted", file=sys.stderr)
        return 130
    except (ConfigurationError, SimulationError) as error:
        if args.debug:
            raise
        print(
            f"repro: error: [{type(error).__name__}] {error}",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":
    sys.exit(main())
