"""Pareto-frontier extraction over solution metrics.

All objectives are *minimized*; callers encode maximize-objectives by
negation (as :meth:`SolutionMetrics.objective_tuple` does for bandwidth).

Two interchangeable engines compute the frontier:

* ``"python"`` — the reference O(n^2) pairwise loop;
* ``"numpy"`` — the same pairwise dominance test as one vectorized
  broadcast (still O(n^2) comparisons, but in C; this is the hot path
  of a design-space exploration, where n runs into the hundreds).

``"auto"`` (the default) picks numpy whenever the objective vectors are
numeric.  Both engines return identical frontiers — order, ties and
duplicate handling included — which ``tests/test_core_parallel.py``
pins and ``tests/test_verify_pareto_property.py`` fuzzes.

Tie and NaN semantics (identical across engines by construction):
equal vectors never dominate each other, so duplicates all survive the
dominance test and the shared seen-set then keeps only the first
occurrence; every comparison against NaN is false in both engines, so a
vector containing NaN neither dominates nor is dominated — it always
lands on the frontier (first occurrence of its exact bit pattern).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.errors import ConfigurationError

T = TypeVar("T")

#: Engines recognised by :func:`pareto_frontier`.
_ENGINES = ("auto", "numpy", "python")

#: Above this many items the numpy engine tests dominance in row blocks
#: to bound the broadcast's O(n^2) temporary memory.
_BLOCK_ROWS = 2048


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if objective vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is no worse in every objective and
    strictly better in at least one (all objectives minimized).
    """
    if len(a) != len(b):
        raise ConfigurationError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}"
        )
    if not a:
        raise ConfigurationError("objective vectors must be non-empty")
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return no_worse and strictly_better


def _frontier_python(items: Sequence[T], vectors: list) -> list[T]:
    frontier: list[T] = []
    seen: set = set()
    for i, item in enumerate(items):
        vi = vectors[i]
        if vi in seen:
            continue
        dominated = False
        for j, vj in enumerate(vectors):
            if i != j and dominates(vj, vi):
                dominated = True
                break
        if not dominated:
            frontier.append(item)
            seen.add(vi)
    return frontier


def _dominated_mask(array: np.ndarray) -> np.ndarray:
    """Boolean mask: row i is dominated by some other row."""
    n = len(array)
    dominated = np.zeros(n, dtype=bool)
    for start in range(0, n, _BLOCK_ROWS):
        block = array[start : start + _BLOCK_ROWS]
        # le[i, j]: candidate j is no worse than block row i everywhere;
        # lt[i, j]: candidate j is strictly better somewhere.
        le = (array[None, :, :] <= block[:, None, :]).all(axis=2)
        lt = (array[None, :, :] < block[:, None, :]).any(axis=2)
        dominated[start : start + _BLOCK_ROWS] = (le & lt).any(axis=1)
    return dominated


def _frontier_numpy(items: Sequence[T], vectors: list) -> list[T]:
    array = np.asarray(vectors, dtype=float)
    dominated = _dominated_mask(array)
    frontier: list[T] = []
    seen: set = set()
    for i, item in enumerate(items):
        if dominated[i]:
            continue
        vi = vectors[i]
        if vi in seen:
            continue
        frontier.append(item)
        seen.add(vi)
    return frontier


def pareto_frontier(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
    engine: str = "auto",
) -> list[T]:
    """Non-dominated subset of ``items`` under ``objectives``.

    Duplicates (identical objective vectors) are kept once, preserving
    the first occurrence.  ``engine`` selects the implementation (see
    module docstring); results are identical across engines.
    """
    if engine not in _ENGINES:
        raise ConfigurationError(
            f"unknown pareto engine {engine!r} (choose from {_ENGINES})"
        )
    vectors = [tuple(objectives(item)) for item in items]
    if engine == "python" or not items:
        return _frontier_python(items, vectors)
    if engine == "auto":
        try:
            np.asarray(vectors, dtype=float)
        except (TypeError, ValueError):
            return _frontier_python(items, vectors)
    return _frontier_numpy(items, vectors)


def pareto_frontier_mask(
    matrix: np.ndarray, engine: str = "auto"
) -> np.ndarray:
    """Frontier membership mask for pre-stacked objective rows.

    The array-native entry point for batched evaluation: ``matrix`` is
    one objective vector per row (e.g.
    :meth:`~repro.core.batch.BatchEvaluation.objective_matrix`) and the
    returned boolean mask marks the non-dominated rows, with duplicate
    vectors kept once (first occurrence) — the same tie/NaN/duplicate
    semantics as :func:`pareto_frontier`, pinned by the differential
    tests.
    """
    if engine not in _ENGINES:
        raise ConfigurationError(
            f"unknown pareto engine {engine!r} (choose from {_ENGINES})"
        )
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2:
        raise ConfigurationError(
            f"objective matrix must be 2-D, got shape {array.shape}"
        )
    n = len(array)
    if n == 0:
        return np.zeros(0, dtype=bool)
    if engine == "python":
        vectors = [tuple(row) for row in array]
        indices = list(range(n))
        kept = _frontier_python(indices, vectors)
        mask = np.zeros(n, dtype=bool)
        mask[kept] = True
        return mask
    surviving = ~_dominated_mask(array)
    # Deduplicate: among equal rows, keep the first occurrence only.
    seen: set = set()
    for index in np.flatnonzero(surviving):
        key = array[index].tobytes()
        if key in seen:
            surviving[index] = False
        else:
            seen.add(key)
    return surviving
