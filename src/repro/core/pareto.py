"""Pareto-frontier extraction over solution metrics.

All objectives are *minimized*; callers encode maximize-objectives by
negation (as :meth:`SolutionMetrics.objective_tuple` does for bandwidth).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if objective vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is no worse in every objective and
    strictly better in at least one (all objectives minimized).
    """
    if len(a) != len(b):
        raise ConfigurationError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}"
        )
    if not a:
        raise ConfigurationError("objective vectors must be non-empty")
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return no_worse and strictly_better


def pareto_frontier(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
) -> list[T]:
    """Non-dominated subset of ``items`` under ``objectives``.

    Duplicates (identical objective vectors) are kept once, preserving
    the first occurrence.  O(n^2) — fine for the few thousand
    configurations a design-space sweep produces.
    """
    vectors = [tuple(objectives(item)) for item in items]
    frontier: list[T] = []
    seen: set = set()
    for i, item in enumerate(items):
        vi = vectors[i]
        if vi in seen:
            continue
        dominated = False
        for j, vj in enumerate(vectors):
            if i != j and dominates(vj, vi):
                dominated = True
                break
        if not dominated:
            frontier.append(item)
            seen.add(vi)
    return frontier
