"""Durable content-addressed result store for sweep-scale execution.

ROADMAP item 3's durability layer: a :class:`ResultStore` maps a
*fingerprint* — sha256 of the canonical JSON describing one unit of
work (see :func:`point_fingerprint` and
:meth:`Sweep.content_key <repro.core.sweep.Sweep.content_key>`) — to
the canonical *text* of its result.  Storing text, not objects, keeps
the correctness contract checkable: a replayed result is byte-identical
to the original because it literally is the same string (the same
argument :mod:`repro.serve.cache` makes for the service cache, which is
now built on this class).

Durability discipline
---------------------

* **Append-only JSONL spill** — one ``{"fingerprint", "result"}``
  record per line, written through a persistent handle and flushed per
  append (``fsync=True`` additionally fsyncs, for stores that must
  survive power loss, e.g. the work-queue segment files a ``SIGKILL``ed
  worker leaves behind).
* **Torn tails are harmless** — a record killed mid-write fails JSON
  decoding and is skipped on load; every complete record before it is
  trusted.
* **Atomic compaction** — :meth:`compact` rewrites the spill through a
  temp file in the same directory, fsyncs it, and ``os.replace``\\ s it
  over the old spill, so a crash at any instant leaves either the old
  or the new file, never a hybrid.  Compaction drops dead records:
  superseded duplicates and (for LRU-bounded stores) evicted entries,
  fixing the unbounded-growth / eviction-resurrection bug the bounded
  service cache used to have.
* **Cross-node merge** — :meth:`merge_file` folds another store's (or a
  worker segment's) records in, first-write-wins (records are pure:
  two writers with the same fingerprint computed the same bytes), and
  returns how many were new, so a
  :class:`~repro.obs.ledger.RunLedger` ``store_merge`` event can carry
  the provenance.

With ``maxsize=None`` (the default) the store is unbounded and nothing
is ever evicted; with a bound it behaves as an LRU whose spill is kept
in sync by compaction.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.errors import ConfigurationError


def canonical_text(document) -> str:
    """Canonical JSON: sorted keys, no whitespace, repeatable bytes."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), default=str
    )


def point_fingerprint(context: dict, parameters: dict) -> str:
    """Content key of one unit of work: context + its parameters.

    ``context`` pins everything that selects the computation (sweep
    signature, workload name, flags); ``parameters`` the point itself.
    Values must be JSON-able (``default=str`` catches stragglers the
    same way :meth:`Sweep.content_key` does).
    """
    document = {"context": context, "parameters": parameters}
    return hashlib.sha256(
        canonical_text(document).encode("utf-8")
    ).hexdigest()


def encode_outcome(outcome) -> str:
    """A :class:`~repro.core.parallel.PointOutcome` as canonical text.

    Successful values are pickled and base64-wrapped (they are
    arbitrary evaluation results), matching the sweep journal's
    encoding, so the text stays line-oriented UTF-8.
    """
    import base64
    import pickle

    if outcome.ok:
        document = {
            "ok": True,
            "value": base64.b64encode(
                pickle.dumps(outcome.value)
            ).decode("ascii"),
        }
    else:
        document = {"ok": False, "error": outcome.error}
    return canonical_text(document)


def decode_outcome(text: str):
    """Inverse of :func:`encode_outcome`; None on any corruption."""
    import base64
    import pickle

    from repro.core.parallel import PointOutcome

    try:
        document = json.loads(text)
        if document.get("ok"):
            value = pickle.loads(base64.b64decode(document["value"]))
            return PointOutcome(ok=True, value=value)
        return PointOutcome(ok=False, error=document.get("error"))
    except Exception:
        return None


class ResultStore:
    """Thread-safe, durable map of fingerprint -> canonical result text.

    Attributes:
        path: Optional JSONL spill file (loaded on construction,
            appended per :meth:`put`, rewritten by :meth:`compact`).
        maxsize: In-memory entry cap (None = unbounded).  Bounded
            stores evict LRU and compact the spill so evicted entries
            do not resurrect on reload.
        fsync: fsync the spill after every append (durable across
            power loss / ``SIGKILL``, at a per-put cost).
        hits / misses / evictions: Running counters.
    """

    def __init__(
        self,
        path=None,
        maxsize: int | None = None,
        fsync: bool = False,
        compact_ratio: float = 2.0,
    ) -> None:
        if maxsize is not None and maxsize < 1:
            raise ConfigurationError("store maxsize must be >= 1")
        if compact_ratio < 1.0:
            raise ConfigurationError("compact_ratio must be >= 1.0")
        self.path = Path(path) if path is not None else None
        self.maxsize = maxsize
        self.fsync = fsync
        self.compact_ratio = compact_ratio
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.merged = 0
        self._lock = threading.RLock()
        self._entries: OrderedDict = OrderedDict()
        self._handle = None
        #: Records currently in the spill file (live + dead); drives
        #: the auto-compaction trigger.
        self._spill_records = 0
        if self.path is not None and self.path.exists():
            self._spill_records = self._load()
            self._maybe_compact()

    # -- loading / persistence ----------------------------------------------

    def _load(self) -> int:
        """Replay the spill; returns the number of records read."""
        records = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from an interrupted append
                fingerprint = record.get("fingerprint")
                result = record.get("result")
                if isinstance(fingerprint, str) and isinstance(result, str):
                    records += 1
                    self._insert(fingerprint, result)
        return records

    def _insert(self, fingerprint: str, text: str) -> None:
        self._entries[fingerprint] = text
        self._entries.move_to_end(fingerprint)
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def _append_record(self, fingerprint: str, text: str) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(
            json.dumps({"fingerprint": fingerprint, "result": text}) + "\n"
        )
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._spill_records += 1

    def _maybe_compact(self) -> None:
        """Compact when dead records dominate the spill.

        Dead = superseded duplicates + evicted entries.  The threshold
        is ``compact_ratio`` times the live set (with a small floor so
        tiny stores don't churn).
        """
        if self.path is None:
            return
        live = len(self._entries)
        if self._spill_records <= max(8, int(live * self.compact_ratio)):
            return
        self._compact_locked()

    def compact(self) -> int:
        """Rewrite the spill to exactly the live entries, atomically.

        Returns the number of records dropped.  The rewrite goes
        through a temp file in the spill's directory which is fsynced
        and ``os.replace``\\ d over the original, so an interruption at
        any point leaves a complete file.
        """
        with self._lock:
            if self.path is None:
                return 0
            return self._compact_locked()

    def _compact_locked(self) -> int:
        dropped = self._spill_records - len(self._entries)
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        tmp_path = self.path.with_name(self.path.name + ".compact.tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            # Oldest-recency first, so replaying the compacted file
            # reconstructs the same LRU order.
            for fingerprint, text in self._entries.items():
                handle.write(
                    json.dumps(
                        {"fingerprint": fingerprint, "result": text}
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        self._spill_records = len(self._entries)
        return max(dropped, 0)

    # -- core map operations -------------------------------------------------

    def get(self, fingerprint: str):
        """The stored result text, or None; refreshes LRU recency."""
        with self._lock:
            text = self._entries.get(fingerprint)
            if text is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return text

    def put(self, fingerprint: str, text: str) -> None:
        """Store a result; appends to the spill when configured."""
        if not isinstance(text, str):
            raise ConfigurationError("store holds canonical text only")
        with self._lock:
            known = self._entries.get(fingerprint)
            self._insert(fingerprint, text)
            if self.path is not None and known != text:
                self._append_record(fingerprint, text)
                self._maybe_compact()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def keys(self) -> list:
        with self._lock:
            return list(self._entries)

    # -- cross-node merge ----------------------------------------------------

    def merge_file(self, path, ledger=None) -> int:
        """Fold another store file's records in; returns the new count.

        First-write-wins: a fingerprint this store already holds keeps
        its existing text (entries are pure — any writer computed the
        same bytes).  With ``ledger``, emits one ``store_merge`` event
        carrying the source path and counts, so cross-node merges are
        on the provenance record.
        """
        path = Path(path)
        folded = 0
        seen = 0
        if path.exists():
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if not line.strip():
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail
                    fingerprint = record.get("fingerprint")
                    result = record.get("result")
                    if not (
                        isinstance(fingerprint, str)
                        and isinstance(result, str)
                    ):
                        continue
                    seen += 1
                    with self._lock:
                        if fingerprint in self._entries:
                            continue
                        self._insert(fingerprint, result)
                        if self.path is not None:
                            self._append_record(fingerprint, result)
                        folded += 1
        with self._lock:
            self.merged += folded
            self._maybe_compact()
        if ledger is not None:
            ledger.event(
                "store_merge",
                source=str(path),
                records=seen,
                folded=folded,
                entries=len(self),
            )
        return folded

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "merged": self.merged,
                "spill_records": self._spill_records,
                "persistent": self.path is not None,
            }


def coerce_store(store) -> tuple:
    """Normalize a ``store=`` argument to ``(store | None, owned)``.

    Accepts None (off), a path (opened unbounded, owned — the callee
    closes it) or an already-open :class:`ResultStore` (shared; the
    caller keeps ownership).
    """
    if store is None:
        return None, False
    if isinstance(store, ResultStore):
        return store, False
    if isinstance(store, (str, Path)):
        return ResultStore(path=store), True
    raise ConfigurationError(
        f"store must be a path or ResultStore, got {type(store).__name__}"
    )
