"""Evaluate candidate memory solutions against application requirements.

Two evaluation paths share one metrics format:

* **analytic** — closed-form sustainable-bandwidth/latency estimates from
  locality, page length, bank count and refresh overhead (fast enough to
  sweep thousands of configurations), plus the power/area/cost models;
* **simulation** — the cycle-level simulator of :mod:`repro.sim` driven
  by a traffic mix derived from the requirement's locality (slow,
  accurate; used to validate the analytic shortlist).

The analytic bandwidth model: a stream touching a page of P bits with
B-bit bursts sees one row miss per P/B accesses, so the per-access cycle
cost is ``burst + (1 - h) * prep`` with h the hit rate; bank parallelism
overlaps up to ``banks`` preparations with transfers; refresh steals its
duty cycle.  This is the textbook derivation of why "the sustainable
bandwidth can be much lower than the peak bandwidth" and of what
organization parameters recover it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.units import MBIT
from repro.core.metrics import SolutionMetrics
from repro.core.requirements import ApplicationRequirements
from repro.cost.wafer import WaferSpec, die_cost_before_test
from repro.cost.yield_model import YieldModel
from repro.dram.catalog import DiscreteSystem
from repro.dram.edram import EDRAMMacro
from repro.power.idd import EDRAM_IDD, PC100_IDD, CorePowerModel
from repro.power.interface import (
    InterfacePowerModel,
    OFF_CHIP_BUS,
    ON_CHIP_BUS,
)


@lru_cache(maxsize=4096)
def _edram_core_power(width: int, read_fraction: float) -> tuple:
    """(busy_w, idle_w) of the eDRAM core at a given interface width.

    The IDD scaling and power-model construction are pure functions of
    the width and read mix; a design-space sweep revisits the same few
    widths hundreds of times.
    """
    core = CorePowerModel(EDRAM_IDD.scaled_for_width(width))
    return core.busy_power_w(read_fraction), core.idle_power_w()


class _MacroCache:
    """Mutable memo store living inside the frozen :class:`Evaluator`.

    Unbounded by default; with ``maxsize`` set it behaves as an LRU —
    dict insertion order is the recency order (hits re-insert their
    key), and inserts beyond capacity evict the least recently used
    entry, counted in ``evictions``.
    """

    __slots__ = ("entries", "hits", "misses", "evictions", "maxsize")

    def __init__(self, maxsize: int | None = None) -> None:
        self.entries: dict = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.maxsize = maxsize


@dataclass(frozen=True)
class Evaluator:
    """Analytic evaluator for embedded and discrete memory solutions.

    ``evaluate_macro`` results are memoized per evaluator instance,
    keyed on the ``(macro, requirements)`` pair.  Both keys and every
    evaluator attribute are frozen dataclasses, so a cache entry can
    only go stale by constructing a *different* evaluator — which gets
    its own empty cache.  That is the whole invalidation rule: new
    wafer/yield/cost assumptions mean a new ``Evaluator``.

    Attributes:
        wafer: Wafer economics for embedded silicon cost.
        yield_model: Yield model for embedded silicon cost.
        test_cost_per_mbit: Per-Mbit memory test cost added to embedded
            solutions.
        max_utilization: Queueing knee — utilization above this is
            treated as infeasible for latency purposes.
        macro_cache_maxsize: Bound on the ``evaluate_macro`` memo; None
            (the default) keeps it unbounded.  When set, the memo
            evicts least-recently-used entries and reports the count in
            :meth:`macro_cache_info` — for long-lived evaluators fed an
            open-ended stream of configurations.
    """

    wafer: WaferSpec = WaferSpec(cost_multiplier=1.15)
    yield_model: YieldModel = field(default_factory=YieldModel)
    test_cost_per_mbit: float = 0.02
    max_utilization: float = 0.95
    macro_cache_maxsize: int | None = None

    _macro_cache: _MacroCache = field(
        default_factory=_MacroCache, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if (
            self.macro_cache_maxsize is not None
            and self.macro_cache_maxsize < 1
        ):
            raise ConfigurationError(
                "macro_cache_maxsize must be >= 1 (or None for unbounded)"
            )
        self._macro_cache.maxsize = self.macro_cache_maxsize

    def __getstate__(self) -> dict:
        # The cache never crosses process boundaries: workers start
        # cold and the parent primes itself from their results.
        state = self.__dict__.copy()
        state["_macro_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        state = dict(state)
        state["_macro_cache"] = _MacroCache(
            maxsize=state.get("macro_cache_maxsize")
        )
        self.__dict__.update(state)

    # -- memo cache ---------------------------------------------------------

    def macro_cache_info(self) -> dict:
        """Cache statistics: size, hits, misses, evictions, maxsize."""
        cache = self._macro_cache
        return {
            "size": len(cache.entries),
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "maxsize": cache.maxsize,
        }

    def clear_macro_cache(self) -> None:
        cache = self._macro_cache
        cache.entries.clear()
        cache.hits = 0
        cache.misses = 0
        cache.evictions = 0

    def _cache_store(self, key, metrics) -> None:
        cache = self._macro_cache
        entries = cache.entries
        if key in entries:
            if cache.maxsize is not None:
                del entries[key]  # re-insert to refresh recency
            entries[key] = metrics
            return
        if cache.maxsize is not None and len(entries) >= cache.maxsize:
            del entries[next(iter(entries))]
            cache.evictions += 1
        entries[key] = metrics

    def prime_macro_cache(self, pairs) -> None:
        """Pre-populate the memo from ``((macro, requirements), metrics)``
        pairs (e.g. results computed by worker processes or the batched
        evaluator).  Respects the LRU bound when one is set."""
        for key, metrics in pairs:
            self._cache_store(tuple(key), metrics)

    # -- shared analytic kernels --------------------------------------------

    @staticmethod
    def row_hit_rate(
        locality: float, page_bits: int, burst_bits: int
    ) -> float:
        """Expected row-buffer hit rate.

        A perfectly local stream misses once per page (hit rate
        ``1 - burst/page``); fully random traffic essentially always
        misses.  Locality interpolates between the two.
        """
        if not 0 <= locality <= 1:
            raise ConfigurationError("locality must be in [0, 1]")
        if burst_bits <= 0 or page_bits <= 0:
            raise ConfigurationError("burst and page must be positive")
        # An access spanning a whole page (or more) misses every time:
        # each access opens a fresh row.
        stream_hit = max(0.0, 1.0 - burst_bits / page_bits)
        return locality * stream_hit

    @staticmethod
    def bandwidth_efficiency(
        hit_rate: float,
        burst_cycles: int,
        prep_cycles: int,
        banks: int,
        refresh_overhead: float,
    ) -> float:
        """Sustained/peak ratio from hit rate and bank overlap."""
        if not 0 <= hit_rate <= 1:
            raise ConfigurationError("hit rate must be in [0, 1]")
        if burst_cycles < 1 or prep_cycles < 0 or banks < 1:
            raise ConfigurationError("invalid timing/banks")
        if not 0 <= refresh_overhead < 1:
            raise ConfigurationError("refresh overhead must be in [0, 1)")
        cycles_single = burst_cycles + (1.0 - hit_rate) * prep_cycles
        overlapped = max(cycles_single / banks, burst_cycles)
        return (burst_cycles / overlapped) * (1.0 - refresh_overhead)

    def _loaded_latency_ns(
        self, base_ns: float, utilization: float
    ) -> float:
        """Base latency inflated by queueing (M/D/1-flavoured)."""
        if utilization >= self.max_utilization:
            utilization = self.max_utilization
        if utilization < 0:
            raise ConfigurationError("utilization must be >= 0")
        return base_ns * (1.0 + utilization / (2.0 * (1.0 - utilization)))

    def _silicon_cost(self, area_mm2: float) -> float:
        """Cost of embedded memory silicon (yielded)."""
        memory_yield = self.yield_model.memory_yield(area_mm2)
        return die_cost_before_test(self.wafer, area_mm2, memory_yield)

    # -- embedded ---------------------------------------------------------

    def evaluate_macro(
        self,
        macro: EDRAMMacro,
        requirements: ApplicationRequirements,
    ) -> SolutionMetrics:
        """Analytic metrics of an eDRAM macro under the requirements.

        Memoized on ``(macro, requirements)``; see the class docstring
        for the invalidation rule.  The returned metrics are frozen, so
        sharing the cached instance is safe.
        """
        cache = self._macro_cache
        key = (macro, requirements)
        metrics = cache.entries.get(key)
        if metrics is not None:
            cache.hits += 1
            if cache.maxsize is not None:
                del cache.entries[key]  # re-insert to refresh recency
                cache.entries[key] = metrics
            return metrics
        cache.misses += 1
        metrics = self._evaluate_macro_uncached(macro, requirements)
        self._cache_store(key, metrics)
        return metrics

    def evaluate_macros(
        self,
        macros,
        requirements: ApplicationRequirements,
    ) -> list:
        """Batched :meth:`evaluate_macro` over many macros.

        Served by the numpy array-lane kernel of :mod:`repro.core.batch`
        when the batch is homogeneous enough (shared timing and area
        knobs), with the memo primed from the batched results — exactly
        like the process-pool fan-out path.  Memoized points are served
        from the cache (counted as hits) and only the misses are
        batched, so a warm re-explore behaves like the scalar memo.
        Falls back to the scalar per-macro loop otherwise.  Both paths
        return bit-identical metrics, in input order.
        """
        from repro.core.batch import (
            batch_fallback_reason,
            evaluate_macro_batch,
            macro_batch_homogeneous,
        )

        macros = list(macros)
        reason = batch_fallback_reason(macros)
        if reason is None and not macro_batch_homogeneous(macros):
            reason = "mixed area-model parameters across macros"
        if reason is not None:
            return [
                self.evaluate_macro(macro, requirements)
                for macro in macros
            ]
        entries = self._macro_cache.entries
        if entries:
            misses = [
                index
                for index, macro in enumerate(macros)
                if (macro, requirements) not in entries
            ]
        else:  # cold cache: skip the per-key hashing of the miss scan
            misses = range(len(macros))
        if len(misses) == len(macros):
            results = evaluate_macro_batch(
                self, macros, requirements
            ).metrics_list()
            self.prime_macro_cache(
                ((macro, requirements), metrics)
                for macro, metrics in zip(macros, results)
            )
            return results
        results: list = [None] * len(macros)
        if misses:
            batched = evaluate_macro_batch(
                self, [macros[index] for index in misses], requirements
            ).metrics_list()
            self.prime_macro_cache(
                ((macros[index], requirements), metrics)
                for index, metrics in zip(misses, batched)
            )
            for index, metrics in zip(misses, batched):
                results[index] = metrics
        for index, macro in enumerate(macros):
            if results[index] is None:
                results[index] = self.evaluate_macro(macro, requirements)
        return results

    def _evaluate_macro_uncached(
        self,
        macro: EDRAMMacro,
        requirements: ApplicationRequirements,
    ) -> SolutionMetrics:
        timing = macro.timing
        burst_bits = macro.width * timing.burst_length
        hit = self.row_hit_rate(
            requirements.locality, macro.page_bits, burst_bits
        )
        refresh_overhead = timing.t_rfc / (
            64e-3 * timing.clock_hz / macro.organization.n_rows
        )
        efficiency = self.bandwidth_efficiency(
            hit_rate=hit,
            burst_cycles=timing.burst_length,
            prep_cycles=timing.t_rp + timing.t_rcd,
            banks=macro.banks,
            refresh_overhead=min(0.5, refresh_overhead),
        )
        peak = macro.peak_bandwidth_bits_per_s
        sustained = peak * efficiency
        utilization = min(
            1.0, requirements.sustained_bandwidth_bits_per_s / max(sustained, 1.0)
        )
        base_latency_ns = (
            hit * timing.row_hit_latency_ns
            + (1 - hit) * timing.row_miss_latency_ns
            + timing.burst_length * timing.clock_period_ns
        )
        latency = self._loaded_latency_ns(base_latency_ns, utilization)
        # Power at the delivered operating point.
        busy, idle = _edram_core_power(
            macro.width, requirements.read_fraction
        )
        core_w = utilization * busy + (1 - utilization) * idle
        io_w = InterfacePowerModel(
            spec=ON_CHIP_BUS,
            width_bits=macro.width,
            frequency_hz=timing.clock_hz,
        ).power_w(utilization)
        area = macro.area_mm2()
        cost = self._silicon_cost(area) + self.test_cost_per_mbit * (
            macro.size_bits / MBIT
        )
        return SolutionMetrics(
            label=(
                f"eDRAM {macro.size_bits / MBIT:.2f} Mbit x{macro.width} "
                f"{macro.banks}b/p{macro.page_bits}"
            ),
            capacity_bits=macro.size_bits,
            peak_bandwidth_bits_per_s=peak,
            sustained_bandwidth_bits_per_s=sustained,
            mean_latency_ns=latency,
            power_w=core_w + io_w,
            area_mm2=area,
            n_chips=1,
            unit_cost=cost,
            embedded=True,
        )

    # -- discrete ---------------------------------------------------------

    def evaluate_discrete(
        self,
        system: DiscreteSystem,
        requirements: ApplicationRequirements,
    ) -> SolutionMetrics:
        """Analytic metrics of a commodity multi-chip system."""
        part = system.part
        timing = part.timing
        burst_bits = system.total_width_bits * timing.burst_length
        page_bits = part.organization.page_bits * system.n_chips
        hit = self.row_hit_rate(requirements.locality, page_bits, burst_bits)
        refresh_overhead = timing.t_rfc / (
            64e-3 * timing.clock_hz / part.organization.n_rows
        )
        efficiency = self.bandwidth_efficiency(
            hit_rate=hit,
            burst_cycles=timing.burst_length,
            prep_cycles=timing.t_rp + timing.t_rcd,
            banks=part.organization.n_banks,
            refresh_overhead=min(0.5, refresh_overhead),
        )
        peak = system.peak_bandwidth_bits_per_s
        sustained = peak * efficiency
        utilization = min(
            1.0,
            requirements.sustained_bandwidth_bits_per_s / max(sustained, 1.0),
        )
        base_latency_ns = (
            hit * timing.row_hit_latency_ns
            + (1 - hit) * timing.row_miss_latency_ns
            + timing.burst_length * timing.clock_period_ns
        )
        latency = self._loaded_latency_ns(base_latency_ns, utilization)
        core = CorePowerModel(PC100_IDD)
        busy = core.busy_power_w(requirements.read_fraction)
        idle = core.idle_power_w()
        core_w = system.n_chips * (
            utilization * busy + (1 - utilization) * idle
        )
        io_w = InterfacePowerModel(
            spec=OFF_CHIP_BUS,
            width_bits=system.total_width_bits,
            frequency_hz=timing.clock_hz,
        ).power_w(utilization)
        return SolutionMetrics(
            label=f"discrete {system.n_chips} x {part.name}",
            capacity_bits=system.total_bits,
            peak_bandwidth_bits_per_s=peak,
            sustained_bandwidth_bits_per_s=sustained,
            mean_latency_ns=latency,
            power_w=core_w + io_w,
            area_mm2=0.0,
            n_chips=system.n_chips,
            unit_cost=system.total_price,
            embedded=False,
        )

    # -- requirement checks -------------------------------------------------

    def meets(
        self,
        metrics: SolutionMetrics,
        requirements: ApplicationRequirements,
    ) -> bool:
        """Whether a solution satisfies all hard requirements."""
        if metrics.capacity_bits < requirements.capacity_bits:
            return False
        if (
            metrics.sustained_bandwidth_bits_per_s
            < requirements.sustained_bandwidth_bits_per_s
        ):
            return False
        if (
            requirements.max_latency_ns is not None
            and metrics.mean_latency_ns > requirements.max_latency_ns
        ):
            return False
        if (
            requirements.power_budget_w is not None
            and metrics.power_w > requirements.power_budget_w
        ):
            return False
        return True
