"""Parameter-sweep utilities for design-space studies.

The ablation benches and E5/E10 all share one shape: vary a few
organization knobs, run an evaluation per point, tabulate.  This module
factors that shape out: a :class:`Sweep` is a named cartesian product of
axes plus an evaluation function; the result supports filtering,
best-point queries and direct rendering through
:class:`~repro.reporting.tables.Table`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.core.parallel import ParallelConfig, parallel_map
from repro.reporting.tables import Table


@dataclass(frozen=True)
class _KwargsTask:
    """Picklable adapter: one parameter dict -> ``evaluate(**params)``."""

    evaluate: object

    def __call__(self, parameters: dict):
        return self.evaluate(**parameters)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep.

    Attributes:
        parameters: Axis name -> value for this point.
        result: Whatever the evaluation function returned.
    """

    parameters: dict
    result: object

    def __getitem__(self, key: str):
        if key not in self.parameters:
            raise ConfigurationError(f"unknown axis {key!r}")
        return self.parameters[key]


@dataclass
class SweepResult:
    """All evaluated points of one sweep."""

    points: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def where(self, **conditions) -> "SweepResult":
        """Points matching all axis=value conditions."""
        matched = [
            point
            for point in self.points
            if all(
                point.parameters.get(axis) == value
                for axis, value in conditions.items()
            )
        ]
        return SweepResult(points=matched)

    def best(self, key) -> SweepPoint:
        """Point minimizing ``key(result)``."""
        if not self.points:
            raise ConfigurationError("sweep produced no points")
        return min(self.points, key=lambda point: key(point.result))

    def series(self, axis: str, metric) -> list:
        """(axis value, metric(result)) pairs, sorted by axis value."""
        pairs = [
            (point[axis], metric(point.result)) for point in self.points
        ]
        return sorted(pairs, key=lambda pair: pair[0])

    def to_table(self, title: str, columns: dict) -> Table:
        """Render the sweep as a table.

        Args:
            title: Table caption.
            columns: Column header -> extractor; an extractor is either
                an axis name (string) or a callable on the result.
        """
        table = Table(title=title, columns=list(columns))
        for point in self.points:
            cells = []
            for extractor in columns.values():
                if isinstance(extractor, str):
                    cells.append(point[extractor])
                else:
                    cells.append(extractor(point.result))
            table.add_row(*cells)
        return table


@dataclass(frozen=True)
class Sweep:
    """A cartesian parameter sweep.

    Attributes:
        axes: Axis name -> list of values.
    """

    axes: dict

    def __post_init__(self) -> None:
        if not self.axes:
            raise ConfigurationError("sweep needs at least one axis")
        for name, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {name!r} has no values")

    @property
    def n_points(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def combinations(self) -> list:
        """Every axis combination as a parameter dict, in product order."""
        names = list(self.axes)
        return [
            dict(zip(names, values))
            for values in itertools.product(
                *(self.axes[name] for name in names)
            )
        ]

    def run(
        self,
        evaluate,
        skip_errors: bool = False,
        parallel: ParallelConfig | None = None,
    ) -> SweepResult:
        """Evaluate every axis combination.

        Args:
            evaluate: Callable taking the axis values as keyword
                arguments and returning the point's result.
            skip_errors: Silently drop combinations whose evaluation
                raises :class:`~repro.errors.ReproError` (useful when
                parts of the grid are unconstructible).
            parallel: Fan the points out over a process pool.  Points
                are chunked deterministically and merged back in
                product order, so the result is identical to a serial
                run (``evaluate`` must be picklable and side-effect
                free; otherwise the serial path is used).
        """
        from repro.errors import ReproError

        result = SweepResult()
        if parallel is not None:
            combos = self.combinations()
            catch = (ReproError,) if skip_errors else ()
            outcomes = parallel_map(
                _KwargsTask(evaluate), combos, config=parallel, catch=catch
            )
            for parameters, outcome in zip(combos, outcomes):
                if outcome.ok:
                    result.points.append(
                        SweepPoint(
                            parameters=parameters, result=outcome.value
                        )
                    )
            return result
        for parameters in self.combinations():
            try:
                outcome = evaluate(**parameters)
            except ReproError:
                if skip_errors:
                    continue
                raise
            result.points.append(
                SweepPoint(parameters=parameters, result=outcome)
            )
        return result
