"""Parameter-sweep utilities for design-space studies.

The ablation benches and E5/E10 all share one shape: vary a few
organization knobs, run an evaluation per point, tabulate.  This module
factors that shape out: a :class:`Sweep` is a named cartesian product of
axes plus an evaluation function; the result supports filtering,
best-point queries and direct rendering through
:class:`~repro.reporting.tables.Table`.

Resilience (see docs/RESILIENCE.md):

* failing points are quarantined as :class:`FailedPoint` entries on
  ``SweepResult.failures`` instead of silently vanishing (with
  ``skip_errors``) or aborting the sweep (per-chunk timeouts in the
  parallel path);
* ``Sweep.run(..., journal=path)`` appends every evaluated point to a
  JSONL checkpoint journal; re-running with the same journal skips the
  already-evaluated points and merges old and new outcomes back in
  product order, so an interrupted sweep resumes instead of restarting.
  The journal header carries a signature of the axes, and resuming
  against a journal written for different axes is rejected.

Telemetry (see docs/OBSERVABILITY.md):

* ``Sweep.run(..., ledger=path)`` streams run/span/chunk/quarantine
  events to a :class:`~repro.obs.ledger.RunLedger`; a resumed sweep
  reuses the same ledger file and continues its event-id sequence, so
  ``repro report`` sees one continuous run;
* ``Sweep.run(..., progress=True)`` renders a live rate/ETA/failure
  line on stderr (TTY only; see
  :class:`~repro.obs.progress.ProgressReporter`).

Neither changes a single evaluated value — bit-identity with the
telemetry off is pinned by ``tests/test_obs_ledger.py``.
"""

from __future__ import annotations

import base64
import hashlib
import itertools
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CancelledError, ConfigurationError
from repro.core.parallel import (
    ParallelConfig,
    PointOutcome,
    check_cancelled,
    parallel_map,
)
from repro.obs.ledger import coerce_ledger
from repro.obs.metrics import GLOBAL_METRICS
from repro.obs.progress import ProgressReporter
from repro.reporting.tables import Table


@dataclass(frozen=True)
class _KwargsTask:
    """Picklable adapter: one parameter dict -> ``evaluate(**params)``."""

    evaluate: object

    def __call__(self, parameters: dict):
        return self.evaluate(**parameters)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep.

    Attributes:
        parameters: Axis name -> value for this point.
        result: Whatever the evaluation function returned.
    """

    parameters: dict
    result: object

    def __getitem__(self, key: str):
        if key not in self.parameters:
            raise ConfigurationError(f"unknown axis {key!r}")
        return self.parameters[key]


@dataclass(frozen=True)
class FailedPoint:
    """One quarantined point of a sweep.

    Attributes:
        parameters: Axis name -> value for this point.
        error: ``repr`` of the captured exception, or the timeout
            message for points whose chunk missed its deadline.
    """

    parameters: dict
    error: str


@dataclass
class SweepResult:
    """All evaluated points of one sweep.

    ``points`` holds the successful evaluations in product order;
    ``failures`` the quarantined ones (skipped errors, timed-out
    chunks), also in product order.  ``len()`` and iteration cover the
    successes only, matching the pre-resilience contract.
    """

    points: list = field(default_factory=list)
    failures: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def where(self, **conditions) -> "SweepResult":
        """Points matching all axis=value conditions."""
        matched = [
            point
            for point in self.points
            if all(
                point.parameters.get(axis) == value
                for axis, value in conditions.items()
            )
        ]
        return SweepResult(points=matched)

    def best(self, key) -> SweepPoint:
        """Point minimizing ``key(result)``."""
        if not self.points:
            raise ConfigurationError("sweep produced no points")
        return min(self.points, key=lambda point: key(point.result))

    def series(self, axis: str, metric) -> list:
        """(axis value, metric(result)) pairs, sorted by axis value."""
        pairs = [
            (point[axis], metric(point.result)) for point in self.points
        ]
        return sorted(pairs, key=lambda pair: pair[0])

    def to_table(self, title: str, columns: dict) -> Table:
        """Render the sweep as a table.

        Args:
            title: Table caption.
            columns: Column header -> extractor; an extractor is either
                an axis name (string) or a callable on the result.
        """
        table = Table(title=title, columns=list(columns))
        for point in self.points:
            cells = []
            for extractor in columns.values():
                if isinstance(extractor, str):
                    cells.append(point[extractor])
                else:
                    cells.append(extractor(point.result))
            table.add_row(*cells)
        return table


@dataclass(frozen=True)
class Sweep:
    """A cartesian parameter sweep.

    Attributes:
        axes: Axis name -> list of values.
    """

    axes: dict

    def __post_init__(self) -> None:
        if not self.axes:
            raise ConfigurationError("sweep needs at least one axis")
        for name, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {name!r} has no values")

    @property
    def n_points(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def combinations(self) -> list:
        """Every axis combination as a parameter dict, in product order."""
        names = list(self.axes)
        return [
            dict(zip(names, values))
            for values in itertools.product(
                *(self.axes[name] for name in names)
            )
        ]

    def signature(self) -> str:
        """Stable digest of the axes, pinning a journal to this sweep."""
        digest = hashlib.sha256()
        for name in sorted(self.axes):
            digest.update(repr((name, list(self.axes[name]))).encode())
        digest.update(str(self.n_points).encode())
        return digest.hexdigest()[:16]

    def point_key(self, parameters: dict, **context) -> str:
        """Content fingerprint of one point for the durable result store.

        Combines the sweep's signature, any JSON-able ``context``
        (workload name, backend, flags — the same inputs
        :meth:`content_key` takes) and the point's parameters, via
        :func:`repro.core.store.point_fingerprint`.  Two points share a
        key exactly when evaluating them must produce the same result,
        which is the contract that lets a
        :class:`~repro.core.store.ResultStore` serve one's result for
        the other — locally or across nodes.
        """
        from repro.core.store import point_fingerprint

        return point_fingerprint(
            {"signature": self.signature(), "context": context},
            parameters,
        )

    def content_key(self, **context) -> str:
        """Content-addressed identity of this sweep plus its context.

        Unlike :meth:`signature` (a short journal pin over axes alone),
        this is a full sha256 over the *canonical JSON* of the axes —
        in insertion order, because :meth:`combinations` enumerates in
        axis order, so reordered axes are a different result — plus any
        JSON-able ``context`` (workload name, backend, flags).  Two
        sweeps share a key exactly when running them would produce the
        same result document, which is what a shared result cache must
        key on.  Axis values must be JSON-able scalars.
        """
        document = {
            "axes": [
                [name, list(values)] for name, values in self.axes.items()
            ],
            "context": context,
        }
        canonical = json.dumps(
            document, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def run(
        self,
        evaluate,
        skip_errors: bool = False,
        parallel: ParallelConfig | None = None,
        journal: str | Path | None = None,
        ledger=None,
        progress=None,
        executor=None,
        store=None,
        store_context: dict | None = None,
        cancel=None,
    ) -> SweepResult:
        """Evaluate every axis combination.

        Args:
            evaluate: Callable taking the axis values as keyword
                arguments and returning the point's result.
            skip_errors: Quarantine combinations whose evaluation
                raises :class:`~repro.errors.ReproError` as
                :class:`FailedPoint` entries (useful when parts of the
                grid are unconstructible) instead of aborting.
            parallel: Fan the points out over a process pool.  Points
                are chunked deterministically and merged back in
                product order, so the result is identical to a serial
                run (``evaluate`` must be picklable and side-effect
                free; otherwise the serial path is used).  With
                ``parallel.timeout_s`` set, hung points are quarantined
                as failures rather than hanging the sweep.
            journal: Checkpoint-journal path.  Completed points are
                appended as they finish; a rerun with the same path
                resumes from the journal, evaluating only the missing
                points.  A journal written for a different sweep (axes
                changed) is rejected with
                :class:`~repro.errors.ConfigurationError`.
            ledger: Run-ledger path or open
                :class:`~repro.obs.ledger.RunLedger`; the sweep streams
                ``run_start``/``chunk``/``quarantine``/``checkpoint``/
                ``run_end`` events there.  Reusing the path of an
                interrupted run continues its event-id sequence.
            progress: ``True`` for a live stderr rate/ETA line
                (auto-disabled off-TTY), or a pre-built
                :class:`~repro.obs.progress.ProgressReporter`.
            executor: A :class:`~repro.core.executor.Executor`
                (:class:`~repro.core.executor.LocalPoolExecutor`,
                :class:`~repro.core.executor.WorkQueueExecutor`, ...)
                to evaluate the points through.  Mutually exclusive
                with ``parallel`` (which is shorthand for a
                :class:`~repro.core.executor.LocalPoolExecutor`).
            store: Durable content-addressed result store — a path or
                open :class:`~repro.core.store.ResultStore`.  Points
                whose :meth:`point_key` is already stored are served
                without evaluation (across runs and across nodes);
                fresh evaluations are stored as they complete.
            store_context: Extra JSON-able context folded into each
                point's :meth:`point_key` (workload name, backend,
                flags) so stores shared across workloads never collide.
            cancel: Cooperative cancellation token (any object with a
                boolean ``cancelled`` attribute, e.g.
                :class:`~repro.serve.resilience.CancelToken`).  Checked
                at every point/round/chunk boundary; when it fires the
                sweep raises :class:`~repro.errors.CancelledError`
                after journaling the points already completed, so an
                identical rerun against the same journal resumes from
                the prefix.  The run-ledger's ``run_end`` records
                ``status="cancelled"``.
        """
        from repro.core.executor import coerce_executor
        from repro.core.store import coerce_store

        combos = self.combinations()
        # `parallel=` stays on its dedicated path (checkpoint rounds
        # sized from the config); coerce_executor still arbitrates the
        # two spellings so passing both is rejected.
        run_executor = (
            coerce_executor(executor, parallel)
            if executor is not None
            else None
        )
        run_store, owns_store = coerce_store(store)
        if store_context and run_store is None:
            raise ConfigurationError(
                "store_context requires store= to be set"
            )
        run_ledger, owns_ledger = coerce_ledger(ledger)
        if progress is True:
            progress = ProgressReporter(total=self.n_points)
        journal_log: SweepJournal | None = None
        completed: dict = {}
        started = time.perf_counter()
        status = "error"
        outcomes: dict = {}
        try:
            if journal is not None:
                journal_log = SweepJournal(journal, self.signature())
                completed = journal_log.load()
            if run_ledger is not None:
                run_ledger.event(
                    "run_start",
                    workload="sweep",
                    signature=self.signature(),
                    n_points=self.n_points,
                    axes={
                        name: len(values)
                        for name, values in self.axes.items()
                    },
                    skip_errors=skip_errors,
                    parallel=(
                        None
                        if parallel is None
                        else {
                            "workers": parallel.workers,
                            "chunk_size": parallel.chunk_size,
                            "timeout_s": parallel.timeout_s,
                        }
                    ),
                    executor=(
                        None
                        if run_executor is None
                        else run_executor.describe()
                    ),
                    store=run_store is not None,
                    journal=None if journal is None else str(journal),
                    journaled_points=len(completed),
                )
            if progress is not None:
                progress.start()
                if completed:
                    failed = sum(
                        1 for o in completed.values() if not o.ok
                    )
                    # prefill, not update: journal-resumed points must
                    # advance the bar without polluting the measured
                    # rate (an all-cached resume would otherwise render
                    # a garbage ETA from an instantaneous burst).
                    progress.prefill(
                        done=len(completed) - failed, failed=failed
                    )
            outcomes = self._evaluate(
                evaluate, combos, completed, skip_errors, parallel,
                journal_log, run_ledger, progress,
                executor=run_executor, store=run_store,
                store_context=store_context or {},
                cancel=cancel,
            )
            status = "ok"
        except CancelledError:
            status = "cancelled"
            raise
        finally:
            # Every resource releases even when another's release (or
            # the sweep itself) raised: a journal close failure must
            # not leak the ledger handle, and vice versa — resume
            # depends on the journal's buffered tail reaching disk.
            try:
                if journal_log is not None:
                    journal_log.close()
            finally:
                try:
                    if progress is not None:
                        progress.finish()
                finally:
                    try:
                        if owns_store and run_store is not None:
                            run_store.close()
                    finally:
                        if run_ledger is not None:
                            n_failed = sum(
                                1 for o in outcomes.values() if not o.ok
                            )
                            if GLOBAL_METRICS.enabled:
                                run_ledger.event(
                                    "metrics",
                                    snapshot=GLOBAL_METRICS.snapshot(),
                                )
                            run_ledger.event(
                                "run_end",
                                workload="sweep",
                                status=status,
                                n_ok=len(outcomes) - n_failed,
                                n_failed=n_failed,
                                s=round(
                                    time.perf_counter() - started, 6
                                ),
                            )
                            if owns_ledger:
                                run_ledger.close()
        result = SweepResult()
        for index, parameters in enumerate(combos):
            outcome = outcomes.get(index)
            if outcome is None:
                continue
            if outcome.ok:
                result.points.append(
                    SweepPoint(parameters=parameters, result=outcome.value)
                )
            else:
                result.failures.append(
                    FailedPoint(parameters=parameters, error=outcome.error)
                )
        return result

    def _evaluate(
        self, evaluate, combos, completed, skip_errors, parallel,
        journal_log, ledger=None, progress=None, executor=None,
        store=None, store_context=None, cancel=None,
    ) -> dict:
        """Evaluate the not-yet-journaled points; return index -> outcome."""
        from repro.errors import ReproError

        check_cancelled(cancel)
        outcomes = dict(completed)
        remaining = [
            index for index in range(len(combos)) if index not in outcomes
        ]
        if not remaining:
            return outcomes
        keys: dict | None = None
        record = None
        if store is not None:
            from repro.core.store import decode_outcome, encode_outcome

            keys = {
                index: self.point_key(
                    combos[index], **(store_context or {})
                )
                for index in remaining
            }

            def record(index, outcome):
                store.put(keys[index], encode_outcome(outcome))

            # Store pre-filter: fingerprints already evaluated — by a
            # previous run, another process, or another node — are
            # served without evaluation.
            served_ok = served_failed = 0
            fresh = []
            for index in remaining:
                text = store.get(keys[index])
                outcome = (
                    decode_outcome(text) if text is not None else None
                )
                if outcome is None:
                    fresh.append(index)
                    continue
                outcomes[index] = outcome
                if journal_log is not None:
                    journal_log.append(index, outcome)
                if outcome.ok:
                    served_ok += 1
                else:
                    served_failed += 1
            remaining = fresh
            if served_ok or served_failed:
                if progress is not None:
                    progress.prefill(
                        done=served_ok, failed=served_failed
                    )
                if ledger is not None:
                    ledger.event(
                        "store_hits", points=served_ok + served_failed
                    )
            if not remaining:
                return outcomes
        if executor is not None:
            catch = (ReproError,) if skip_errors else ()
            task = _KwargsTask(evaluate)
            round_outcomes = executor.map(
                task,
                [combos[index] for index in remaining],
                catch=catch,
                keys=(
                    [keys[index] for index in remaining]
                    if keys is not None
                    else None
                ),
                ledger=ledger,
                progress=progress,
                cancel=cancel,
            )
            for index, outcome in zip(remaining, round_outcomes):
                outcomes[index] = outcome
                if journal_log is not None:
                    journal_log.append(index, outcome)
                if record is not None:
                    record(index, outcome)
                if ledger is not None and not outcome.ok:
                    ledger.event(
                        "quarantine",
                        index=index,
                        parameters=combos[index],
                        error=outcome.error,
                    )
            if ledger is not None and journal_log is not None:
                ledger.event("checkpoint", points=len(remaining))
            return outcomes
        if parallel is not None:
            catch = (ReproError,) if skip_errors else ()
            task = _KwargsTask(evaluate)
            for indices in _rounds(remaining, parallel, journal_log):
                check_cancelled(cancel)
                round_outcomes = parallel_map(
                    task,
                    [combos[index] for index in indices],
                    config=parallel,
                    catch=catch,
                    ledger=ledger,
                    progress=progress,
                    cancel=cancel,
                )
                for index, outcome in zip(indices, round_outcomes):
                    outcomes[index] = outcome
                    if journal_log is not None:
                        journal_log.append(index, outcome)
                    if record is not None:
                        record(index, outcome)
                    if ledger is not None and not outcome.ok:
                        ledger.event(
                            "quarantine",
                            index=index,
                            parameters=combos[index],
                            error=outcome.error,
                        )
                if ledger is not None and journal_log is not None:
                    ledger.event("checkpoint", points=len(indices))
            return outcomes
        evaluate_batch = getattr(evaluate, "evaluate_batch", None)
        if evaluate_batch is not None:
            # Batched fast path: one vectorized call over the remaining
            # points.  Any ReproError drops to the per-point loop below,
            # which localizes the failing point (and quarantines it
            # under skip_errors) exactly as before.
            try:
                values = evaluate_batch(
                    [combos[index] for index in remaining]
                )
            except ReproError:
                values = None
            if values is not None and len(values) == len(remaining):
                for index, value in zip(remaining, values):
                    outcome = PointOutcome(ok=True, value=value)
                    outcomes[index] = outcome
                    if journal_log is not None:
                        journal_log.append(index, outcome)
                    if record is not None:
                        record(index, outcome)
                if progress is not None:
                    progress.update(done=len(remaining))
                if ledger is not None and journal_log is not None:
                    ledger.event("checkpoint", points=len(remaining))
                return outcomes
        for index in remaining:
            check_cancelled(cancel)
            try:
                value = evaluate(**combos[index])
            except ReproError as error:
                if not skip_errors:
                    raise
                outcome = PointOutcome(ok=False, error=repr(error))
            else:
                outcome = PointOutcome(ok=True, value=value)
            outcomes[index] = outcome
            if journal_log is not None:
                journal_log.append(index, outcome)
            if record is not None:
                record(index, outcome)
            if ledger is not None and not outcome.ok:
                ledger.event(
                    "quarantine",
                    index=index,
                    parameters=combos[index],
                    error=outcome.error,
                )
            if progress is not None:
                progress.update(
                    done=1 if outcome.ok else 0,
                    failed=0 if outcome.ok else 1,
                )
        if ledger is not None and journal_log is not None:
            ledger.event("checkpoint", points=len(remaining))
        return outcomes


def _rounds(remaining: list, parallel: ParallelConfig, journal_log) -> list:
    """Split the remaining indices into checkpoint rounds.

    Without a journal everything goes through one ``parallel_map`` call
    (the pre-resilience behavior, bit for bit).  With a journal the
    points are processed in rounds of ``workers * chunk_size`` so a
    checkpoint lands between pool runs and an interrupted sweep loses at
    most one round.
    """
    if journal_log is None:
        return [remaining]
    workers = parallel.resolved_workers(len(remaining))
    chunk_size = parallel.chunk_size
    if chunk_size is None:
        from repro.units import ceil_div

        chunk_size = max(1, ceil_div(len(remaining), workers * 4))
    per_round = max(1, workers * chunk_size)
    return [
        remaining[start : start + per_round]
        for start in range(0, len(remaining), per_round)
    ]


class SweepJournal:
    """Append-only JSONL checkpoint journal for :meth:`Sweep.run`.

    Line 1 is a header carrying the owning sweep's signature; every
    following line is one evaluated point::

        {"signature": "9f2c...", "n_records": null}
        {"index": 0, "ok": true, "value": "<base64 pickle>"}
        {"index": 1, "ok": false, "error": "InfeasibleError(...)"}

    Values are pickled (they are arbitrary evaluation results) and
    base64-wrapped so the journal stays line-oriented UTF-8.  A torn
    final line — the signature of a run killed mid-write — is ignored
    on load, so resume is safe after any interruption.
    """

    def __init__(self, path: str | Path, signature: str) -> None:
        self.path = Path(path)
        self.signature = signature
        self._handle = None

    def load(self) -> dict:
        """Read the journal; return index -> :class:`PointOutcome`.

        Raises:
            ConfigurationError: The journal belongs to a sweep with a
                different signature (the axes changed under it).
        """
        if not self.path.exists():
            return {}
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"sweep journal {self.path} has a corrupt header: {error}"
            ) from error
        if header.get("signature") != self.signature:
            raise ConfigurationError(
                f"sweep journal {self.path} was written for a different "
                "sweep (axes changed?); delete it or pass a fresh path"
            )
        outcomes: dict = {}
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail write from an interrupted run
            index = record.get("index")
            if not isinstance(index, int):
                break
            if record.get("ok"):
                try:
                    value = pickle.loads(
                        base64.b64decode(record["value"])
                    )
                except Exception:
                    break  # torn payload: stop trusting the tail
                outcomes[index] = PointOutcome(ok=True, value=value)
            else:
                outcomes[index] = PointOutcome(
                    ok=False, error=record.get("error")
                )
        return outcomes

    def append(self, index: int, outcome: PointOutcome) -> None:
        """Checkpoint one evaluated point (flushed immediately)."""
        handle = self._open()
        if outcome.ok:
            payload = {
                "index": index,
                "ok": True,
                "value": base64.b64encode(
                    pickle.dumps(outcome.value)
                ).decode("ascii"),
            }
        else:
            payload = {"index": index, "ok": False, "error": outcome.error}
        handle.write(json.dumps(payload) + "\n")
        handle.flush()

    def close(self) -> None:
        """Flush, fsync and release the journal handle.

        Runs from ``Sweep.run``'s finally block on *every* exit path —
        success, quarantined failure, or a raised exception mid-sweep —
        so the buffered tail records a resume depends on always reach
        disk.  fsync failures (e.g. pipes in tests) must not mask the
        sweep's own exception, but the handle is released regardless.
        """
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            finally:
                self._handle.close()
                self._handle = None

    def _open(self):
        if self._handle is None:
            fresh = (
                not self.path.exists() or self.path.stat().st_size == 0
            )
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._handle.write(
                    json.dumps({"signature": self.signature}) + "\n"
                )
                self._handle.flush()
        return self._handle
