"""NumPy-batched analytic evaluation: array lanes instead of point loops.

The scalar :class:`~repro.core.evaluator.Evaluator` costs ~15-20 us per
design point, almost all of it Python interpreter overhead — the actual
arithmetic is a few dozen flops.  A design-space exploration evaluates
hundreds of points against one requirement, so this module evaluates
them as *lanes of numpy arrays* instead: one vectorized pass over the
whole grid, with results kept as a struct-of-arrays
(:class:`BatchEvaluation`) that feeds the feasibility filter and the
vectorized Pareto engine directly.

Two entry points share the kernel:

* :func:`evaluate_macro_grid` takes raw parameter lanes (sizes, widths,
  banks, pages as arrays) and never touches a macro object — this is
  the sweep-scale fast path (sub-microsecond per point);
* :func:`evaluate_macro_batch` gathers the lanes from a list of
  :class:`~repro.dram.edram.EDRAMMacro` objects, for callers that
  already hold macros (the explorer).

Bit-identity contract (pinned by ``tests/test_core_batch.py``): every
lane reproduces the scalar evaluator's result to **exact float
equality**, not a tolerance.  Three rules make that possible:

* the vector expressions replicate the scalar code's operation order
  exactly (IEEE-754 ``+ - * /``, ``min``/``max`` are deterministic, so
  same order means same bits);
* anything transcendental or control-flow-heavy — the redundancy-repair
  yield's ``exp`` series and the gross-die truncation inside the cost
  model — is computed by the *scalar* helpers once per unique die area
  (a design space has few distinct areas; the values are memoized
  module-wide, keyed by the frozen wafer/yield assumptions) and
  scattered back;
* per-width core power comes from the same memoized
  ``_edram_core_power`` the scalar path uses.

Inputs outside the analyzed envelope (mixed timing parameters across
macros, mixed parts across discrete systems) are refused by
:func:`batch_fallback_reason`; callers then fall back to the scalar
reference loop, mirroring how the event simulator backend declines
configurations it cannot prove.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.area.process import BaseProcess, DRAM_BASED_025
from repro.core.metrics import SolutionMetrics
from repro.core.requirements import ApplicationRequirements
from repro.dram.timing import TimingParameters
from repro.units import MBIT


def batch_fallback_reason(macros) -> str | None:
    """Why ``macros`` cannot be evaluated as one batch (None = they can).

    The vector expressions assume the timing parameters are shared
    scalars; a mixed-timing batch would need per-lane timing arrays and
    is rare enough to serve from the scalar loop instead.
    """
    if not macros:
        return "empty batch"
    timing = macros[0].timing
    for macro in macros:
        if macro.timing is not timing and macro.timing != timing:
            return "mixed timing parameters across macros"
    return None


def discrete_batch_fallback_reason(systems) -> str | None:
    """Why ``systems`` cannot be evaluated as one batch (None = they can)."""
    if not systems:
        return "empty batch"
    part = systems[0].part
    for system in systems:
        if system.part is not part and system.part != part:
            return "mixed parts across systems"
    return None


@lru_cache(maxsize=4096)
def _silicon_cost(wafer, yield_model, area_mm2: float) -> float:
    """Memoized ``Evaluator._silicon_cost``.

    Exactly the scalar computation (Poisson repair-yield series,
    gross-die truncation and all); the memo key includes the frozen
    wafer and yield assumptions, so evaluators with different economics
    never share entries.  A design space revisits the same few die
    areas hundreds of times.
    """
    from repro.cost.wafer import die_cost_before_test

    return die_cost_before_test(
        wafer, area_mm2, yield_model.memory_yield(area_mm2)
    )


@lru_cache(maxsize=4096)
def _macro_area_mm2(
    size_bits: int, width: int, spares: int, process: BaseProcess
) -> float:
    """Memoized ``EDRAMMacro.area_mm2`` as a pure function of its key."""
    from repro.area.macro import MacroAreaModel

    model = MacroAreaModel(
        process=process, redundancy_area_fraction=0.005 * spares
    )
    return model.total_area_mm2(size_bits, width)


@lru_cache(maxsize=128)
def _economics_lanes(
    size_bytes: bytes,
    width_bytes: bytes,
    spares: int,
    process: BaseProcess,
    wafer,
    yield_model,
) -> tuple:
    """(area, silicon-cost) lanes for one (size, width) grid.

    Keyed by the raw lane bytes so a repeated grid — the common sweep
    shape — pays one dict hit instead of a unique-scan plus per-area
    memo lookups every call.  The returned arrays come from
    ``np.frombuffer``-derived indexing and are treated as immutable.
    """
    size = np.frombuffer(size_bytes, dtype=np.int64)
    width = np.frombuffer(width_bytes, dtype=np.int64)
    pair_key = (size << 20) + width
    unique_keys, inverse = np.unique(pair_key, return_inverse=True)
    unique_area = np.empty(len(unique_keys), dtype=np.float64)
    unique_cost = np.empty(len(unique_keys), dtype=np.float64)
    for index, key in enumerate(unique_keys):
        k = int(key)
        area_value = _macro_area_mm2(
            k >> 20, k & ((1 << 20) - 1), spares, process
        )
        unique_area[index] = area_value
        unique_cost[index] = _silicon_cost(wafer, yield_model, area_value)
    return unique_area[inverse], unique_cost[inverse]


@lru_cache(maxsize=128)
def _core_power_lanes(width_bytes: bytes, read_fraction: float) -> tuple:
    """(busy, idle) core-power lanes for one width grid.

    Scalars when the grid has a single width (the usual case — the
    array broadcast is then free); parallel lanes otherwise.  Values
    come from the same memoized ``_edram_core_power`` the scalar
    evaluator uses, so they are bit-identical by construction.
    """
    from repro.core.evaluator import _edram_core_power

    width = np.frombuffer(width_bytes, dtype=np.int64)
    unique = np.unique(width)
    if len(unique) == 1:
        return _edram_core_power(int(unique[0]), read_fraction)
    pairs = {
        int(w): _edram_core_power(int(w), read_fraction) for w in unique
    }
    busy = np.empty(len(width), dtype=np.float64)
    idle = np.empty(len(width), dtype=np.float64)
    for index, w in enumerate(width):
        pair = pairs[int(w)]
        busy[index] = pair[0]
        idle[index] = pair[1]
    return busy, idle


@dataclass(frozen=True)
class BatchEvaluation:
    """Struct-of-arrays outcome of one batched evaluation.

    One row per evaluated configuration, in input order.  The arrays
    are the columns :meth:`SolutionMetrics.objective_tuple` and
    :meth:`Evaluator.meets` consume; :meth:`metrics_list` materializes
    the equivalent :class:`SolutionMetrics` objects on demand (that
    costs a few us per point, so sweep-scale consumers should stay on
    the arrays).

    Attributes:
        label_of: ``label_of(index)`` builds row ``index``'s metric
            label (lazy: labels cost ~0.5 us each and only matter when
            rows are materialized).
        requirements: The requirement the batch was evaluated against.
        capacity_bits: Installed capacity per row (int64).
        peak: Peak bandwidth, bits/s.
        sustained: Sustained bandwidth, bits/s.
        latency_ns: Loaded mean latency.
        power_w: Core + interface power.
        area_mm2: Silicon area (0 for discrete rows).
        n_chips: Devices per row (1 for embedded).
        unit_cost: Unit cost.
        embedded: Whether the rows are embedded solutions.
    """

    label_of: object
    requirements: ApplicationRequirements
    capacity_bits: np.ndarray
    peak: np.ndarray
    sustained: np.ndarray
    latency_ns: np.ndarray
    power_w: np.ndarray
    area_mm2: np.ndarray
    n_chips: np.ndarray
    unit_cost: np.ndarray
    embedded: bool

    def __len__(self) -> int:
        return len(self.capacity_bits)

    def feasible_mask(self) -> np.ndarray:
        """Vectorized :meth:`Evaluator.meets` over all rows."""
        requirements = self.requirements
        mask = (self.capacity_bits >= requirements.capacity_bits) & (
            self.sustained >= requirements.sustained_bandwidth_bits_per_s
        )
        if requirements.max_latency_ns is not None:
            mask &= self.latency_ns <= requirements.max_latency_ns
        if requirements.power_budget_w is not None:
            mask &= self.power_w <= requirements.power_budget_w
        return mask

    def objective_matrix(self) -> np.ndarray:
        """Rows of :meth:`SolutionMetrics.objective_tuple`, stacked."""
        return np.column_stack(
            (
                self.power_w,
                self.area_mm2,
                self.unit_cost,
                -self.sustained,
                self.latency_ns,
            )
        )

    def metrics(self, index: int) -> SolutionMetrics:
        """Materialize one row as a :class:`SolutionMetrics`."""
        return SolutionMetrics(
            label=self.label_of(index),
            capacity_bits=int(self.capacity_bits[index]),
            peak_bandwidth_bits_per_s=float(self.peak[index]),
            sustained_bandwidth_bits_per_s=float(self.sustained[index]),
            mean_latency_ns=float(self.latency_ns[index]),
            power_w=float(self.power_w[index]),
            area_mm2=float(self.area_mm2[index]),
            n_chips=int(self.n_chips[index]),
            unit_cost=float(self.unit_cost[index]),
            embedded=self.embedded,
        )

    def metrics_list(self) -> list:
        """Materialize every row, in input order."""
        return [self.metrics(index) for index in range(len(self))]


# -- embedded ----------------------------------------------------------------


def evaluate_macro_grid(
    evaluator,
    requirements: ApplicationRequirements,
    size_bits,
    width,
    banks,
    page_bits,
    timing: TimingParameters | None = None,
    redundancy_spares: int = 4,
    process: BaseProcess = DRAM_BASED_025,
) -> BatchEvaluation:
    """Vectorized ``Evaluator.evaluate_macro`` over raw parameter lanes.

    Args:
        evaluator: Scalar :class:`Evaluator` supplying the economics
            (wafer, yield, test cost, utilization knee).
        requirements: Requirement every lane is evaluated against.
        size_bits, width, banks, page_bits: Equal-length integer
            sequences — one design point per index.  Every combination
            must be a constructible macro; this kernel computes, it
            does not validate (use :class:`BatchedMacroSweepTask` or
            the explorer for rule checking).
        timing: Shared timing parameters (default: the eDRAM concept's).
        redundancy_spares, process: Shared area-model knobs, matching
            the :class:`EDRAMMacro` defaults.

    Returns:
        A :class:`BatchEvaluation` bit-identical, row by row, to the
        scalar ``evaluate_macro`` over the same points.
    """
    from repro.power.interface import ON_CHIP_BUS

    if timing is None:
        from repro.dram.edram import EDRAM_TIMING

        timing = EDRAM_TIMING
    locality = requirements.locality
    if not 0 <= locality <= 1:
        from repro.errors import ConfigurationError

        raise ConfigurationError("locality must be in [0, 1]")

    size_i = np.asarray(size_bits, dtype=np.int64)
    width_i = np.asarray(width, dtype=np.int64)
    banks_i = np.asarray(banks, dtype=np.int64)
    page_i = np.asarray(page_bits, dtype=np.int64)
    width_f = width_i.astype(np.float64)
    banks_f = banks_i.astype(np.float64)

    # Die area and silicon cost: pure functions of (size, width),
    # computed by the exact scalar models once per unique combination
    # and memoized for the whole grid.
    area, silicon = _economics_lanes(
        size_i.tobytes(),
        width_i.tobytes(),
        redundancy_spares,
        process,
        evaluator.wafer,
        evaluator.yield_model,
    )

    burst = timing.burst_length
    # row_hit_rate: locality * max(0, 1 - burst_bits / page_bits)
    hit = locality * np.maximum(
        0.0, 1.0 - (width_i * burst) / page_i
    )
    miss = 1.0 - hit
    # refresh_overhead = t_rfc / (64e-3 * clock_hz / n_rows)
    n_rows = (size_i // (banks_i * page_i)).astype(np.float64)
    refresh_overhead = timing.t_rfc / (
        (64e-3 * timing.clock_hz) / n_rows
    )
    # bandwidth_efficiency
    cycles_single = burst + miss * (timing.t_rp + timing.t_rcd)
    overlapped = np.maximum(cycles_single / banks_f, burst)
    efficiency = (burst / overlapped) * (
        1.0 - np.minimum(0.5, refresh_overhead)
    )
    peak = width_f * timing.clock_hz
    sustained = peak * efficiency
    utilization = np.minimum(
        1.0,
        requirements.sustained_bandwidth_bits_per_s
        / np.maximum(sustained, 1.0),
    )
    base_latency_ns = (
        hit * timing.row_hit_latency_ns
        + miss * timing.row_miss_latency_ns
        + burst * timing.clock_period_ns
    )
    # _loaded_latency_ns with the utilization knee clamp
    clamped = np.minimum(utilization, evaluator.max_utilization)
    latency = base_latency_ns * (
        1.0 + clamped / (2.0 * (1.0 - clamped))
    )
    # Core power: (busy, idle) per unique width from the shared memo.
    busy, idle = _core_power_lanes(
        width_i.tobytes(), requirements.read_fraction
    )
    core_w = utilization * busy + (1 - utilization) * idle
    # InterfacePowerModel.power_w, same association order:
    # (((activity * energy) * width) * freq) * u, then * (1 + overhead).
    spec = ON_CHIP_BUS
    line = spec.activity * spec.energy_per_line_toggle_j()
    io_w = (((line * width_f) * timing.clock_hz) * utilization) * (
        1.0 + spec.control_overhead
    )
    unit_cost = silicon + evaluator.test_cost_per_mbit * (
        size_i / MBIT
    )

    def label_of(index: int) -> str:
        return (
            f"eDRAM {size_i[index] / MBIT:.2f} Mbit x{width_i[index]} "
            f"{banks_i[index]}b/p{page_i[index]}"
        )

    return BatchEvaluation(
        label_of=label_of,
        requirements=requirements,
        capacity_bits=size_i,
        peak=peak,
        sustained=sustained,
        latency_ns=latency,
        power_w=core_w + io_w,
        area_mm2=area,
        n_chips=np.ones(len(size_i), dtype=np.int64),
        unit_cost=unit_cost,
        embedded=True,
    )


def evaluate_macro_batch(
    evaluator, macros, requirements: ApplicationRequirements
) -> BatchEvaluation:
    """Vectorized ``Evaluator.evaluate_macro`` over a list of macros.

    Gathers the parameter lanes from the macro objects and delegates to
    :func:`evaluate_macro_grid`.  Callers must first consult
    :func:`batch_fallback_reason`.  Raises the same
    :class:`~repro.errors.ConfigurationError` the scalar evaluator
    would when a configuration cannot be costed (e.g. a die too large
    for the wafer).

    All macros must share ``timing`` (checked by the fallback gate) and
    the area-model knobs; mixed ``redundancy_spares``/``process``
    batches are evaluated in homogeneous sub-batches by the caller-
    facing :meth:`Evaluator.evaluate_macros`, which simply falls back
    to the scalar loop for such exotic mixes.
    """
    first = macros[0]
    lanes = [
        (macro.size_bits, macro.width, macro.banks, macro.page_bits)
        for macro in macros
    ]
    size_bits, width, banks, page_bits = zip(*lanes)
    return evaluate_macro_grid(
        evaluator,
        requirements,
        size_bits=size_bits,
        width=width,
        banks=banks,
        page_bits=page_bits,
        timing=first.timing,
        redundancy_spares=first.redundancy_spares,
        process=first.process,
    )


def macro_batch_homogeneous(macros) -> bool:
    """Whether all macros share the area-model knobs (spares, process)."""
    first = macros[0]
    spares = first.redundancy_spares
    process = first.process
    for macro in macros:
        if macro.redundancy_spares != spares or macro.process != process:
            return False
    return True


# -- discrete ----------------------------------------------------------------


def evaluate_discrete_batch(
    evaluator, systems, requirements: ApplicationRequirements
) -> BatchEvaluation:
    """Vectorized ``Evaluator.evaluate_discrete`` over many systems.

    All systems must share one part (see
    :func:`discrete_batch_fallback_reason`).
    """
    from repro.power.idd import PC100_IDD, CorePowerModel
    from repro.power.interface import OFF_CHIP_BUS

    part = systems[0].part
    timing = part.timing
    n = len(systems)
    n_chips_i = np.array(
        [system.n_chips for system in systems], dtype=np.int64
    )
    n_chips = n_chips_i.astype(np.float64)
    total_width = n_chips_i * part.width_bits
    burst_bits = total_width * timing.burst_length
    page_bits = part.organization.page_bits * n_chips_i
    hit = requirements.locality * np.maximum(
        0.0, 1.0 - burst_bits / page_bits
    )
    miss = 1.0 - hit
    refresh_overhead = timing.t_rfc / (
        (64e-3 * timing.clock_hz) / part.organization.n_rows
    )
    burst = timing.burst_length
    cycles_single = burst + miss * (timing.t_rp + timing.t_rcd)
    overlapped = np.maximum(
        cycles_single / part.organization.n_banks, burst
    )
    efficiency = (burst / overlapped) * (
        1.0 - min(0.5, refresh_overhead)
    )
    peak = total_width.astype(np.float64) * timing.clock_hz
    sustained = peak * efficiency
    utilization = np.minimum(
        1.0,
        requirements.sustained_bandwidth_bits_per_s
        / np.maximum(sustained, 1.0),
    )
    base_latency_ns = (
        hit * timing.row_hit_latency_ns
        + miss * timing.row_miss_latency_ns
        + burst * timing.clock_period_ns
    )
    clamped = np.minimum(utilization, evaluator.max_utilization)
    latency = base_latency_ns * (
        1.0 + clamped / (2.0 * (1.0 - clamped))
    )
    core = CorePowerModel(PC100_IDD)
    busy = core.busy_power_w(requirements.read_fraction)
    idle = core.idle_power_w()
    core_w = n_chips * (
        utilization * busy + (1 - utilization) * idle
    )
    spec = OFF_CHIP_BUS
    line = spec.activity * spec.energy_per_line_toggle_j()
    io_w = (
        ((line * total_width.astype(np.float64)) * timing.clock_hz)
        * utilization
    ) * (1.0 + spec.control_overhead)

    def label_of(index: int) -> str:
        return f"discrete {n_chips_i[index]} x {part.name}"

    return BatchEvaluation(
        label_of=label_of,
        requirements=requirements,
        capacity_bits=n_chips_i * part.capacity_bits,
        peak=peak,
        sustained=sustained,
        latency_ns=latency,
        power_w=core_w + io_w,
        area_mm2=np.zeros(n, dtype=np.float64),
        n_chips=n_chips_i,
        unit_cost=n_chips * part.unit_price,
        embedded=False,
    )


# -- sweep integration -------------------------------------------------------


@dataclass(frozen=True)
class BatchedMacroSweepTask:
    """Sweep-compatible macro evaluation with a batched fast path.

    ``Sweep.run`` calls ``evaluate_batch`` with all remaining parameter
    dicts when the callable offers one (see
    :meth:`repro.core.sweep.Sweep.run`) and falls back to per-point
    ``__call__`` — the scalar reference — when the batch raises.  Both
    paths produce bit-identical :class:`SolutionMetrics`.

    Attributes:
        evaluator: Shared analytic evaluator (its memo is primed by the
            batched path, exactly like the process-pool fan-out).
        requirements: Requirement every point is evaluated against.
    """

    evaluator: object
    requirements: ApplicationRequirements

    def _macro(self, parameters: dict):
        from repro.dram.edram import EDRAMMacro

        return EDRAMMacro(**parameters)

    def __call__(self, **parameters):
        return self.evaluator.evaluate_macro(
            self._macro(parameters), self.requirements
        )

    def evaluate_batch(self, points) -> list:
        macros = [self._macro(parameters) for parameters in points]
        return self.evaluator.evaluate_macros(macros, self.requirements)
