"""Design-space exploration: enumerate, evaluate, filter, rank.

Section 3's free parameters — module size, interface width, number of
banks, page length — define the space; the explorer enumerates every
constructible combination (per the Siemens concept rules), evaluates each
against the application requirements, and splits the result into feasible
solutions and the Pareto frontier.  The discrete commodity alternative is
evaluated alongside, so every exploration answers the embedded-vs-
discrete question too.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT, ceil_div
from repro.core.evaluator import Evaluator
from repro.core.metrics import SolutionMetrics
from repro.core.parallel import ParallelConfig
from repro.core.pareto import pareto_frontier
from repro.core.requirements import ApplicationRequirements
from repro.dram.catalog import COMMODITY_PARTS, smallest_system
from repro.dram.edram import EDRAMMacro, SIEMENS_CONCEPT, SiemensConceptRules
from repro.dram.timing import PC100_TIMING


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of a design-space sweep.

    Attributes:
        requirements: The application explored for.
        evaluated: Every evaluated configuration's metrics.
        feasible: Metrics meeting all hard requirements.
        frontier: Pareto-optimal subset of the feasible set.
        discrete_baseline: The commodity alternative, for comparison.
    """

    requirements: ApplicationRequirements
    evaluated: list
    feasible: list
    frontier: list
    discrete_baseline: SolutionMetrics | None

    @property
    def n_explored(self) -> int:
        return len(self.evaluated)

    def best_by(self, key) -> SolutionMetrics:
        """Best feasible solution under a key function (minimized)."""
        if not self.feasible:
            raise InfeasibleError(
                f"no feasible configuration for {self.requirements.name}"
            )
        return min(self.feasible, key=key)

    @property
    def min_power(self) -> SolutionMetrics:
        return self.best_by(lambda m: m.power_w)

    @property
    def min_area(self) -> SolutionMetrics:
        return self.best_by(lambda m: m.area_mm2)

    @property
    def min_cost(self) -> SolutionMetrics:
        return self.best_by(lambda m: m.unit_cost)

    @property
    def max_bandwidth(self) -> SolutionMetrics:
        return self.best_by(lambda m: -m.sustained_bandwidth_bits_per_s)


@dataclass
class DesignSpaceExplorer:
    """Enumerates and evaluates the eDRAM configuration space.

    Attributes:
        rules: Constructibility rules (Siemens concept by default).
        evaluator: Analytic evaluator.
        widths: Interface widths to consider (None = all powers of two in
            the concept's range).
        bank_options: Bank counts to consider.
        size_headroom: Capacity slack factors to consider beyond the
            minimum constructible size (exploring slightly larger modules
            sometimes buys organization freedom).
        pareto_engine: Frontier implementation passed through to
            :func:`~repro.core.pareto.pareto_frontier` ("auto" picks the
            vectorized engine; "python" forces the reference loop, used
            by the perf benchmark as the baseline).
        batch: Serve serial evaluations from the numpy-batched kernel
            (:meth:`Evaluator.evaluate_macros`), which falls back to the
            scalar loop for heterogeneous batches.  False forces the
            scalar reference loop — the perf benchmark's baseline.
    """

    rules: SiemensConceptRules = SIEMENS_CONCEPT
    evaluator: Evaluator = field(default_factory=Evaluator)
    widths: tuple | None = None
    bank_options: tuple = (1, 2, 4, 8, 16)
    size_headroom: tuple = (1.0, 1.25)
    pareto_engine: str = "auto"
    batch: bool = True

    #: (size, width, banks, page) combinations that raised
    #: ConfigurationError once — never re-attempted by ``enumerate``.
    _invalid_combos: set = field(
        default_factory=set, init=False, repr=False
    )

    def candidate_widths(self) -> list:
        if self.widths is not None:
            return list(self.widths)
        widths = []
        w = self.rules.min_width
        while w <= self.rules.max_width:
            widths.append(w)
            w *= 2
        return widths

    def candidate_sizes(self, required_bits: int) -> list:
        """Constructible sizes covering the requirement (with headroom)."""
        if required_bits <= 0:
            raise ConfigurationError("required capacity must be positive")
        step = min(self.rules.block_sizes_bits)
        sizes = []
        for headroom in self.size_headroom:
            target = int(required_bits * headroom)
            size = max(
                self.rules.min_module_bits,
                ceil_div(target, step) * step,
            )
            if size <= self.rules.max_module_bits and size not in sizes:
                sizes.append(size)
        if not sizes:
            raise InfeasibleError(
                f"requirement of {required_bits / MBIT:.1f} Mbit exceeds the "
                f"concept's {self.rules.max_module_bits / MBIT:.0f} Mbit limit"
            )
        return sizes

    def enumerate(self, requirements: ApplicationRequirements) -> list:
        """All constructible macros covering the capacity requirement.

        Combinations that cannot construct are pre-checked against the
        cheap concept rules (width vs page, bank/page divisibility) and
        remembered across calls, so repeated enumerations never pay for
        re-raising the same :class:`ConfigurationError`.
        """
        macros = []
        invalid = self._invalid_combos
        for size in self.candidate_sizes(requirements.capacity_bits):
            for width in self.candidate_widths():
                for banks in self.bank_options:
                    for page in self.rules.allowed_page_bits:
                        if width > page or size % (banks * page):
                            continue
                        combo = (size, width, banks, page)
                        if combo in invalid:
                            continue
                        try:
                            macro = EDRAMMacro(
                                size_bits=size,
                                width=width,
                                banks=banks,
                                page_bits=page,
                            )
                        except ConfigurationError:
                            invalid.add(combo)
                            continue
                        macros.append(macro)
        return macros

    def explore(
        self,
        requirements: ApplicationRequirements,
        parallel: ParallelConfig | None = None,
        ledger=None,
        executor=None,
    ) -> ExplorationResult:
        """Run the full sweep for one application.

        With ``parallel``, macro evaluations are fanned out across a
        process pool (deterministically chunked, merged back in
        enumeration order) and the results prime this explorer's
        evaluator memo, so later serial queries hit the cache.
        ``executor`` generalizes this to any
        :class:`~repro.core.executor.Executor` — including the
        work-queue executor that distributes macro evaluations across
        worker processes on multiple machines; the two arguments are
        mutually exclusive.

        With ``ledger`` (path or open
        :class:`~repro.obs.ledger.RunLedger`), the exploration streams
        ``run_start``/phase-span/``run_end`` events — enumerate,
        evaluate and frontier each get a timed span, so ``repro
        report`` can show where an exploration spends its time.
        """
        from repro.core.executor import coerce_executor
        from repro.obs.ledger import coerce_ledger

        run_executor = coerce_executor(executor, parallel)
        run_ledger, owns_ledger = coerce_ledger(ledger)
        try:
            return self._explore(requirements, run_executor, run_ledger)
        finally:
            if owns_ledger and run_ledger is not None:
                run_ledger.close()

    def _explore(
        self, requirements, executor, ledger
    ) -> ExplorationResult:
        import time

        started = time.perf_counter()
        if ledger is not None:
            ledger.event(
                "run_start",
                workload="explore",
                application=requirements.name,
                capacity_bits=requirements.capacity_bits,
                bandwidth_bits_per_s=(
                    requirements.sustained_bandwidth_bits_per_s
                ),
                executor=(
                    None if executor is None else executor.describe()
                ),
            )
        with _maybe_span(ledger, "enumerate"):
            macros = self.enumerate(requirements)
        with _maybe_span(ledger, "evaluate", n_macros=len(macros)):
            if executor is not None and len(macros) > 1:
                task = _EvaluateMacroTask(
                    evaluator=self.evaluator, requirements=requirements
                )
                outcomes = executor.map(task, macros, ledger=ledger)
                evaluated = [outcome.value for outcome in outcomes]
                self.evaluator.prime_macro_cache(
                    ((macro, requirements), metrics)
                    for macro, metrics in zip(macros, evaluated)
                )
            elif self.batch:
                evaluated = self.evaluator.evaluate_macros(
                    macros, requirements
                )
            else:
                evaluated = [
                    self.evaluator.evaluate_macro(macro, requirements)
                    for macro in macros
                ]
        with _maybe_span(ledger, "frontier"):
            feasible = [
                metrics
                for metrics in evaluated
                if self.evaluator.meets(metrics, requirements)
            ]
            frontier = pareto_frontier(
                feasible,
                lambda metrics: metrics.objective_tuple(),
                engine=self.pareto_engine,
            )
        try:
            discrete = smallest_system(
                requirements.capacity_bits,
                self._discrete_width(requirements),
                COMMODITY_PARTS,
            )
            baseline = self.evaluator.evaluate_discrete(
                discrete, requirements
            )
        except (ConfigurationError, InfeasibleError):
            baseline = None
        if ledger is not None:
            ledger.event(
                "run_end",
                workload="explore",
                status="ok",
                n_explored=len(evaluated),
                n_feasible=len(feasible),
                n_frontier=len(frontier),
                s=round(time.perf_counter() - started, 6),
            )
        return ExplorationResult(
            requirements=requirements,
            evaluated=evaluated,
            feasible=feasible,
            frontier=frontier,
            discrete_baseline=baseline,
        )

    @staticmethod
    def _discrete_width(requirements: ApplicationRequirements) -> int:
        """Bus width a commodity system needs for the bandwidth.

        Derates the PC100 interface to ~60% sustained efficiency, the
        same ballpark the analytic model produces for mixed traffic.
        """
        effective = PC100_TIMING.clock_hz * 0.6
        width = ceil_div(
            int(requirements.sustained_bandwidth_bits_per_s), int(effective)
        )
        rounded = 16
        while rounded < width:
            rounded *= 2
        return rounded


def _maybe_span(ledger, name: str, **fields):
    """A ledger phase span, or a no-op context when the ledger is off."""
    if ledger is None:
        return nullcontext()
    return ledger.span(name, **fields)


@dataclass(frozen=True)
class _EvaluateMacroTask:
    """Picklable single-macro evaluation, for process-pool fan-out."""

    evaluator: Evaluator
    requirements: ApplicationRequirements

    def __call__(self, macro: EDRAMMacro) -> SolutionMetrics:
        return self.evaluator.evaluate_macro(macro, self.requirements)
