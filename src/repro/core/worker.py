"""Work-queue worker process: claim, evaluate, publish, repeat.

Run as ``python -m repro.core.worker --queue DIR`` (or via
``repro workers start``).  Any number of workers — on this machine or
on any machine sharing the queue directory — cooperate on one
:class:`~repro.core.executor.WorkQueueExecutor` map:

1. claim the lowest pending chunk by atomic rename (losing a rename
   race is normal: move to the next file);
2. with no pending chunks, requeue expired leases (work stealing) and
   try again;
3. evaluate the chunk point by point, renewing the lease's mtime after
   every point so a live worker on a slow chunk is never robbed;
4. append every fresh evaluation to this worker's own fsync'd
   :class:`~repro.core.store.ResultStore` segment *before* moving on —
   a ``SIGKILL`` at any instant loses at most the point in flight;
5. for chunks that carry content keys (stolen chunks especially),
   consult the combined segment snapshot first so points a dead worker
   already finished are served from the store, not evaluated twice;
6. publish the chunk result atomically and release the lease.

The worker exits when the coordinator writes the ``done`` sentinel,
when the queue has been idle longer than ``--max-idle-s``, or after one
chunk with ``--once`` (used by the chaos tests to step workers
deterministically).

``SIGTERM`` requests a *graceful drain*: the worker finishes the chunk
it is evaluating, publishes its result, releases its lease, lets the
segment's context manager flush, and exits — the contract
:class:`~repro.core.supervisor.WorkerSupervisor` relies on.  While
running it also refreshes its heartbeat file at least once a second
(idle polls and per evaluated point), so a supervisor can tell a
frozen worker from a busy one.
"""

from __future__ import annotations

import argparse
import base64
import os
import pickle
import signal
import sys
import time
import uuid

from repro.core.executor import WorkQueue
from repro.core.parallel import PointOutcome
from repro.core.store import ResultStore, decode_outcome, encode_outcome

#: Queue subdirectory holding per-process worker ledgers for traced
#: runs (`repro trace --merge` collects them alongside the
#: coordinator's).
LEDGERS_DIR = "ledgers"


def evaluate_chunk(
    queue: WorkQueue,
    chunk: dict,
    fn,
    catch: tuple,
    worker_id: str,
    segment: ResultStore,
    heartbeat=None,
) -> tuple:
    """Evaluate one claimed chunk; returns (outcomes, sources, elapsed).

    ``sources[i]`` is ``"store"`` when the point was served from a
    worker segment (its fingerprint was already evaluated — typically
    by the dead worker this chunk was stolen from) and ``"fresh"``
    when this worker evaluated it.  ``heartbeat`` (optional callable)
    is invoked after every point so liveness stays visible on slow
    chunks; callers throttle it.
    """
    items = pickle.loads(base64.b64decode(chunk["items"]))
    keys = chunk.get("keys")
    snapshot = queue.load_segment_snapshot() if keys else {}
    lease_path = chunk.get("_lease_path")
    outcomes = []
    sources = []
    start = time.perf_counter()
    for position, item in enumerate(items):
        key = keys[position] if keys else None
        outcome = None
        if key is not None:
            stored = snapshot.get(key)
            if stored is not None:
                outcome = decode_outcome(stored)
        if outcome is not None:
            sources.append("store")
        else:
            try:
                outcome = PointOutcome(ok=True, value=fn(item))
            except catch as error:
                outcome = PointOutcome(ok=False, error=repr(error))
            sources.append("fresh")
            if key is not None:
                segment.put(key, encode_outcome(outcome))
        outcomes.append(outcome)
        if lease_path is not None:
            queue.renew_lease(lease_path)
        if heartbeat is not None:
            heartbeat()
    return outcomes, sources, time.perf_counter() - start


def worker_loop(
    queue_dir,
    worker_id: str | None = None,
    max_idle_s: float = 30.0,
    poll_s: float = 0.05,
    once: bool = False,
    heartbeat_s: float = 1.0,
) -> int:
    """Main loop; returns the number of chunks this worker completed.

    Installs a ``SIGTERM`` handler (main thread only) that requests a
    graceful drain: the in-flight chunk completes, publishes and
    releases before the loop exits.
    """
    worker_id = worker_id or f"{os.getpid()}-{uuid.uuid4().hex[:6]}"
    queue = WorkQueue(queue_dir)
    draining = {"flag": False}

    def _request_drain(signum, frame):
        draining["flag"] = True

    try:
        previous_handler = signal.signal(signal.SIGTERM, _request_drain)
    except ValueError:
        previous_handler = None  # not the main thread (in-process tests)
    try:
        manifest = None
        idle_since = time.monotonic()
        # The coordinator may still be publishing: wait for the manifest.
        while manifest is None:
            manifest = queue.manifest()
            if manifest is not None:
                break
            if queue.done() or draining["flag"]:
                return 0
            if time.monotonic() - idle_since > max_idle_s:
                return 0
            time.sleep(poll_s)
        lease_timeout_s = float(manifest.get("lease_timeout_s", 10.0))
        fn, catch = queue.load_task()
        chunks_done = 0
        last_beat = 0.0
        trace_ledger = None  # opened lazily on the first traced chunk

        def beat() -> None:
            # Throttled: at most one heartbeat write per heartbeat_s,
            # called from idle polls and per evaluated point — a
            # supervisor reading the file's mtime can tell frozen
            # (silent) from busy (beating) at that resolution.
            nonlocal last_beat
            now = time.monotonic()
            if now - last_beat >= heartbeat_s:
                queue.heartbeat(worker_id, chunks_done)
                last_beat = now

        # fsync per append: this segment is exactly what survives SIGKILL.
        with ResultStore(
            path=queue.segment_path(worker_id), fsync=True
        ) as segment:
            queue.heartbeat(worker_id, chunks_done)
            last_beat = time.monotonic()
            idle_since = time.monotonic()
            while True:
                if queue.done() or draining["flag"]:
                    break
                chunk = queue.claim_next(worker_id, lease_timeout_s)
                if chunk is None:
                    beat()
                    if time.monotonic() - idle_since > max_idle_s:
                        break
                    time.sleep(poll_s)
                    continue
                idle_since = time.monotonic()
                trace = chunk.get("trace")
                if trace is None:
                    outcomes, sources, elapsed = evaluate_chunk(
                        queue, chunk, fn, catch, worker_id, segment,
                        heartbeat=beat,
                    )
                else:
                    # Traced chunk: bind its context *verbatim* (not a
                    # child) so this span's id is the one the
                    # coordinator minted — a stolen chunk re-emits
                    # under the same identity, which is what keeps a
                    # SIGKILL'd worker's spans free of orphan parents
                    # in the merged trace.
                    if trace_ledger is None:
                        from repro.obs.ledger import RunLedger

                        ledger_dir = queue.root / LEDGERS_DIR
                        ledger_dir.mkdir(parents=True, exist_ok=True)
                        trace_ledger = RunLedger(
                            ledger_dir / f"worker-{worker_id}.jsonl"
                        )
                    name = f"chunk {chunk['chunk']}"
                    with trace_ledger.bind_trace(trace):
                        start_id = trace_ledger.event(
                            "span_start",
                            name=name,
                            worker=worker_id,
                            index=chunk["chunk"],
                            size=len(chunk.get("indices", [])),
                        )
                        outcomes, sources, elapsed = evaluate_chunk(
                            queue, chunk, fn, catch, worker_id, segment,
                            heartbeat=beat,
                        )
                        trace_ledger.event(
                            "span_end",
                            name=name,
                            span=start_id,
                            s=round(elapsed, 6),
                            failed=sum(
                                1 for o in outcomes if not o.ok
                            ),
                        )
                    trace_ledger.flush()
                queue.publish_result(
                    chunk, worker_id, outcomes, sources, elapsed
                )
                queue.release_lease(chunk["_lease_path"])
                chunks_done += 1
                queue.heartbeat(worker_id, chunks_done)
                last_beat = time.monotonic()
                if once:
                    break
        if trace_ledger is not None:
            trace_ledger.close()
        return chunks_done
    finally:
        if previous_handler is not None:
            try:
                signal.signal(signal.SIGTERM, previous_handler)
            except ValueError:
                pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Work-queue sweep worker (see docs/DISTRIBUTED.md)",
    )
    parser.add_argument("--queue", required=True, help="queue directory")
    parser.add_argument(
        "--worker-id", default=None, help="stable id (default: pid-random)"
    )
    parser.add_argument(
        "--max-idle-s",
        type=float,
        default=30.0,
        help="exit after this long with nothing to claim",
    )
    parser.add_argument(
        "--poll-s", type=float, default=0.05, help="claim poll interval"
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="exit after completing one chunk (testing)",
    )
    args = parser.parse_args(argv)
    worker_loop(
        args.queue,
        worker_id=args.worker_id,
        max_idle_s=args.max_idle_s,
        poll_s=args.poll_s,
        once=args.once,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
