"""Metrics of one evaluated memory solution."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBIT, fill_frequency


@dataclass(frozen=True)
class SolutionMetrics:
    """What one candidate configuration delivers.

    Attributes:
        label: Configuration description.
        capacity_bits: Installed capacity.
        peak_bandwidth_bits_per_s: Interface peak.
        sustained_bandwidth_bits_per_s: Estimated/simulated sustainable
            bandwidth under the application's traffic.
        mean_latency_ns: Mean access latency under that traffic.
        power_w: Memory-subsystem power at the operating point.
        area_mm2: Silicon area of the memory (embedded) or 0 for
            off-chip solutions.
        n_chips: Discrete devices (1 for embedded).
        unit_cost: Memory unit cost at the requirement's volume.
        embedded: Whether this is an embedded (eDRAM) solution.
    """

    label: str
    capacity_bits: int
    peak_bandwidth_bits_per_s: float
    sustained_bandwidth_bits_per_s: float
    mean_latency_ns: float
    power_w: float
    area_mm2: float
    n_chips: int
    unit_cost: float
    embedded: bool

    def __post_init__(self) -> None:
        if self.capacity_bits <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.peak_bandwidth_bits_per_s <= 0:
            raise ConfigurationError("peak bandwidth must be positive")
        if self.sustained_bandwidth_bits_per_s < 0:
            raise ConfigurationError("sustained bandwidth must be >= 0")
        if self.mean_latency_ns < 0:
            raise ConfigurationError("latency must be >= 0")
        if self.power_w < 0 or self.area_mm2 < 0 or self.unit_cost < 0:
            raise ConfigurationError("power/area/cost must be >= 0")
        if self.n_chips < 1:
            raise ConfigurationError("n_chips must be >= 1")

    @property
    def capacity_mbit(self) -> float:
        return self.capacity_bits / MBIT

    @property
    def bandwidth_efficiency(self) -> float:
        return (
            self.sustained_bandwidth_bits_per_s
            / self.peak_bandwidth_bits_per_s
        )

    @property
    def fill_frequency_hz(self) -> float:
        """Fill frequency at the sustained bandwidth (Section 1)."""
        return fill_frequency(
            self.sustained_bandwidth_bits_per_s, self.capacity_bits
        )

    def overhead_bits(self, required_bits: int) -> int:
        """Capacity installed beyond the requirement."""
        if required_bits <= 0:
            raise ConfigurationError("required capacity must be positive")
        return max(0, self.capacity_bits - required_bits)

    def objective_tuple(self) -> tuple:
        """(power, area, cost, -sustained_bw, latency): all minimized.

        The canonical objective vector used for Pareto extraction.
        """
        return (
            self.power_w,
            self.area_mm2,
            self.unit_cost,
            -self.sustained_bandwidth_bits_per_s,
            self.mean_latency_ns,
        )
