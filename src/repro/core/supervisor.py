"""Worker supervision for the distributed work queue.

``repro workers start --supervise`` keeps a fixed-size fleet of worker
processes attached to one queue directory and healthy:

* **liveness** — every worker writes a heartbeat file
  (``workers/<id>.json``, see :meth:`WorkQueue.heartbeat
  <repro.core.executor.WorkQueue.heartbeat>`) at least once a second
  while it is making progress; the supervisor watches the file mtimes.
* **crash recovery** — a worker process that exits (crash, OOM,
  ``SIGKILL``) is respawned with bounded exponential backoff, so a
  workload that kills its worker on startup cannot fork-bomb the host.
* **freeze detection** — a worker that is *alive but not beating*
  (``SIGSTOP``, a hung filesystem, a deadlock) past
  ``heartbeat_timeout_s`` is killed and respawned; its chunk's lease
  expires and is stolen by a sibling, and the points it already
  evaluated are served from its fsync'd segment — never lost, never
  evaluated twice.
* **graceful drain** — on ``SIGTERM`` (or :meth:`request_drain`) the
  supervisor forwards ``SIGTERM`` to the fleet; each worker finishes
  its current chunk, flushes its ResultStore segment, releases its
  lease and exits (see :mod:`repro.core.worker`).  Stragglers past the
  drain timeout are killed.

The supervisor owns *processes*, not work: all work distribution stays
in the queue directory protocol, so supervised and unsupervised
workers mix freely on one queue.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import ConfigurationError
from repro.core.executor import WORKERS, WorkQueue


class _Slot:
    """One supervised worker position: process + respawn bookkeeping."""

    __slots__ = ("worker_id", "proc", "respawns", "retry_at")

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.proc: subprocess.Popen | None = None
        self.respawns = 0
        self.retry_at = 0.0


class WorkerSupervisor:
    """Keeps ``n_workers`` queue workers alive, unfrozen and drainable.

    Attributes:
        stats: Counters — ``spawned`` (all process launches),
            ``respawned`` (launches replacing a dead worker),
            ``killed_frozen`` (live-but-silent workers killed).
    """

    def __init__(
        self,
        queue_dir,
        n_workers: int = 2,
        max_respawns: int = 5,
        backoff_s: float = 0.2,
        heartbeat_timeout_s: float = 10.0,
        poll_s: float = 0.2,
        max_idle_s: float = 30.0,
        worker_poll_s: float = 0.05,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if max_respawns < 0:
            raise ConfigurationError("max_respawns must be >= 0")
        if backoff_s < 0:
            raise ConfigurationError("backoff_s must be >= 0")
        if heartbeat_timeout_s <= 0:
            raise ConfigurationError("heartbeat_timeout_s must be positive")
        if poll_s <= 0:
            raise ConfigurationError("poll_s must be positive")
        self.queue = WorkQueue(queue_dir)
        self.n_workers = n_workers
        self.max_respawns = max_respawns
        self.backoff_s = backoff_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.poll_s = poll_s
        self.max_idle_s = max_idle_s
        self.worker_poll_s = worker_poll_s
        self._slots = [
            _Slot(f"sup-{os.getpid()}-{index}") for index in range(n_workers)
        ]
        self._drain_requested = False
        self.stats = {"spawned": 0, "respawned": 0, "killed_frozen": 0}

    # -- process management ---------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        workers_dir = self.queue.directory(WORKERS)
        workers_dir.mkdir(parents=True, exist_ok=True)
        log_handle = open(workers_dir / f"{slot.worker_id}.log", "a")
        slot.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.core.worker",
                "--queue",
                str(self.queue.root),
                "--worker-id",
                slot.worker_id,
                "--max-idle-s",
                str(self.max_idle_s),
                "--poll-s",
                str(self.worker_poll_s),
            ],
            env=env,
            stdout=log_handle,
            stderr=subprocess.STDOUT,
        )
        log_handle.close()  # the child holds its own descriptor
        self.stats["spawned"] += 1

    def start(self) -> None:
        """Launch the full fleet."""
        for slot in self._slots:
            if slot.proc is None:
                self._spawn(slot)

    def heartbeat_age_s(self, worker_id: str) -> float | None:
        """Seconds since the worker last beat; None = never seen.

        Supervisor and workers share one machine (the supervisor
        spawned them), so file mtime vs ``time.time()`` is safe here —
        cross-node skew is the *lease* protocol's problem, handled in
        :meth:`WorkQueue.expired_leases
        <repro.core.executor.WorkQueue.expired_leases>`.
        """
        path = self.queue.directory(WORKERS) / f"{worker_id}.json"
        try:
            return max(0.0, time.time() - path.stat().st_mtime)
        except OSError:
            return None

    def _respawn(self, slot: _Slot, now: float) -> None:
        if slot.respawns >= self.max_respawns:
            return
        if now < slot.retry_at:
            return
        slot.respawns += 1
        slot.retry_at = now + self.backoff_s * (2 ** (slot.respawns - 1))
        self._spawn(slot)
        self.stats["respawned"] += 1

    def poll(self) -> None:
        """One supervision pass: respawn the dead, kill the frozen."""
        now = time.monotonic()
        for slot in self._slots:
            proc = slot.proc
            if proc is None or proc.poll() is not None:
                self._respawn(slot, now)
                continue
            age = self.heartbeat_age_s(slot.worker_id)
            if age is not None and age > self.heartbeat_timeout_s:
                # Alive but silent: SIGSTOP'd, deadlocked, or stuck on
                # I/O.  SIGKILL (a frozen process cannot honor
                # SIGTERM); the lease protocol recovers its chunk.
                try:
                    proc.kill()
                    proc.wait(timeout=5)
                except OSError:
                    pass
                self.stats["killed_frozen"] += 1
                self._respawn(slot, now)

    def alive_workers(self) -> int:
        return sum(
            1
            for slot in self._slots
            if slot.proc is not None and slot.proc.poll() is None
        )

    # -- drain ----------------------------------------------------------------

    def request_drain(self) -> None:
        self._drain_requested = True

    def drain(self, timeout_s: float = 30.0) -> None:
        """SIGTERM the fleet, wait for graceful exits, kill stragglers.

        Workers finish their current chunk, flush their segment and
        release their lease before exiting (the SIGTERM handler in
        :func:`repro.core.worker.worker_loop`); anything still running
        after ``timeout_s`` is killed — its lease expires and its
        completed points survive in the segment.
        """
        for slot in self._slots:
            if slot.proc is not None and slot.proc.poll() is None:
                try:
                    slot.proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + timeout_s
        for slot in self._slots:
            if slot.proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                slot.proc.wait(timeout=remaining)
            except Exception:
                slot.proc.kill()

    # -- main loop ------------------------------------------------------------

    def run(self, install_signal_handlers: bool = True) -> dict:
        """Supervise until the queue is done or a drain is requested.

        Returns the final :attr:`stats` (plus ``drained``) for the CLI
        to print.
        """
        previous = None
        if install_signal_handlers:
            try:
                previous = signal.signal(
                    signal.SIGTERM, lambda signum, frame: self.request_drain()
                )
            except ValueError:
                previous = None  # not the main thread (tests)
        self.start()
        try:
            while not self._drain_requested:
                if self.queue.done():
                    break
                self.poll()
                time.sleep(self.poll_s)
        except KeyboardInterrupt:
            self.request_drain()
        finally:
            self.drain()
            if previous is not None:
                try:
                    signal.signal(signal.SIGTERM, previous)
                except ValueError:
                    pass
        return dict(self.stats, drained=self._drain_requested)
