"""Core contribution: the embedded-DRAM design-space explorer.

The paper's thesis (Sections 3, 5, 7): parameters designers "have been
forced to take for given, including size, interface width, and
organization, are now available as design parameters", and "it is
incumbent upon edram suppliers to make the trade-offs transparent and to
quantize the design space into a set of understandable if slightly
sub-optimal solutions".

This package is that machinery:

* :mod:`repro.core.requirements` — what the application needs,
* :mod:`repro.core.metrics` — what a candidate solution delivers,
* :mod:`repro.core.evaluator` — analytic + simulation-backed evaluation,
* :mod:`repro.core.batch` — numpy array-lane evaluation of whole grids,
  bit-identical to the scalar evaluator,
* :mod:`repro.core.explorer` — enumerate and filter the configuration
  space (size x width x banks x page length),
* :mod:`repro.core.pareto` — multi-objective frontier extraction,
* :mod:`repro.core.quantizer` — snap the frontier to the building-block
  granularity and name a handful of understandable solutions,
* :mod:`repro.core.advisor` — the Section 2 advisability rules,
* :mod:`repro.core.tradeoffs` — logic <-> memory die-area trading.
"""

from repro.core.requirements import ApplicationRequirements
from repro.core.metrics import SolutionMetrics
from repro.core.evaluator import Evaluator
from repro.core.explorer import DesignSpaceExplorer, ExplorationResult
from repro.core.pareto import (
    pareto_frontier,
    pareto_frontier_mask,
    dominates,
)
from repro.core.batch import (
    BatchEvaluation,
    BatchedMacroSweepTask,
    batch_fallback_reason,
    discrete_batch_fallback_reason,
    evaluate_discrete_batch,
    evaluate_macro_batch,
    evaluate_macro_grid,
)
from repro.core.quantizer import Quantizer, NamedSolution
from repro.core.advisor import Advisor, Advice
from repro.core.tradeoffs import LogicMemoryTrade, TradePoint
from repro.core.partition import (
    MemoryBlock,
    MemoryTech,
    Partitioner,
    PartitionPlan,
    TechProfile,
)
from repro.core.allocation import (
    AllocationPlan,
    BankAllocator,
    BufferSpec,
    Placement,
)
from repro.core.parallel import ParallelConfig, PointOutcome, parallel_map
from repro.core.sweep import Sweep, SweepPoint, SweepResult
from repro.core.executor import (
    Executor,
    LocalPoolExecutor,
    SerialExecutor,
    WorkQueueExecutor,
)
from repro.core.store import ResultStore, point_fingerprint

__all__ = [
    "ApplicationRequirements",
    "SolutionMetrics",
    "Evaluator",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "pareto_frontier",
    "pareto_frontier_mask",
    "dominates",
    "BatchEvaluation",
    "BatchedMacroSweepTask",
    "batch_fallback_reason",
    "discrete_batch_fallback_reason",
    "evaluate_discrete_batch",
    "evaluate_macro_batch",
    "evaluate_macro_grid",
    "Quantizer",
    "NamedSolution",
    "Advisor",
    "Advice",
    "LogicMemoryTrade",
    "TradePoint",
    "MemoryBlock",
    "MemoryTech",
    "Partitioner",
    "PartitionPlan",
    "TechProfile",
    "AllocationPlan",
    "BankAllocator",
    "BufferSpec",
    "Placement",
    "ParallelConfig",
    "PointOutcome",
    "parallel_map",
    "Sweep",
    "SweepPoint",
    "SweepResult",
    "Executor",
    "LocalPoolExecutor",
    "SerialExecutor",
    "WorkQueueExecutor",
    "ResultStore",
    "point_fingerprint",
]
