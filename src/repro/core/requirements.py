"""Application requirements: what the system needs from its memory."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBIT


@dataclass(frozen=True)
class ApplicationRequirements:
    """Memory requirements of one application.

    Attributes:
        name: Application name for reports.
        capacity_bits: Required storage.
        sustained_bandwidth_bits_per_s: Bandwidth that must be delivered
            under real traffic (not peak).
        max_latency_ns: Worst acceptable mean access latency, or None.
        power_budget_w: Memory-subsystem power budget, or None.
        volume_per_year: Production volume (drives economics).
        portable: Battery-powered product.
        read_fraction: Read share of the traffic.
        locality: Qualitative traffic locality in [0, 1]; 1.0 = fully
            sequential streams, 0.0 = uniformly random.  Used to derate
            peak to sustainable bandwidth analytically and to pick
            simulation traffic mixes.
    """

    name: str
    capacity_bits: int
    sustained_bandwidth_bits_per_s: float
    max_latency_ns: float | None = None
    power_budget_w: float | None = None
    volume_per_year: int = 1_000_000
    portable: bool = False
    read_fraction: float = 0.67
    locality: float = 0.7

    def __post_init__(self) -> None:
        if self.capacity_bits <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.sustained_bandwidth_bits_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.max_latency_ns is not None and self.max_latency_ns <= 0:
            raise ConfigurationError("latency bound must be positive")
        if self.power_budget_w is not None and self.power_budget_w <= 0:
            raise ConfigurationError("power budget must be positive")
        if self.volume_per_year < 0:
            raise ConfigurationError("volume must be >= 0")
        if not 0 <= self.read_fraction <= 1:
            raise ConfigurationError("read fraction must be in [0, 1]")
        if not 0 <= self.locality <= 1:
            raise ConfigurationError("locality must be in [0, 1]")

    @property
    def capacity_mbit(self) -> float:
        return self.capacity_bits / MBIT

    @property
    def bandwidth_gbyte_per_s(self) -> float:
        return self.sustained_bandwidth_bits_per_s / 8e9
